//! The strongest end-to-end guarantee in the repository: every benchmark
//! kernel, under both renaming schemes and several register-file sizes,
//! commits exactly the instruction stream the functional reference
//! machine produces (lockstep oracle), and the final architectural memory
//! matches.

use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::isa::Machine;
use regshare::sim::Pipeline;
use regshare::workloads::{all_kernels, Kernel};

const SCALE: u64 = 8_000;

fn run_checked(kernel: &Kernel, scheme: Scheme, rf: usize) {
    let program = kernel.program(SCALE);
    let mut config = experiment_config(SCALE);
    config.check_oracle = true;
    let renamer = renamer_for(scheme, rf, swept_class(kernel.suite));
    let mut sim = Pipeline::new(program, renamer, config);
    sim.run()
        .unwrap_or_else(|e| panic!("{} under {} @ {rf} regs: {e}", kernel.name, scheme.label()));
}

#[test]
fn all_kernels_lockstep_baseline_small_rf() {
    for k in all_kernels() {
        run_checked(&k, Scheme::Baseline, 48);
    }
}

#[test]
fn all_kernels_lockstep_baseline_large_rf() {
    for k in all_kernels() {
        run_checked(&k, Scheme::Baseline, 112);
    }
}

#[test]
fn all_kernels_lockstep_proposed_small_rf() {
    for k in all_kernels() {
        run_checked(&k, Scheme::Proposed, 48);
    }
}

#[test]
fn all_kernels_lockstep_proposed_large_rf() {
    for k in all_kernels() {
        run_checked(&k, Scheme::Proposed, 112);
    }
}

#[test]
fn committed_instruction_counts_match_across_schemes() {
    // Both schemes must commit the same dynamic instruction stream.
    for k in all_kernels().iter().take(6) {
        let program = k.program(SCALE);
        let counts: Vec<u64> = [Scheme::Baseline, Scheme::Proposed]
            .iter()
            .map(|s| {
                let mut sim = Pipeline::new(
                    program.clone(),
                    renamer_for(*s, 64, swept_class(k.suite)),
                    experiment_config(SCALE),
                );
                sim.run().expect("run").committed_instructions
            })
            .collect();
        assert_eq!(counts[0], counts[1], "{}", k.name);
    }
}

#[test]
fn final_memory_matches_functional_machine() {
    // Sample memory locations after full kernel runs (no instruction cap).
    for k in all_kernels() {
        let program = k.program(3_000);
        let mut machine = Machine::new(program.clone());
        machine.run(10_000_000).expect("functional run");

        let mut config = experiment_config(0);
        config.max_instructions = 0; // run to halt
        config.max_cycles = 30_000_000;
        config.check_oracle = true;
        let mut sim = Pipeline::new(
            program,
            renamer_for(Scheme::Proposed, 56, swept_class(k.suite)),
            config,
        );
        let report = sim.run().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert!(report.halted, "{} must halt", k.name);
        assert_eq!(
            report.committed_instructions,
            machine.retired(),
            "{}: committed counts differ",
            k.name
        );
        // Spot-check the data pages the kernel wrote.
        for addr in (0x1_0000u64..0x1_0400).step_by(8) {
            assert_eq!(
                sim.memory().read_u64(addr),
                machine.memory().read_u64(addr),
                "{}: memory diverged at {addr:#x}",
                k.name
            );
        }
    }
}

#[test]
fn proposed_never_allocates_more_than_baseline() {
    for k in all_kernels().iter().take(8) {
        let program = k.program(SCALE);
        let mut base = Pipeline::new(
            program.clone(),
            renamer_for(Scheme::Baseline, 80, swept_class(k.suite)),
            experiment_config(SCALE),
        );
        let rb = base.run().expect("baseline");
        let mut prop = Pipeline::new(
            program,
            renamer_for(Scheme::Proposed, 80, swept_class(k.suite)),
            experiment_config(SCALE),
        );
        let rp = prop.run().expect("proposed");
        assert!(
            rp.rename.allocations <= rb.rename.allocations,
            "{}: proposed allocated more registers than baseline",
            k.name
        );
        // Reuses only ever replace allocations; the totals stay in the
        // same ballpark (wrong-path rename volume may differ slightly).
        let base_total = rb.rename.allocations as f64;
        let prop_total = (rp.rename.allocations + rp.rename.reuses) as f64;
        assert!(
            (prop_total - base_total).abs() / base_total < 0.2,
            "{}: renamed destination counts diverged: {base_total} vs {prop_total}",
            k.name
        );
    }
}
