//! The early-release comparator through the full pipeline: oracle-checked
//! on every kernel (no exception injection — the scheme does not support
//! precise exceptions, which is the paper's argument against it).

use regshare::core::{BankConfig, EarlyReleaseRenamer, Renamer, RenamerConfig};
use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme, FIXED_RF};
use regshare::isa::RegClass;
use regshare::sim::Pipeline;
use regshare::workloads::{all_kernels, suite_kernels, Suite};

const SCALE: u64 = 8_000;

fn early_renamer(rf: usize, swept: RegClass) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let swept_banks = BankConfig::conventional(rf);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(EarlyReleaseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::baseline(rf)
    }))
}

#[test]
fn all_kernels_lockstep_early_release() {
    for rf in [48usize, 96] {
        for k in all_kernels() {
            let program = k.program(SCALE);
            let mut config = experiment_config(SCALE);
            config.check_oracle = true;
            let mut sim = Pipeline::new(program, early_renamer(rf, swept_class(k.suite)), config);
            sim.run()
                .unwrap_or_else(|e| panic!("{} @ {rf}: {e}", k.name));
        }
    }
}

#[test]
fn early_release_never_loses_to_baseline_badly_and_often_wins() {
    // Early release strictly relaxes the release condition; at a starved
    // register file it should at worst match the baseline and typically
    // beat it on register-pressure-bound kernels.
    let mut wins = 0;
    let mut total = 0;
    for k in suite_kernels(Suite::Int)
        .into_iter()
        .chain(suite_kernels(Suite::Media))
    {
        let base = {
            let program = k.program(SCALE);
            let renamer = renamer_for(Scheme::Baseline, 48, swept_class(k.suite));
            let mut sim = Pipeline::new(program, renamer, experiment_config(SCALE));
            sim.run().expect("baseline").ipc()
        };
        let early = {
            let program = k.program(SCALE);
            let mut sim = Pipeline::new(
                program,
                early_renamer(48, swept_class(k.suite)),
                experiment_config(SCALE),
            );
            sim.run().expect("early release").ipc()
        };
        assert!(
            early >= base * 0.98,
            "{}: early release regressed: {early:.3} vs {base:.3}",
            k.name
        );
        if early > base * 1.005 {
            wins += 1;
        }
        total += 1;
    }
    assert!(wins > 0, "early release won on none of {total} kernels");
}

#[test]
fn early_release_handles_misprediction_storms() {
    use regshare::isa::{reg, Asm};
    // Unpredictable branches: releases queue behind unresolved branches
    // and squashes must restore pending-read counters exactly.
    let mut a = Asm::new();
    a.li(reg::x(1), 987654321);
    a.li(reg::x(2), 400);
    let top = a.label();
    let skip = a.label();
    a.bind(top);
    a.li(reg::x(4), 6364136223846793005);
    a.mul(reg::x(1), reg::x(1), reg::x(4));
    a.addi(reg::x(1), reg::x(1), 1442695040888963407);
    a.srli(reg::x(5), reg::x(1), 37);
    a.andi(reg::x(5), reg::x(5), 1);
    a.beq(reg::x(5), reg::zero(), skip);
    a.addi(reg::x(6), reg::x(6), 1);
    a.bind(skip);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.halt();
    let program = a.assemble();
    let mut config = experiment_config(0);
    config.max_cycles = 2_000_000;
    config.check_oracle = true;
    let mut sim = Pipeline::new(program, early_renamer(40, RegClass::Int), config);
    let report = sim.run().expect("mispredict storm run");
    assert!(report.halted);
    assert!(report.mispredicts > 20);
}
