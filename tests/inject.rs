//! Fault-injection regression tests: every injected disturbance —
//! asynchronous interrupts, forced load/store faults, branch-prediction
//! flips, squash storms, and interrupts nested inside misprediction
//! recovery — must be architecturally transparent. Each run carries a
//! lockstep oracle and periodic invariant audits, so any corruption the
//! injection provokes fails loudly with a pipeline snapshot.

use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::sim::{InjectEvent, InjectKind, InjectSchedule, Pipeline, SimConfig};
use regshare::workloads::{all_kernels, Kernel};

const SCALE: u64 = 8_000;

fn kernel(name: &str) -> Kernel {
    all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
}

fn checked_config() -> SimConfig {
    let mut config = experiment_config(SCALE);
    config.check_oracle = true;
    config.audit_interval = 64;
    config
}

fn run_with_schedule(k: &Kernel, scheme: Scheme, schedule: InjectSchedule) -> Pipeline {
    let renamer = renamer_for(scheme, 64, swept_class(k.suite));
    let mut sim = Pipeline::new(k.program(SCALE), renamer, checked_config());
    sim.set_inject(schedule);
    sim.run()
        .unwrap_or_else(|e| panic!("{} under {}: {e}", k.name, scheme.label()));
    sim
}

fn single_event(kind: InjectKind, cycle: u64) -> InjectSchedule {
    InjectSchedule {
        events: vec![InjectEvent {
            cycle,
            kind,
            pick: 3,
        }],
        interrupts_on_mispredict: Vec::new(),
    }
}

/// The nested-recovery case the paper's shadow-cell design must survive:
/// an asynchronous interrupt delivered in the same cycle as a
/// branch-misprediction squash, mid-recovery. The lockstep oracle and
/// the end-of-run architectural diff must see no divergence.
#[test]
fn interrupt_during_mispredict_recovery_is_transparent() {
    for scheme in [Scheme::Baseline, Scheme::Proposed] {
        for name in ["hashjoin", "fft"] {
            let k = kernel(name);
            let schedule = InjectSchedule {
                events: Vec::new(),
                // Nest an interrupt into the 1st, 4th and 11th
                // misprediction recoveries of the run.
                interrupts_on_mispredict: vec![0, 3, 10],
            };
            let sim = run_with_schedule(&k, scheme, schedule);
            let stats = sim.inject_stats();
            assert!(
                stats.nested_interrupts >= 1,
                "{name} under {}: no misprediction coincided with an armed \
                 interrupt (stats {stats:?})",
                scheme.label()
            );
            assert_eq!(stats.interrupts, stats.nested_interrupts);
        }
    }
}

/// Pins the exact timing of nested recovery (interrupt delivered inside
/// a misprediction squash) so the unified `RecoveryPolicy` path can be
/// checked against the hand-rolled walks it replaced: same cycles, same
/// committed count, same delivered-event mix, to the cycle.
#[test]
fn nested_recovery_matches_pre_refactor_goldens() {
    // (kernel, scheme, cycles, committed, nested_interrupts) captured on
    // the monolithic pipeline before the stage split.
    let golden: [(&str, Scheme, u64, u64, u64); 4] = [
        ("hashjoin", Scheme::Baseline, 15771, 6166, 3),
        ("hashjoin", Scheme::Proposed, 14175, 6166, 3),
        ("fft", Scheme::Baseline, 5854, 8000, 3),
        ("fft", Scheme::Proposed, 5927, 8000, 3),
    ];
    let mut observed = Vec::new();
    for (name, scheme, ..) in golden {
        let k = kernel(name);
        let schedule = InjectSchedule {
            events: Vec::new(),
            interrupts_on_mispredict: vec![0, 3, 10],
        };
        let sim = run_with_schedule(&k, scheme, schedule);
        let report = sim.report();
        observed.push((
            name,
            scheme,
            report.cycles,
            report.committed_instructions,
            sim.inject_stats().nested_interrupts,
        ));
        println!(
            "(\"{name}\", Scheme::{scheme:?}, {}, {}, {}),",
            report.cycles,
            report.committed_instructions,
            sim.inject_stats().nested_interrupts
        );
    }
    assert_eq!(
        observed,
        golden.to_vec(),
        "nested recovery diverged from the pre-refactor goldens"
    );
}

#[test]
fn each_event_kind_is_delivered_and_transparent() {
    // saxpy loads and stores on every iteration, so a fault armed at any
    // point of the run finds a consumer.
    let k = kernel("saxpy");
    type Count = fn(&regshare::sim::InjectStats) -> u64;
    let cases: [(InjectKind, Count); 5] = [
        (InjectKind::Interrupt, |s| s.interrupts),
        (InjectKind::LoadFault, |s| s.load_faults),
        (InjectKind::StoreFault, |s| s.store_faults),
        (InjectKind::BranchFlip, |s| s.branch_flips),
        (InjectKind::SquashStorm, |s| s.squash_storms),
    ];
    for (kind, delivered) in cases {
        let sim = run_with_schedule(&k, Scheme::Proposed, single_event(kind, 500));
        let stats = sim.inject_stats();
        assert_eq!(
            delivered(&stats),
            1,
            "{kind:?} was not delivered: {stats:?}"
        );
        assert_eq!(stats.total(), 1);
    }
}

#[test]
fn forced_faults_are_counted_as_exceptions() {
    let k = kernel("saxpy");
    let sim = run_with_schedule(
        &k,
        Scheme::Proposed,
        single_event(InjectKind::LoadFault, 400),
    );
    assert_eq!(sim.inject_stats().load_faults, 1);
    assert!(
        sim.report().exceptions >= 1,
        "a forced load fault must take the precise-exception path"
    );
}

/// A miniature version of the `experiments inject` campaign: seeded
/// schedules across kernels and schemes, all of which must complete with
/// zero divergences and zero invariant violations.
#[test]
fn seeded_campaigns_run_clean() {
    let kernels = all_kernels();
    for i in 0..12usize {
        let k = &kernels[(i * 5) % kernels.len()];
        let scheme = [Scheme::Baseline, Scheme::Proposed][i % 2];
        let schedule = InjectSchedule::seeded(0xFEED + i as u64, SCALE);
        let sim = run_with_schedule(k, scheme, schedule);
        assert!(sim.audits() > 0, "audits must actually run");
    }
}
