//! Property-based end-to-end testing: random synthetic programs are run
//! through the out-of-order pipeline under both renaming schemes with the
//! lockstep oracle enabled. Any divergence between the timing model and
//! the functional semantics — including any register-sharing corruption —
//! fails the property.

use proptest::prelude::*;
use regshare::core::{BankConfig, BaselineRenamer, HintPolicy, RenamerConfig, ReuseRenamer};
use regshare::harness::experiment_config;
use regshare::sim::Pipeline;
use regshare::workloads::synthetic::{generate, SyntheticConfig};

fn synthetic_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..120,
        1u64..30,
        0.0f64..1.0,
        0.0f64..0.8,
        0.0f64..0.3,
        0.0f64..0.25,
        any::<u64>(),
    )
        .prop_map(
            |(body, iterations, bias, fp, mem, br, seed)| SyntheticConfig {
                body,
                iterations,
                single_use_bias: bias,
                fp_fraction: fp,
                mem_fraction: mem,
                branch_fraction: br,
                seed,
            },
        )
}

fn bank_split() -> impl Strategy<Value = BankConfig> {
    // Total 40..72 registers with assorted shadow banks (always > 32).
    (33usize..56, 0usize..8, 0usize..8, 0usize..8)
        .prop_map(|(n0, n1, n2, n3)| BankConfig::new(vec![n0, n1, n2, n3]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn baseline_matches_oracle(cfg in synthetic_config(), regs in 34usize..96) {
        let program = generate(cfg);
        let mut sim_cfg = experiment_config(0);
        sim_cfg.max_cycles = 3_000_000;
        sim_cfg.check_oracle = true;
        let renamer = BaselineRenamer::new(RenamerConfig::baseline(regs));
        let mut sim = Pipeline::new(program, Box::new(renamer), sim_cfg);
        let report = sim.run().expect("baseline oracle run");
        prop_assert!(report.halted);
    }

    #[test]
    fn reuse_matches_oracle(cfg in synthetic_config(), banks in bank_split(), bits in 1u8..=3) {
        let program = generate(cfg);
        let mut sim_cfg = experiment_config(0);
        sim_cfg.max_cycles = 3_000_000;
        sim_cfg.check_oracle = true;
        let rc = RenamerConfig {
            int_banks: banks.clone(),
            fp_banks: banks,
            counter_bits: bits,
            predictor_entries: 128,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        };
        let mut sim = Pipeline::new(program, Box::new(ReuseRenamer::new(rc)), sim_cfg);
        let report = sim.run().expect("reuse oracle run");
        prop_assert!(report.halted);
    }

    #[test]
    fn reuse_with_faults_matches_oracle(cfg in synthetic_config(), fault_page in 0u64..4) {
        let program = generate(cfg);
        let mut sim_cfg = experiment_config(0);
        sim_cfg.max_cycles = 3_000_000;
        sim_cfg.check_oracle = true;
        // The synthetic scratch region starts at 0x2_0000.
        sim_cfg.inject_page_faults = vec![0x2_0000 + fault_page * 0x1000];
        let renamer = ReuseRenamer::new(RenamerConfig::paper(64));
        let mut sim = Pipeline::new(program, Box::new(renamer), sim_cfg);
        let report = sim.run().expect("faulting oracle run");
        prop_assert!(report.halted);
    }
}
