//! End-to-end: textual assembly → parser → out-of-order pipeline with the
//! lockstep oracle, under both renaming schemes.

use regshare::core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare::isa::parse_program;
use regshare::sim::{Pipeline, SimConfig};

const DOT_PRODUCT: &str = r"
; dot product with a reuse-friendly fma chain
.data 0x1000
.f64 1.0, 2.0, 3.0, 4.0
.f64 0.5, 0.25, 2.0, 1.5
.zeros 8
    li x1, 0x1000       ; xs
    li x2, 0x1020       ; ys
    li x3, 4            ; count
    fli f0, 0.0
top:
    fld.post f1, [x1], 8
    fld.post f2, [x2], 8
    fma f0, f1, f2, f0
    subi x3, x3, 1
    bne x3, xzr, top
    li x4, 0x1040
    fst f0, [x4]
    halt
";

#[test]
fn parsed_program_runs_on_both_schemes() {
    let program = parse_program(DOT_PRODUCT).expect("valid assembly");
    let expected = 1.0 * 0.5 + 2.0 * 0.25 + 3.0 * 2.0 + 4.0 * 1.5;
    for renamer in [
        Box::new(BaselineRenamer::new(RenamerConfig::baseline(64))) as Box<dyn Renamer>,
        Box::new(ReuseRenamer::new(RenamerConfig::paper(64))),
    ] {
        let mut sim = Pipeline::new(program.clone(), renamer, SimConfig::test());
        let report = sim.run().expect("oracle-checked run");
        assert!(report.halted);
        assert_eq!(f64::from_bits(sim.memory().read_u64(0x1040)), expected);
    }
}

#[test]
fn parsed_program_reuses_registers() {
    let program = parse_program(DOT_PRODUCT).expect("valid assembly");
    let renamer = ReuseRenamer::new(RenamerConfig::paper(64));
    let mut sim = Pipeline::new(program, Box::new(renamer), SimConfig::test());
    let report = sim.run().expect("run");
    // The fma chain and both post-increment pointers give plenty of reuse
    // even in a 4-iteration loop (after one training iteration).
    assert!(report.rename.reuses >= 2, "got {}", report.rename.reuses);
}

#[test]
fn parse_errors_carry_line_numbers() {
    let bad = "li x1, 5\nadd x1 x2 x3\nhalt\n"; // missing commas
    let e = parse_program(bad).unwrap_err();
    assert_eq!(e.line, 2);
}
