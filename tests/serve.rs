//! Chaos campaign for the job service running the **real simulator**:
//! worker kills (injected panics), a corrupted cache entry, a truncated
//! journal, and forced deadline timeouts — under all of which every job
//! must reach a terminal state, completed results must be byte-identical
//! to direct in-process runs, and corrupt cache entries must be
//! quarantined rather than served.

use regshare::experiments::SimExecutor;
use regshare_serve::{Client, JobExecutor, ServeConfig, Server};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SCALE: u64 = 4_000;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("regshare-chaos-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config(tag: &str) -> ServeConfig {
    ServeConfig {
        data_dir: temp_dir(tag),
        workers: 3,
        queue_capacity: 128,
        max_attempts: 3,
        deadline: Duration::from_secs(30),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

fn sim_payload(kernel: &str, scheme: &str, rf: u64) -> Value {
    sim_payload_scaled(kernel, scheme, rf, SCALE)
}

fn sim_payload_scaled(kernel: &str, scheme: &str, rf: u64, scale: u64) -> Value {
    Value::Object(vec![
        ("kernel".to_string(), Value::Str(kernel.to_string())),
        ("scheme".to_string(), Value::Str(scheme.to_string())),
        ("rf".to_string(), Value::UInt(rf)),
        ("scale".to_string(), Value::UInt(scale)),
    ])
}

fn direct_result(payload: &Value) -> String {
    SimExecutor
        .run(payload, &Arc::new(AtomicBool::new(false)))
        .expect("direct run")
}

/// Wraps the real simulator executor and injects panics into the first
/// `kills` attempts service-wide — the worker-kill chaos knob.
struct KillingExecutor {
    inner: SimExecutor,
    kills: AtomicU64,
}

impl JobExecutor for KillingExecutor {
    fn version(&self) -> String {
        self.inner.version()
    }
    fn run(&self, payload: &Value, cancel: &Arc<AtomicBool>) -> Result<String, String> {
        if self
            .kills
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("chaos: injected worker kill");
        }
        self.inner.run(payload, cancel)
    }
}

#[test]
fn real_sim_jobs_complete_and_match_direct_runs() {
    let server = Server::start(config("direct"), Arc::new(SimExecutor)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let payloads = vec![
        sim_payload("saxpy", "baseline", 64),
        sim_payload("saxpy", "proposed", 64),
        sim_payload("fft", "proposed", 80),
        sim_payload("hashjoin", "baseline", 56),
    ];
    let ids = client.submit(&payloads).unwrap();
    let rows = client
        .wait_terminal(&ids, Duration::from_secs(120))
        .unwrap();
    for (payload, row) in payloads.iter().zip(&rows) {
        assert_eq!(row.get("status").and_then(Value::as_str), Some("completed"));
        let served = row.get("result").and_then(Value::as_str).unwrap();
        assert_eq!(
            served,
            direct_result(payload),
            "served result must be byte-identical to a direct run"
        );
    }

    // Resubmission: byte-identical again, now from the verified cache.
    let ids2 = client.submit(&payloads).unwrap();
    let rows2 = client
        .wait_terminal(&ids2, Duration::from_secs(30))
        .unwrap();
    for (row, row2) in rows.iter().zip(&rows2) {
        assert_eq!(row2.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(
            row.get("result").and_then(Value::as_str),
            row2.get("result").and_then(Value::as_str)
        );
    }

    server.shutdown();
    server.join();
}

#[test]
fn worker_kills_do_not_lose_jobs_or_change_results() {
    // Three injected panics: enough to take out every initial worker at
    // least once while leaving the 3-attempt budget survivable.
    let exec = Arc::new(KillingExecutor {
        inner: SimExecutor,
        kills: AtomicU64::new(3),
    });
    let server = Server::start(config("kills"), exec).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let payloads: Vec<Value> = ["saxpy", "fft", "dct", "hashjoin"]
        .iter()
        .map(|k| sim_payload(k, "proposed", 64))
        .collect();
    let ids = client.submit(&payloads).unwrap();
    let rows = client
        .wait_terminal(&ids, Duration::from_secs(120))
        .unwrap();
    for (payload, row) in payloads.iter().zip(&rows) {
        assert_eq!(
            row.get("status").and_then(Value::as_str),
            Some("completed"),
            "every job terminates despite worker kills: {row:?}"
        );
        assert_eq!(
            row.get("result").and_then(Value::as_str).unwrap(),
            direct_result(payload),
            "retried results stay byte-identical"
        );
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("panics").and_then(Value::as_u64), Some(3));
    assert!(stats
        .get("workers_replaced")
        .and_then(Value::as_u64)
        .is_some_and(|n| n >= 1));

    server.shutdown();
    server.join();
}

#[test]
fn corrupted_cache_entry_is_quarantined_and_recomputed() {
    let cfg = config("corrupt");
    let cache_dir = cfg.data_dir.join("cache");
    let server = Server::start(cfg, Arc::new(SimExecutor)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let payloads = vec![sim_payload("saxpy", "proposed", 64)];
    let ids = client.submit(&payloads).unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(60)).unwrap();
    let good = rows[0]
        .get("result")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    // Flip result bytes inside the single cache entry without fixing
    // the checksum — a silent on-disk corruption.
    let entry = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.path().extension().is_some_and(|x| x == "json"))
        .expect("one cache entry")
        .path();
    let text = std::fs::read_to_string(&entry).unwrap();
    let poisoned = text.replacen("cycles", "cylces", 1);
    assert_ne!(text, poisoned);
    std::fs::write(&entry, poisoned).unwrap();

    // Resubmission must NOT serve the poisoned entry: it quarantines,
    // recomputes, and returns the correct bytes.
    let ids2 = client.submit(&payloads).unwrap();
    let rows2 = client
        .wait_terminal(&ids2, Duration::from_secs(60))
        .unwrap();
    assert_eq!(rows2[0].get("cached").and_then(Value::as_bool), Some(false));
    assert_eq!(
        rows2[0].get("result").and_then(Value::as_str),
        Some(good.as_str())
    );
    let stats = client.stats().unwrap();
    let cache = stats.get("cache").expect("cache section");
    assert_eq!(cache.get("quarantined").and_then(Value::as_u64), Some(1));
    let quarantined = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .any(|e| e.path().extension().is_some_and(|x| x == "corrupt"));
    assert!(quarantined, "evidence file kept");

    server.shutdown();
    server.join();
}

#[test]
fn forced_timeouts_cancel_the_pipeline_and_dead_letter() {
    let mut cfg = config("timeout");
    // A deadline far below the simulation's runtime: every attempt is
    // reaped, exercising CancelToken through the real pipeline driver
    // loop. The job runs millions of instructions (~seconds of work)
    // against a 1ms budget, so no hot-loop speedup can let it finish
    // before the reaper fires.
    cfg.deadline = Duration::from_millis(1);
    cfg.max_attempts = 2;
    let server = Server::start(cfg, Arc::new(SimExecutor)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let ids = client
        .submit(&[sim_payload_scaled("fft", "proposed", 64, 8_000_000)])
        .unwrap();
    let rows = client.wait_terminal(&ids, Duration::from_secs(60)).unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("dead_lettered"),
        "hopeless deadline ends in the dead-letter list, not a hang"
    );
    let err = rows[0].get("error").and_then(Value::as_str).unwrap();
    assert!(
        err.contains("deadline exceeded") && err.contains("cancelled by supervisor"),
        "diagnostic carries both the service budget and the pipeline's \
         cancellation point: {err}"
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("timeouts").and_then(Value::as_u64), Some(2));

    server.shutdown();
    server.join();
}

#[test]
fn truncated_journal_replay_finishes_the_remainder() {
    let cfg = config("journal");
    let data_dir = cfg.data_dir.clone();
    let server = Server::start(cfg.clone(), Arc::new(SimExecutor)).unwrap();
    let client = Client::new(&format!("127.0.0.1:{}", server.port()));

    let done_payloads = vec![sim_payload("saxpy", "proposed", 64)];
    let done = client.submit(&done_payloads).unwrap();
    client
        .wait_terminal(&done, Duration::from_secs(60))
        .unwrap();
    server.shutdown();
    server.join();

    // Forge the crash window: an accepted-but-never-run job appended to
    // the journal, then a torn half-record where the kill landed.
    let pending = sim_payload("dct", "baseline", 56);
    {
        use regshare_serve::{fnv1a64_hex, JobSpec};
        let spec = JobSpec {
            payload: pending.clone(),
        };
        let key = spec.cache_key(&SimExecutor.version());
        let payload_json = serde_json::to_string(&pending).unwrap();
        let json = format!(
            "{{\"rec\":\"accepted\",\"id\":500,\"key\":\"{key}\",\"payload\":{payload_json}}}"
        );
        let journal = data_dir.join("journal.log");
        let mut text = std::fs::read_to_string(&journal).unwrap();
        text.push_str(&format!("{} {json}\n", fnv1a64_hex(json.as_bytes())));
        text.push_str("0123456789abcdef {\"rec\":\"start");
        std::fs::write(&journal, text).unwrap();
    }

    let server2 = Server::start(cfg, Arc::new(SimExecutor)).unwrap();
    let client2 = Client::new(&format!("127.0.0.1:{}", server2.port()));
    // The journaled job runs to completion without being resubmitted,
    // and its result matches a direct run byte-for-byte.
    let rows = client2
        .wait_terminal(&[500], Duration::from_secs(60))
        .unwrap();
    assert_eq!(
        rows[0].get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(
        rows[0].get("result").and_then(Value::as_str).unwrap(),
        direct_result(&pending)
    );
    // The pre-drain job survives as a cached completion; the torn tail
    // was counted and dropped.
    let old = client2
        .wait_terminal(&done, Duration::from_secs(30))
        .unwrap();
    assert_eq!(
        old[0].get("status").and_then(Value::as_str),
        Some("completed")
    );
    assert_eq!(old[0].get("cached").and_then(Value::as_bool), Some(true));
    let stats = client2.stats().unwrap();
    assert_eq!(
        stats.get("journal_dropped").and_then(Value::as_u64),
        Some(1)
    );

    server2.shutdown();
    server2.join();
}
