//! Zero-allocation regression test for the detailed-mode hot loop.
//!
//! Installs the counting global allocator, warms a detailed pipeline
//! past its setup phase (queue/scratch capacities, cache fills, wheel
//! growth), then drives steady-state cycles and asserts the heap is
//! never touched. This pins the hot-loop overhaul's core claim: the
//! per-cycle tick performs no allocation once warm, on both an
//! integer and a floating-point kernel.
//!
//! The test lives alone in its own binary: the allocator counters are
//! process-wide, and a concurrently running test would pollute them.

use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::sim::Pipeline;
use regshare::workloads::all_kernels;

#[global_allocator]
static ALLOC: regshare::CountingAlloc = regshare::CountingAlloc::new();

/// Cycles to run before measuring: enough for every lazily-grown
/// structure (ready queue, waiter lists, completion wheel, LSQ slabs,
/// cache/TLB state) to reach its high-water capacity.
const WARMUP_CYCLES: u64 = 120_000;

/// Steady-state cycles measured for allocation silence.
const MEASURED_CYCLES: u64 = 10_000;

/// Program scale large enough that warmup + measurement stay well
/// inside the run (no halt, no wind-down).
const SCALE: u64 = 400_000;

#[test]
fn steady_state_tick_never_allocates() {
    for name in ["saxpy", "hashjoin"] {
        let kernel = all_kernels()
            .into_iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("kernel {name} missing from the sweep"));
        let mut cfg = experiment_config(SCALE);
        // Audits walk the ROB and free lists with scratch storage and
        // are off the hot path by design; the oracle/trace/profile
        // layers are opt-in. None of them belong in this measurement.
        cfg.audit_interval = 0;
        cfg.check_oracle = false;
        cfg.trace = false;
        cfg.profile = false;
        let renamer = renamer_for(Scheme::Proposed, 64, swept_class(kernel.suite));
        let mut sim = Pipeline::new(kernel.program(SCALE), renamer, cfg);
        sim.run_cycles(WARMUP_CYCLES)
            .unwrap_or_else(|e| panic!("{name}: warmup failed: {e}"));

        let before = regshare::alloc_track::allocations();
        sim.run_cycles(MEASURED_CYCLES)
            .unwrap_or_else(|e| panic!("{name}: measured run failed: {e}"));
        let during = regshare::alloc_track::allocations() - before;

        assert_eq!(
            during, 0,
            "{name}: {during} heap allocations in {MEASURED_CYCLES} steady-state cycles"
        );
    }
}
