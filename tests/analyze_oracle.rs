//! Static analyzer vs. dynamic execution: the linter must accept every
//! program the workload generators produce, and the static sharing
//! bounds must bracket the dynamically measured single-use fraction on
//! every kernel.

use proptest::prelude::*;
use regshare::analyze::{lint_program, oracle_check};
use regshare::workloads::synthetic::{generate, SyntheticConfig};
use regshare::workloads::{all_kernels, analysis};

/// Workload sizing passed to `Kernel::program`.
const SCALE: u64 = 8_000;

/// Instruction budget for functional runs. Kernels sized at [`SCALE`]
/// retire on the order of `SCALE` instructions but only halt at a loop
/// boundary, so the budget is generously larger — the oracle's soundness
/// checks need complete traces.
const BUDGET: u64 = 64 * SCALE;

#[test]
fn linter_accepts_every_kernel() {
    let mut failures = Vec::new();
    for k in all_kernels() {
        let program = k.program(SCALE);
        let diags = lint_program(&program);
        if !diags.is_empty() {
            failures.push(format!("{}: {diags:?}", k.name));
        }
    }
    assert!(
        failures.is_empty(),
        "linter flagged shipping kernels:\n{}",
        failures.join("\n")
    );
}

#[test]
fn static_bounds_bracket_dynamic_single_use_on_every_kernel() {
    for k in all_kernels() {
        let program = k.program(SCALE);
        let report = oracle_check(&program, BUDGET).expect("kernel executes");
        assert!(
            report.trace_complete,
            "{}: kernel did not halt within {BUDGET} instructions",
            k.name
        );
        assert!(
            report.violations.is_empty(),
            "{}: static/dynamic disagreement: {:?}",
            k.name,
            report.violations
        );
        let lower = report.lower_bound_fraction();
        let single = report.single_use_fraction();
        let upper = report.upper_bound_fraction();
        assert!(
            lower <= single + 1e-12 && single <= upper + 1e-12,
            "{}: bounds do not bracket: lower {lower:.4} single {single:.4} upper {upper:.4}",
            k.name
        );

        // The oracle's own dynamic count must agree with the Fig. 1
        // profiler, and the static upper bound must dominate it.
        let profile = analysis::analyze(&program, BUDGET);
        assert!(
            (profile.single_use_fraction() - single).abs() < 1e-12,
            "{}: oracle and profiler disagree on the single-use fraction",
            k.name
        );
        assert!(
            upper + 1e-12 >= profile.single_use_fraction(),
            "{}: static upper bound {upper:.4} below dynamic {:.4}",
            k.name,
            profile.single_use_fraction()
        );
    }
}

fn synthetic_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..120,
        1u64..30,
        0.0f64..1.0,
        0.0f64..0.8,
        0.0f64..0.3,
        0.0f64..0.25,
        any::<u64>(),
    )
        .prop_map(
            |(body, iterations, bias, fp, mem, br, seed)| SyntheticConfig {
                body,
                iterations,
                single_use_bias: bias,
                fp_fraction: fp,
                mem_fraction: mem,
                branch_fraction: br,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linter_accepts_every_synthetic_program(cfg in synthetic_config()) {
        let program = generate(cfg);
        let diags = lint_program(&program);
        prop_assert!(diags.is_empty(), "synthetic program flagged: {diags:?}");
    }

    #[test]
    fn oracle_holds_on_synthetic_programs(cfg in synthetic_config()) {
        let program = generate(cfg);
        let report = oracle_check(&program, 200_000).expect("synthetic executes");
        prop_assert!(report.violations.is_empty(), "{:?}", report.violations);
        prop_assert!(
            report.single_use_instances <= report.upper_bound_instances
        );
        if report.trace_complete {
            prop_assert!(
                report.lower_bound_instances <= report.single_use_instances
            );
        }
    }
}
