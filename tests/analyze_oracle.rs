//! Static analyzer vs. dynamic execution: the linter must accept every
//! program the workload generators produce, and the static sharing
//! bounds must bracket the dynamically measured single-use fraction on
//! every kernel.

use proptest::prelude::*;
use regshare::analyze::dataflow::MAX_SAT;
use regshare::analyze::{
    classify, classify_with_loops, lint_program, oracle_check, Cfg, SiteClass,
};
use regshare::isa::{DefSlot, Machine, Program, StopReason};
use regshare::workloads::synthetic::{generate, SyntheticConfig};
use regshare::workloads::{all_kernels, analysis};
use std::collections::HashMap;

/// Workload sizing passed to `Kernel::program`.
const SCALE: u64 = 8_000;

/// Instruction budget for functional runs. Kernels sized at [`SCALE`]
/// retire on the order of `SCALE` instructions but only halt at a loop
/// boundary, so the budget is generously larger — the oracle's soundness
/// checks need complete traces.
const BUDGET: u64 = 64 * SCALE;

#[test]
fn linter_accepts_every_kernel() {
    let mut failures = Vec::new();
    for k in all_kernels() {
        let program = k.program(SCALE);
        let diags = lint_program(&program);
        if !diags.is_empty() {
            failures.push(format!("{}: {diags:?}", k.name));
        }
    }
    assert!(
        failures.is_empty(),
        "linter flagged shipping kernels:\n{}",
        failures.join("\n")
    );
}

#[test]
fn static_bounds_bracket_dynamic_single_use_on_every_kernel() {
    for k in all_kernels() {
        let program = k.program(SCALE);
        let report = oracle_check(&program, BUDGET).expect("kernel executes");
        assert!(
            report.trace_complete,
            "{}: kernel did not halt within {BUDGET} instructions",
            k.name
        );
        assert!(
            report.violations.is_empty(),
            "{}: static/dynamic disagreement: {:?}",
            k.name,
            report.violations
        );
        let lower = report.lower_bound_fraction();
        let single = report.single_use_fraction();
        let upper = report.upper_bound_fraction();
        assert!(
            lower <= single + 1e-12 && single <= upper + 1e-12,
            "{}: bounds do not bracket: lower {lower:.4} single {single:.4} upper {upper:.4}",
            k.name
        );

        // The oracle's own dynamic count must agree with the Fig. 1
        // profiler, and the static upper bound must dominate it.
        let profile = analysis::analyze(&program, BUDGET);
        assert!(
            (profile.single_use_fraction() - single).abs() < 1e-12,
            "{}: oracle and profiler disagree on the single-use fraction",
            k.name
        );
        assert!(
            upper + 1e-12 >= profile.single_use_fraction(),
            "{}: static upper bound {upper:.4} below dynamic {:.4}",
            k.name,
            profile.single_use_fraction()
        );
    }
}

/// Brute-force dynamic consumer counts: runs the functional machine and
/// replays the trace, recording the observed consumer count of every
/// value instance, grouped by its producing `(pc, slot)` site. Returns
/// the per-site counts and whether the trace ran to a halt (counts on
/// truncated traces are lower bounds — the tail values may still gain
/// consumers).
fn brute_force_counts(
    program: &Program,
    budget: u64,
) -> (HashMap<(usize, DefSlot), Vec<u32>>, bool) {
    let mut machine = Machine::new(program.clone());
    let (trace, stop) = machine.run_trace(budget).expect("lint-clean program runs");
    let mut producer_of: HashMap<regshare::isa::ArchReg, usize> = HashMap::new();
    let mut instances: Vec<((usize, DefSlot), u32)> = Vec::new();
    for r in &trace {
        for u in r.inst.uses() {
            if let Some(&id) = producer_of.get(&u) {
                instances[id].1 += 1;
            }
        }
        for (slot, d) in r.inst.defs() {
            producer_of.insert(d, instances.len());
            instances.push(((r.pc as usize, slot), 0));
        }
    }
    let mut by_site: HashMap<(usize, DefSlot), Vec<u32>> = HashMap::new();
    for (site, n) in instances {
        by_site.entry(site).or_default().push(n);
    }
    (by_site, stop == StopReason::Halted)
}

fn synthetic_config() -> impl Strategy<Value = SyntheticConfig> {
    (
        10usize..120,
        1u64..30,
        0.0f64..1.0,
        0.0f64..0.8,
        0.0f64..0.3,
        0.0f64..0.25,
        any::<u64>(),
    )
        .prop_map(
            |(body, iterations, bias, fp, mem, br, seed)| SyntheticConfig {
                body,
                iterations,
                single_use_bias: bias,
                fp_fraction: fp,
                mem_fraction: mem,
                branch_fraction: br,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linter_accepts_every_synthetic_program(cfg in synthetic_config()) {
        let program = generate(cfg);
        let diags = lint_program(&program);
        prop_assert!(diags.is_empty(), "synthetic program flagged: {diags:?}");
    }

    #[test]
    fn oracle_holds_on_synthetic_programs(cfg in synthetic_config()) {
        let program = generate(cfg);
        let report = oracle_check(&program, 200_000).expect("synthetic executes");
        prop_assert!(report.violations.is_empty(), "{:?}", report.violations);
        prop_assert!(
            report.single_use_instances <= report.upper_bound_instances
        );
        if report.trace_complete {
            prop_assert!(
                report.lower_bound_instances <= report.single_use_instances
            );
        }
    }

    /// Both classifiers' per-site bounds must bracket every brute-force
    /// dynamic consumer count, and the loop-peeled pass must only ever
    /// *tighten* the baseline's bounds, never widen them.
    #[test]
    fn static_bounds_bracket_brute_force_counts(cfg in synthetic_config()) {
        let program = generate(cfg);
        let cfa = Cfg::build(program.insts(), program.entry());
        let base = classify(&cfa, program.insts());
        let deep = classify_with_loops(&cfa, program.insts());
        let deep_of: HashMap<(usize, DefSlot), _> = deep
            .sites
            .iter()
            .map(|s| ((s.site.pc, s.site.slot), *s))
            .collect();
        let (observed, complete) = brute_force_counts(&program, 200_000);
        for s in &base.sites {
            let d = deep_of[&(s.site.pc, s.site.slot)];
            prop_assert!(
                d.min_consumers >= s.min_consumers
                    && d.max_consumers <= s.max_consumers,
                "pc {} {:?}: loop-peeled bounds [{}, {}] widen base [{}, {}]",
                s.site.pc, s.site.slot,
                d.min_consumers, d.max_consumers,
                s.min_consumers, s.max_consumers,
            );
            let Some(counts) = observed.get(&(s.site.pc, s.site.slot)) else {
                continue;
            };
            for (site, label) in [(s, "base"), (&d, "loop-peeled")] {
                for &n in counts {
                    if site.max_consumers < MAX_SAT {
                        prop_assert!(
                            n <= site.max_consumers as u32,
                            "pc {} {:?}: observed {n} above {label} max {}",
                            s.site.pc, s.site.slot, site.max_consumers,
                        );
                    }
                    if complete {
                        prop_assert!(
                            n >= site.min_consumers as u32,
                            "pc {} {:?}: observed {n} below {label} min {}",
                            s.site.pc, s.site.slot, site.min_consumers,
                        );
                    }
                }
            }
        }
    }

    /// The loop-split proofs behind the two refined classes:
    /// `AtMostOnce` values may never gain a second consumer (holds even
    /// on truncated traces — it is an upper bound), and `NeverSingle`
    /// values are never consumed exactly once on complete traces.
    #[test]
    fn refined_classes_hold_dynamically(cfg in synthetic_config()) {
        let program = generate(cfg);
        let cfa = Cfg::build(program.insts(), program.entry());
        let deep = classify_with_loops(&cfa, program.insts());
        let (observed, complete) = brute_force_counts(&program, 200_000);
        for s in &deep.sites {
            let Some(counts) = observed.get(&(s.site.pc, s.site.slot)) else {
                continue;
            };
            match s.class {
                SiteClass::AtMostOnce => {
                    for &n in counts {
                        prop_assert!(
                            n <= 1,
                            "pc {} {:?}: AtMostOnce instance consumed {n} times",
                            s.site.pc, s.site.slot,
                        );
                    }
                }
                SiteClass::NeverSingle if complete => {
                    for &n in counts {
                        prop_assert!(
                            n != 1,
                            "pc {} {:?}: NeverSingle instance consumed exactly once",
                            s.site.pc, s.site.slot,
                        );
                    }
                }
                _ => {}
            }
        }
    }
}
