//! Sampled-vs-full equivalence: the two-speed engine's 95% confidence
//! interval must cover the IPC of a full detailed run of the same
//! stream.
//!
//! SMARTS-style sampling replaces exhaustive detailed simulation with
//! periodic measured windows over a functionally-warmed stream; its
//! whole claim is that the window-mean IPC estimates the full-run IPC.
//! These tests check that claim end to end at a scale (10⁵) where the
//! full detailed run is still affordable.

use regshare::harness::{run_kernel, run_kernel_sampled, Scheme};
use regshare::sim::SampledConfig;
use regshare::stats::SamplePlan;
use regshare::workloads::all_kernels;

const SCALE: u64 = 100_000;
const RF_REGS: usize = 64;

/// One kernel per suite family, each with genuine window-to-window
/// variance so the CI check is meaningful. (Perfectly periodic kernels
/// like saxpy produce identical windows and a degenerate zero-width CI
/// that can never cover the full run's cold-start transient.) Everything
/// here is deterministic: these either pass forever or fail forever.
const KERNELS: [&str; 3] = ["matmul", "bitcount", "adpcm"];

fn plan() -> SampledConfig {
    // 10 windows over 10⁵ instructions: 1k detailed warmup, 3k measured.
    SampledConfig::new(SamplePlan::new(10_000, 1_000, 3_000))
}

#[test]
fn sampled_ci_covers_full_detailed_ipc() {
    let kernels = all_kernels();
    let mut failures = Vec::new();
    for name in KERNELS {
        let k = kernels.iter().find(|k| k.name == name).unwrap();
        let full = run_kernel(k, Scheme::Proposed, RF_REGS, SCALE);
        let full_ipc = full.committed_instructions as f64 / full.cycles as f64;
        let sampled = run_kernel_sampled(k, Scheme::Proposed, RF_REGS, SCALE, &plan(), Some(2));
        if !sampled.ci_covers(full_ipc) {
            failures.push(format!(
                "{name}: full IPC {full_ipc:.4} outside sampled {:.4} ±{:.4} ({} windows)",
                sampled.ipc_mean(),
                sampled.ipc_ci95(),
                sampled.ipc.count(),
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "sampled CI misses full-run IPC:\n{}",
        failures.join("\n")
    );
}

#[test]
fn sampled_report_accounts_for_both_speeds() {
    let kernels = all_kernels();
    let k = kernels.iter().find(|k| k.name == "saxpy").unwrap();
    // A short explicit lead keeps checkpoints *after* stream start, so
    // the sequential warming pass actually fast-forwards. (The default
    // 100k lead clamps to the window start at this scale, putting every
    // checkpoint at instruction 0.)
    let mut sample = plan();
    sample.lead = 2_000;
    let r = run_kernel_sampled(k, Scheme::Baseline, RF_REGS, SCALE, &sample, Some(2));
    // The warming pass covers the stream the windows sample from.
    assert!(r.warm_instructions > 0);
    assert!(r.detailed_instructions > 0);
    // Every non-degenerate window contributes one observation.
    let live = r.windows.iter().filter(|w| w.cycles > 0).count() as u64;
    assert_eq!(r.ipc.count(), live);
    assert!(live >= 2, "expected several live windows at this scale");
}
