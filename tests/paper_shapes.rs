//! Regression guards for the paper's headline *shapes*: if a change to
//! the renamer, simulator or kernels breaks one of the reproduced results
//! documented in EXPERIMENTS.md, these tests fail.

use regshare::core::{BankConfig, HintPolicy, RenamerConfig, ReuseRenamer};
use regshare::harness::{
    experiment_config, renamer_for, run_kernel, swept_class, Scheme, FIXED_RF,
};
use regshare::isa::RegClass;
use regshare::sim::Pipeline;
use regshare::stats::{geomean, mean};
use regshare::workloads::{analysis, suite_kernels, Suite};

const ANALYSIS_SCALE: u64 = 60_000;
const SIM_SCALE: u64 = 40_000;

fn suite_single_use(suite: Suite) -> f64 {
    let vals: Vec<f64> = suite_kernels(suite)
        .iter()
        .map(|k| {
            analysis::analyze(&k.program(ANALYSIS_SCALE), ANALYSIS_SCALE).single_use_fraction()
        })
        .collect();
    mean(&vals)
}

#[test]
fn fig1_fp_suite_exceeds_paper_floor() {
    // Paper: > 50 % of SPECfp destination values are single-consumer.
    let fp = suite_single_use(Suite::Fp);
    assert!(fp > 0.5, "fp-like single-use fraction fell to {fp:.3}");
}

#[test]
fn fig1_int_suite_exceeds_paper_floor() {
    // Paper: > 30 % for SPECint.
    let int = suite_single_use(Suite::Int);
    assert!(int > 0.3, "int-like single-use fraction fell to {int:.3}");
}

#[test]
fn fig1_fp_dominates_int() {
    assert!(suite_single_use(Suite::Fp) > suite_single_use(Suite::Int));
}

#[test]
fn fig3_reuse_potential_is_monotone_and_front_loaded() {
    for k in suite_kernels(Suite::Fp) {
        let p = k.program(ANALYSIS_SCALE);
        let one = analysis::reuse_potential(&p, ANALYSIS_SCALE, 1);
        let two = analysis::reuse_potential(&p, ANALYSIS_SCALE, 2);
        let three = analysis::reuse_potential(&p, ANALYSIS_SCALE, 3);
        let unlimited = analysis::reuse_potential(&p, ANALYSIS_SCALE, u64::MAX);
        assert!(
            one <= two && two <= three && three <= unlimited,
            "{}",
            k.name
        );
        // The first reuse level contributes the majority of the total —
        // the paper's justification for a small version counter.
        assert!(
            one >= unlimited * 0.5,
            "{}: first level {one:.3} vs unlimited {unlimited:.3}",
            k.name
        );
    }
}

#[test]
fn fig10ec_equal_count_wins_at_small_files() {
    // The mechanism's benefit (equal register count) at the smallest
    // file must stay positive on average — EXPERIMENTS.md reports ~+5 %.
    let mut speedups = Vec::new();
    for suite in [Suite::Int, Suite::Media] {
        for k in suite_kernels(suite) {
            let base = run_kernel(&k, Scheme::Baseline, 48, SIM_SCALE);
            let swept = swept_class(k.suite);
            let swept_banks = BankConfig::new(vec![36, 4, 4, 4]);
            let fixed = BankConfig::conventional(FIXED_RF);
            let (int_banks, fp_banks) = match swept {
                RegClass::Int => (swept_banks, fixed),
                RegClass::Fp => (fixed, swept_banks),
            };
            let renamer = Box::new(ReuseRenamer::new(RenamerConfig {
                int_banks,
                fp_banks,
                counter_bits: 2,
                predictor_entries: 512,
                predictor_bits: 2,
                speculative_reuse: true,
                hint_policy: HintPolicy::DynamicOnly,
                threads: 1,
            }));
            let program = k.program(SIM_SCALE);
            let mut sim = Pipeline::new(program, renamer, experiment_config(SIM_SCALE));
            let prop = sim.run().expect("equal-count run");
            speedups.push(prop.ipc() / base.ipc());
        }
    }
    let g = geomean(&speedups);
    assert!(g > 1.0, "equal-count geomean at 48 regs fell to {g:.4}");
}

#[test]
fn fig10_gains_shrink_with_register_file_size() {
    // Equal-area speedups must converge toward 1.0 at the largest file.
    let kernels = suite_kernels(Suite::Media);
    let k = kernels
        .iter()
        .find(|k| k.name == "sad")
        .expect("sad exists");
    let small = {
        let b = run_kernel(k, Scheme::Baseline, 48, SIM_SCALE);
        let p = run_kernel(k, Scheme::Proposed, 48, SIM_SCALE);
        p.ipc() / b.ipc()
    };
    let large = {
        let b = run_kernel(k, Scheme::Baseline, 112, SIM_SCALE);
        let p = run_kernel(k, Scheme::Proposed, 112, SIM_SCALE);
        p.ipc() / b.ipc()
    };
    assert!(
        small > 1.1,
        "sad at 48 regs lost its equal-area win: {small:.3}"
    );
    assert!(
        (large - 1.0).abs() < 0.1,
        "speedup should vanish at 112 regs, got {large:.3}"
    );
    assert!(small > large);
}

#[test]
fn reuse_attains_most_of_its_oracle_ceiling() {
    // The renamer must reach a large fraction of the Fig. 3 potential at
    // an unconstrained register file.
    for k in suite_kernels(Suite::Fp) {
        let program = k.program(SIM_SCALE);
        let potential = analysis::reuse_potential(&program, SIM_SCALE, 3);
        if potential < 0.05 {
            continue;
        }
        let renamer = renamer_for(Scheme::Proposed, 96, swept_class(k.suite));
        let mut sim = Pipeline::new(program, renamer, experiment_config(SIM_SCALE));
        let report = sim.run().expect("run");
        let attained = report.rename.reuse_fraction();
        // The oracle has perfect future knowledge and unbounded shadow
        // banks; the hardware predictor with Table III banks attains a
        // kernel-dependent fraction of it (55–100 % for most kernels,
        // ~30 % for matmul whose many concurrent short chains exceed the
        // shadow banks). Guard against collapse, not against the oracle.
        assert!(
            attained > potential * 0.25,
            "{}: attained {attained:.3} of potential {potential:.3}",
            k.name
        );
    }
}

#[test]
fn table_iii_configs_always_cost_no_more_area() {
    use regshare::area::{baseline_area, proposed_area, RegFilePorts};
    let ports = RegFilePorts::default();
    for n in BankConfig::PAPER_SIZES {
        let banks = BankConfig::paper_row(n);
        assert!(
            proposed_area(&banks, ports, 64) <= baseline_area(n, ports, 64) * 1.0001,
            "Table III row {n} exceeds the baseline's area"
        );
    }
}
