//! Invariant-auditor self-tests: seed deliberately corrupted renamer
//! states into a live pipeline and check that the periodic audit catches
//! each one with the right diagnostic — the auditor guards the guards.

use regshare::core::{CorruptKind, RenamerConfig, ReuseRenamer};
use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::sim::{Pipeline, SimError};
use regshare::workloads::{all_kernels, Kernel};

const SCALE: u64 = 4_000;

fn kernel(name: &str) -> Kernel {
    all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
}

/// Each kind of seeded corruption — a leaked physical register, a stale
/// version tag in the map table, a mapping refcount off by one — must be
/// detected by the first audit, with a diagnostic naming the violated
/// invariant and a pipeline snapshot attached.
#[test]
fn each_corruption_kind_stops_the_run_with_a_diagnostic() {
    let cases = [
        (CorruptKind::LeakPreg, "leak"),
        (CorruptKind::StaleVersionTag, "stale version"),
        (CorruptKind::RefcountOffByOne, "mapping count"),
    ];
    let k = kernel("saxpy");
    for (kind, needle) in cases {
        let mut renamer = ReuseRenamer::new(RenamerConfig::paper(64));
        renamer.corrupt(kind);
        let mut cfg = experiment_config(SCALE);
        cfg.audit_interval = 1;
        let mut sim = Pipeline::new(k.program(SCALE), Box::new(renamer), cfg);
        match sim.run() {
            Err(SimError::Invariant { what, snapshot, .. }) => {
                assert!(
                    what.contains(needle),
                    "{kind:?}: diagnostic {what:?} does not mention {needle:?}"
                );
                assert!(
                    what.starts_with("renamer audit:"),
                    "{kind:?}: violation must be attributed to the renamer audit, got {what:?}"
                );
                let dump = format!("{snapshot}");
                assert!(
                    dump.contains("pipeline snapshot"),
                    "snapshot missing: {dump}"
                );
            }
            other => panic!("{kind:?}: expected an invariant violation, got {other:?}"),
        }
    }
}

/// With no seeded corruption the audits must pass continuously on both
/// schemes, across kernels with exceptions and heavy misprediction —
/// the auditor must not false-positive on legal transient states.
#[test]
fn healthy_runs_audit_clean_every_cycle() {
    for scheme in [Scheme::Baseline, Scheme::Proposed] {
        for name in ["saxpy", "hashjoin", "sort"] {
            let k = kernel(name);
            let mut cfg = experiment_config(SCALE);
            cfg.audit_interval = 1;
            let renamer = renamer_for(scheme, 64, swept_class(k.suite));
            let mut sim = Pipeline::new(k.program(SCALE), renamer, cfg);
            sim.run()
                .unwrap_or_else(|e| panic!("{name} under {} audited dirty: {e}", scheme.label()));
            assert!(sim.audits() > 100, "audits ran every cycle");
        }
    }
}

/// A physical register aliased into a second thread's map table must be
/// caught by the first audit as a cross-thread ownership leak: under
/// SMT the free lists and PRT are shared, but every mapped register
/// belongs to exactly one hardware thread.
#[test]
fn cross_thread_leak_is_caught_under_smt() {
    let banks = regshare::core::BankConfig::new(vec![72, 8, 8, 8]);
    let config = RenamerConfig {
        int_banks: banks.clone(),
        fp_banks: banks,
        ..RenamerConfig::paper(96)
    }
    .with_threads(2);
    let mut renamer = ReuseRenamer::new(config);
    renamer.corrupt(CorruptKind::CrossThreadLeak);
    let mut cfg = experiment_config(SCALE * 2).with_threads(2);
    cfg.audit_interval = 1;
    let programs = vec![kernel("saxpy").program(SCALE), kernel("dct").program(SCALE)];
    let mut sim = Pipeline::new_smt(programs, Box::new(renamer), cfg).expect("valid smt config");
    match sim.run() {
        Err(SimError::Invariant { what, .. }) => {
            assert!(
                what.contains("cross-thread register leak"),
                "diagnostic {what:?} does not name the cross-thread leak"
            );
            assert!(
                what.starts_with("renamer audit:"),
                "violation must be attributed to the renamer audit, got {what:?}"
            );
        }
        other => panic!("expected an invariant violation, got {other:?}"),
    }
}

/// Healthy two-thread runs audit clean every cycle under both renamers:
/// the per-thread map-consistency and partitioned-ROB-occupancy checks
/// must not false-positive on legal SMT interleavings.
#[test]
fn healthy_two_thread_runs_audit_clean_every_cycle() {
    use regshare::core::{BaselineRenamer, Renamer};
    use regshare::sim::FetchPolicyKind;
    let banks = regshare::core::BankConfig::new(vec![72, 8, 8, 8]);
    let renamers: Vec<(&str, Box<dyn Renamer>)> = vec![
        (
            "baseline",
            Box::new(BaselineRenamer::new(
                RenamerConfig::baseline(96).with_threads(2),
            )),
        ),
        (
            "proposed",
            Box::new(ReuseRenamer::new(
                RenamerConfig {
                    int_banks: banks.clone(),
                    fp_banks: banks,
                    ..RenamerConfig::paper(96)
                }
                .with_threads(2),
            )),
        ),
    ];
    for (label, renamer) in renamers {
        let mut cfg = experiment_config(SCALE * 2).with_threads(2);
        cfg.audit_interval = 1;
        cfg.fetch_policy = FetchPolicyKind::Icount;
        let programs = vec![
            kernel("hashjoin").program(SCALE),
            kernel("fft").program(SCALE),
        ];
        let mut sim = Pipeline::new_smt(programs, renamer, cfg).expect("valid smt config");
        sim.run()
            .unwrap_or_else(|e| panic!("2-thread {label} audited dirty: {e}"));
        assert!(sim.audits() > 100, "audits ran every cycle");
    }
}
