//! SMT and width-scaling regressions.
//!
//! Two pins: the width goldens hold the single-thread simulator to the
//! exact cycle/instruction counts it produced before the pipeline was
//! threaded (width 4 is the pre-refactor default shape; widths 2 and 8
//! pin the width-generic latches), and the two-thread ICOUNT runs must
//! be bit-identical however many harness workers replay them — thread
//! interleaving inside the simulated core is architectural state, not
//! scheduling noise.

use regshare::core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare::harness::{experiment_config, par_map_with, renamer_for, swept_class, Scheme};
use regshare::sim::{FetchPolicyKind, Pipeline, SimReport};
use regshare::workloads::{all_kernels, Kernel};

const SCALE: u64 = 8_000;
const RF_REGS: usize = 64;

fn kernel(name: &str) -> Kernel {
    all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
}

/// (kernel, scheme, width, cycles, committed instructions) at
/// `SCALE`/`RF_REGS`, captured on the single-threaded simulator before
/// the SMT refactor. Any drift here is a behavior change to the
/// single-thread pipeline, not an SMT feature.
const WIDTH_GOLDEN: [(&str, Scheme, usize, u64, u64); 36] = [
    ("saxpy", Scheme::Baseline, 2, 6492, 5336),
    ("saxpy", Scheme::Baseline, 4, 6489, 5336),
    ("saxpy", Scheme::Baseline, 8, 6488, 5336),
    ("saxpy", Scheme::Proposed, 2, 6492, 5336),
    ("saxpy", Scheme::Proposed, 4, 6489, 5336),
    ("saxpy", Scheme::Proposed, 8, 6488, 5336),
    ("dct", Scheme::Baseline, 2, 10389, 7591),
    ("dct", Scheme::Baseline, 4, 10386, 7591),
    ("dct", Scheme::Baseline, 8, 10385, 7591),
    ("dct", Scheme::Proposed, 2, 10389, 7591),
    ("dct", Scheme::Proposed, 4, 10386, 7591),
    ("dct", Scheme::Proposed, 8, 10385, 7591),
    ("matmul", Scheme::Baseline, 2, 7174, 6984),
    ("matmul", Scheme::Baseline, 4, 8132, 6984),
    ("matmul", Scheme::Baseline, 8, 7548, 6984),
    ("matmul", Scheme::Proposed, 2, 7174, 6984),
    ("matmul", Scheme::Proposed, 4, 8132, 6984),
    ("matmul", Scheme::Proposed, 8, 7548, 6984),
    ("fft", Scheme::Baseline, 2, 6909, 8000),
    ("fft", Scheme::Baseline, 4, 5245, 8002),
    ("fft", Scheme::Baseline, 8, 5116, 8003),
    ("fft", Scheme::Proposed, 2, 6920, 8000),
    ("fft", Scheme::Proposed, 4, 5368, 8002),
    ("fft", Scheme::Proposed, 8, 5222, 8003),
    ("sort", Scheme::Baseline, 2, 7552, 6446),
    ("sort", Scheme::Baseline, 4, 5673, 6446),
    ("sort", Scheme::Baseline, 8, 4845, 6446),
    ("sort", Scheme::Proposed, 2, 7312, 6446),
    ("sort", Scheme::Proposed, 4, 5791, 6446),
    ("sort", Scheme::Proposed, 8, 6929, 6446),
    ("hashjoin", Scheme::Baseline, 2, 14081, 6166),
    ("hashjoin", Scheme::Baseline, 4, 18016, 6166),
    ("hashjoin", Scheme::Baseline, 8, 14961, 6166),
    ("hashjoin", Scheme::Proposed, 2, 16860, 6166),
    ("hashjoin", Scheme::Proposed, 4, 18273, 6166),
    ("hashjoin", Scheme::Proposed, 8, 16062, 6166),
];

fn run_width(name: &str, scheme: Scheme, width: usize) -> SimReport {
    let k = kernel(name);
    let renamer = renamer_for(scheme, RF_REGS, swept_class(k.suite));
    let cfg = experiment_config(SCALE).with_width(width);
    let mut sim = Pipeline::new(k.program(SCALE), renamer, cfg);
    sim.run()
        .unwrap_or_else(|e| panic!("{name} {} w{width}: {e}", scheme.label()))
}

/// Widths 2/4/8 reproduce the pre-refactor single-thread goldens
/// exactly; a single-thread pipeline through the threaded code paths is
/// the same machine.
#[test]
fn width_goldens_are_stable() {
    let mismatches: Vec<String> = WIDTH_GOLDEN
        .iter()
        .filter_map(|&(name, scheme, width, cycles, committed)| {
            let r = run_width(name, scheme, width);
            (r.cycles != cycles || r.committed_instructions != committed).then(|| {
                format!(
                    "{name} {} w{width}: got {}c/{}i, want {cycles}c/{committed}i",
                    scheme.label(),
                    r.cycles,
                    r.committed_instructions
                )
            })
        })
        .collect();
    assert!(
        mismatches.is_empty(),
        "width goldens drifted:\n{mismatches:#?}"
    );
}

fn two_thread_icount_report() -> SimReport {
    let programs = vec![kernel("saxpy").program(SCALE), kernel("fft").program(SCALE)];
    let renamer: Box<dyn Renamer> = Box::new(BaselineRenamer::new(
        RenamerConfig::baseline(96).with_threads(2),
    ));
    let mut cfg = experiment_config(SCALE * 2).with_threads(2);
    cfg.fetch_policy = FetchPolicyKind::Icount;
    let mut sim = Pipeline::new_smt(programs, renamer, cfg).expect("valid smt config");
    sim.run().expect("2-thread icount run")
}

/// The same two-thread ICOUNT simulation replayed under 1, 2 and 8
/// harness workers must be bit-identical: all cross-thread arbitration
/// (fetch pick, shared-width rotation, free-list order) is a pure
/// function of the simulated cycle.
#[test]
fn two_thread_icount_is_deterministic_across_worker_counts() {
    let reference = two_thread_icount_report();
    assert_eq!(reference.threads, 2);
    assert!(reference.per_thread_committed.iter().all(|&c| c > 0));
    for workers in [1usize, 2, 8] {
        let runs = par_map_with(&[(); 4], Some(workers), |_| two_thread_icount_report());
        for r in runs {
            assert_eq!(
                (
                    r.cycles,
                    r.committed_instructions,
                    r.per_thread_committed.clone()
                ),
                (
                    reference.cycles,
                    reference.committed_instructions,
                    reference.per_thread_committed.clone()
                ),
                "2-thread ICOUNT diverged under {workers} workers"
            );
        }
    }
}

/// The proposed renamer's sharing machinery runs under SMT too: a
/// two-thread run over shared banks commits both programs and reports
/// a nonzero single-use reuse fraction.
#[test]
fn two_thread_reuse_renamer_shares_registers() {
    let programs = vec![kernel("saxpy").program(SCALE), kernel("dct").program(SCALE)];
    let banks = regshare::core::BankConfig::new(vec![72, 8, 8, 8]);
    let config = RenamerConfig {
        int_banks: banks.clone(),
        fp_banks: banks,
        ..RenamerConfig::baseline(96)
    }
    .with_threads(2);
    let renamer: Box<dyn Renamer> = Box::new(ReuseRenamer::new(config));
    let mut cfg = experiment_config(SCALE * 2).with_threads(2);
    cfg.fetch_policy = FetchPolicyKind::Icount;
    let mut sim = Pipeline::new_smt(programs, renamer, cfg).expect("valid smt config");
    let report = sim.run().expect("2-thread reuse run");
    assert!(report.per_thread_committed.iter().all(|&c| c > 0));
    assert!(
        report.rename.reuse_fraction() > 0.0,
        "sharing never fired under SMT"
    );
}
