//! Property-based invariants on the renaming schemes driven directly
//! (without the pipeline): random rename/commit/squash interleavings must
//! conserve registers, keep versions within capacity, and leave the map
//! consistent.

use proptest::prelude::*;
use regshare::core::{
    BankConfig, BaselineRenamer, EarlyReleaseRenamer, HintPolicy, Renamer, RenamerConfig,
    ReuseRenamer, UopKind,
};
use regshare::isa::{reg, Inst, Opcode, RegClass};
use std::collections::VecDeque;

/// One step of the random driver.
#[derive(Debug, Clone)]
enum Step {
    /// Rename an ALU op `x[d] <- x[s1] op x[s2]`.
    Rename { d: u8, s1: u8, s2: u8, op: u8 },
    /// Rename a store (no destination).
    Store { s1: u8, s2: u8 },
    /// Commit the oldest in-flight micro-op.
    Commit,
    /// Squash the youngest `n` renamed instructions.
    Squash { keep_ratio: u8 },
    /// Issue (read operands of) the oldest unissued micro-op and write it
    /// back — drives the early-release hooks.
    IssueOldest,
    /// Advance the non-speculative boundary to the oldest in-flight op.
    Resolve,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (0u8..31, 0u8..31, 0u8..31, 0u8..4)
            .prop_map(|(d, s1, s2, op)| Step::Rename { d, s1, s2, op }),
        1 => (0u8..31, 0u8..31).prop_map(|(s1, s2)| Step::Store { s1, s2 }),
        4 => Just(Step::Commit),
        1 => (0u8..=100).prop_map(|keep_ratio| Step::Squash { keep_ratio }),
        2 => Just(Step::IssueOldest),
        2 => Just(Step::Resolve),
    ]
}

fn inst_for(step: &Step) -> Inst {
    match step {
        Step::Rename { d, s1, s2, op } => {
            let opcode = [Opcode::Add, Opcode::Sub, Opcode::Xor, Opcode::Mul][*op as usize];
            Inst::rrr(opcode, reg::x(*d), reg::x(*s1), reg::x(*s2))
        }
        Step::Store { s1, s2 } => Inst::store(Opcode::St, reg::x(*s1), reg::x(*s2), 0),
        _ => unreachable!("only rename steps have instructions"),
    }
}

/// Drives a renamer through the steps, tracking in-flight seqs, and
/// checks conservation invariants throughout.
///
/// `min_pinned` is the minimum number of distinct physical registers the
/// 32 committed logical mappings can occupy: 32 for the baseline, but as
/// low as 4 under register sharing (up to 8 versions of one register can
/// each hold a logical mapping — sharing is the point of the scheme).
fn drive(renamer: &mut dyn Renamer, steps: &[Step], total_regs: usize, min_pinned: usize) {
    let mut in_flight: VecDeque<u64> = VecDeque::new();
    let mut unissued: VecDeque<u64> = VecDeque::new();
    let mut next_seq = 1u64;
    let mut pc = 0u64;
    for step in steps {
        match step {
            Step::Rename { .. } | Step::Store { .. } => {
                let inst = inst_for(step);
                pc += 1;
                if let Some(uops) = renamer.rename(next_seq, pc, &inst) {
                    for u in &uops {
                        assert!(matches!(u.kind, UopKind::Main | UopKind::RepairMove));
                        in_flight.push_back(u.seq);
                        unissued.push_back(u.seq);
                    }
                    next_seq += uops.len() as u64;
                }
            }
            Step::IssueOldest => {
                if let Some(seq) = unissued.pop_front() {
                    renamer.on_operands_read(seq);
                    renamer.on_writeback(seq);
                }
            }
            Step::Resolve => {
                let boundary = in_flight.front().copied().unwrap_or(next_seq);
                renamer.advance_nonspeculative(boundary);
            }
            Step::Commit => {
                if let Some(seq) = in_flight.pop_front() {
                    // In-order issue before commit, as the pipeline
                    // guarantees.
                    if unissued.front() == Some(&seq) {
                        unissued.pop_front();
                        renamer.on_operands_read(seq);
                        renamer.on_writeback(seq);
                    }
                    renamer.commit(seq);
                }
            }
            Step::Squash { keep_ratio } => {
                let keep = in_flight.len() * (*keep_ratio as usize) / 100;
                let boundary = if keep == 0 {
                    // Squash everything renamed so far but not committed.
                    in_flight.front().map(|s| s - 1).unwrap_or(0)
                } else {
                    in_flight[keep - 1]
                };
                renamer.squash_after(boundary);
                while in_flight.len() > keep {
                    let seq = in_flight.pop_back().expect("non-empty");
                    unissued.retain(|s| *s != seq);
                }
            }
        }
        // Invariants: the committed mappings always pin at least
        // `min_pinned` registers, and every register is either free or
        // in use (conservation).
        let free = renamer.free_regs(RegClass::Int);
        assert!(
            free <= total_regs - min_pinned,
            "free list larger than possible: {free}"
        );
        let in_use: usize = renamer.in_use_per_bank(RegClass::Int).iter().sum();
        assert_eq!(in_use + free, total_regs, "register conservation violated");
    }
    // Drain: issue and commit everything left; all mappings then stable.
    while let Some(seq) = in_flight.pop_front() {
        if unissued.front() == Some(&seq) {
            unissued.pop_front();
            renamer.on_operands_read(seq);
            renamer.on_writeback(seq);
        }
        renamer.commit(seq);
    }
    let free = renamer.free_regs(RegClass::Int);
    let in_use: usize = renamer.in_use_per_bank(RegClass::Int).iter().sum();
    assert_eq!(in_use + free, total_regs);
    assert!(in_use >= min_pinned, "committed state must stay pinned");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn baseline_conserves_registers(steps in prop::collection::vec(step_strategy(), 1..200)) {
        let total = 64;
        let mut r = BaselineRenamer::new(RenamerConfig::baseline(total));
        drive(&mut r, &steps, total, 32);
    }

    #[test]
    fn reuse_conserves_registers(
        steps in prop::collection::vec(step_strategy(), 1..200),
        n1 in 0usize..6, n2 in 0usize..6, n3 in 0usize..6,
        bits in 1u8..=3,
    ) {
        let n0 = 48;
        let total = n0 + n1 + n2 + n3;
        let banks = BankConfig::new(vec![n0, n1, n2, n3]);
        let config = RenamerConfig {
            int_banks: banks.clone(),
            fp_banks: banks,
            counter_bits: bits,
            predictor_entries: 64,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        };
        let mut r = ReuseRenamer::new(config);
        drive(&mut r, &steps, total, 4);
    }

    #[test]
    fn early_release_conserves_registers(steps in prop::collection::vec(step_strategy(), 1..200)) {
        let total = 64;
        let mut r = EarlyReleaseRenamer::new(RenamerConfig::baseline(total));
        drive(&mut r, &steps, total, 32);
    }

    #[test]
    fn squash_restores_rename_map(
        steps in prop::collection::vec(step_strategy(), 1..60),
    ) {
        // Rename a batch, snapshot the map, rename more, squash back:
        // the map must be restored exactly.
        let mut r = ReuseRenamer::new(RenamerConfig::small_test());
        let mut next_seq = 1u64;
        let mut pc = 0u64;
        for step in &steps {
            if matches!(step, Step::Rename { .. } | Step::Store { .. }) {
                if let Some(uops) = r.rename(next_seq, pc, &inst_for(step)) {
                    next_seq += uops.len() as u64;
                }
                pc += 1;
            }
        }
        let snapshot = r.map().clone();
        let boundary = next_seq - 1;
        // A second batch, then squash it entirely.
        for step in &steps {
            if matches!(step, Step::Rename { .. } | Step::Store { .. }) {
                if let Some(uops) = r.rename(next_seq, pc, &inst_for(step)) {
                    next_seq += uops.len() as u64;
                }
                pc += 1;
            }
        }
        r.squash_after(boundary);
        prop_assert_eq!(r.map(), &snapshot);
    }
}
