//! Negative-corpus linter coverage: every deliberately-broken program in
//! the seeded corpus must raise exactly the diagnostic it was built to
//! demonstrate. CI runs this as a gate (see .github/workflows/ci.yml).

use regshare::analyze::{is_clean_of_errors, lint, negative_corpus, DiagCode, Severity};

#[test]
fn every_corpus_case_raises_its_expected_diagnostic() {
    let corpus = negative_corpus(0xC0FFEE, 120);
    assert!(corpus.len() > 100, "corpus unexpectedly small");
    for case in corpus {
        let diags = lint(&case.insts, case.entry);
        assert!(
            diags.iter().any(|d| d.code == case.expect),
            "case {} did not raise {:?}; diagnostics: {:?}",
            case.name,
            case.expect,
            diags
        );
    }
}

#[test]
fn error_class_defects_are_errors_not_warnings() {
    for case in negative_corpus(7, 60) {
        let is_error_class = matches!(
            case.expect,
            DiagCode::EmptyProgram
                | DiagCode::BadEntry
                | DiagCode::BranchTargetOutOfRange
                | DiagCode::PostIncBaseConflict
                | DiagCode::FallsOffEnd
        );
        if !is_error_class {
            continue;
        }
        let diags = lint(&case.insts, case.entry);
        assert!(
            !is_clean_of_errors(&diags),
            "case {} produced no error",
            case.name
        );
        let hit = diags
            .iter()
            .find(|d| d.code == case.expect)
            .expect("expected code fires");
        assert_eq!(hit.severity, Severity::Error, "case {}", case.name);
    }
}

#[test]
fn diagnostics_are_machine_readable() {
    let corpus = negative_corpus(1, 6);
    let diags = lint(&corpus[0].insts, corpus[0].entry);
    let json = serde_json::to_string(&diags).expect("diagnostics serialize");
    assert!(json.contains("\"code\""));
    assert!(json.contains("\"pc\""));
}
