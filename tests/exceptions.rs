//! Precise-exception recovery under register sharing: page faults are
//! injected into kernel data, the pipeline flushes and recovers through
//! the shadow-cell register file, and the lockstep oracle verifies every
//! committed instruction afterwards.

use regshare::harness::{experiment_config, renamer_for, swept_class, Scheme};
use regshare::sim::Pipeline;
use regshare::workloads::all_kernels;

const SCALE: u64 = 6_000;

#[test]
fn single_fault_recovers_on_every_kernel_proposed() {
    for k in all_kernels() {
        let program = k.program(SCALE);
        let mut config = experiment_config(SCALE);
        config.check_oracle = true;
        // Kernels lay their data at 0x1_0000; fault that page once.
        config.inject_page_faults = vec![0x1_0000];
        let mut sim = Pipeline::new(
            program,
            renamer_for(Scheme::Proposed, 56, swept_class(k.suite)),
            config,
        );
        let report = sim.run().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert_eq!(
            report.exceptions, 1,
            "{} must take exactly one fault",
            k.name
        );
    }
}

#[test]
fn single_fault_recovers_on_every_kernel_baseline() {
    for k in all_kernels() {
        let program = k.program(SCALE);
        let mut config = experiment_config(SCALE);
        config.check_oracle = true;
        config.inject_page_faults = vec![0x1_0000];
        let mut sim = Pipeline::new(
            program,
            renamer_for(Scheme::Baseline, 56, swept_class(k.suite)),
            config,
        );
        let report = sim.run().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert_eq!(
            report.exceptions, 1,
            "{} must take exactly one fault",
            k.name
        );
    }
}

#[test]
fn multiple_faults_across_pages() {
    let kernels = all_kernels();
    let k = kernels
        .iter()
        .find(|k| k.name == "saxpy")
        .expect("saxpy exists");
    let program = k.program(60_000); // big enough to span several pages
    let mut config = experiment_config(60_000);
    config.check_oracle = true;
    config.inject_page_faults = vec![0x1_0000, 0x1_1000, 0x1_2000, 0x1_3000];
    let mut sim = Pipeline::new(
        program,
        renamer_for(Scheme::Proposed, 64, swept_class(k.suite)),
        config,
    );
    let report = sim.run().expect("multi-fault run");
    assert_eq!(report.exceptions, 4);
}

#[test]
fn faults_do_not_change_results() {
    let kernels = all_kernels();
    let k = kernels
        .iter()
        .find(|k| k.name == "gmm")
        .expect("gmm exists");
    let program = k.program(SCALE);

    let run = |faults: Vec<u64>| {
        let mut config = experiment_config(0);
        config.max_cycles = 30_000_000;
        config.inject_page_faults = faults;
        let mut sim = Pipeline::new(
            program.clone(),
            renamer_for(Scheme::Proposed, 56, swept_class(k.suite)),
            config,
        );
        let report = sim.run().expect("run");
        assert!(report.halted);
        // Output location for gmm: the score is written near the data base.
        let mem: Vec<u64> = (0x1_0000u64..0x1_0200)
            .step_by(8)
            .map(|a| sim.memory().read_u64(a))
            .collect();
        (report.exceptions, mem)
    };

    let (e0, clean) = run(vec![]);
    let (e1, faulted) = run(vec![0x1_0000]);
    assert_eq!(e0, 0);
    assert_eq!(e1, 1);
    assert_eq!(
        clean, faulted,
        "a precise exception must not change results"
    );
}

#[test]
fn fault_during_reuse_chain_uses_shadow_recovery() {
    use regshare::isa::{reg, Asm, DataBuilder};

    // A tight redefining chain ensures values live in shared registers
    // when the fault strikes mid-loop.
    const N: u64 = 1024; // spans three pages so the fault lands mid-loop
    let mut d = DataBuilder::new(0x5000);
    let arr = d.u64_array(&(0..N).collect::<Vec<u64>>());
    let out = d.zeros(8);
    let mut a = Asm::with_data(d);
    a.li(reg::x(1), arr as i64);
    a.li(reg::x(2), N as i64);
    a.li(reg::x(3), 1);
    let top = a.label();
    a.bind(top);
    a.ld(reg::x(4), reg::x(1), 0);
    a.add(reg::x(3), reg::x(3), reg::x(4));
    a.addi(reg::x(3), reg::x(3), 1); // chain: x3 redefined twice per iter
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.li(reg::x(5), out as i64);
    a.st(reg::x(3), reg::x(5), 0);
    a.halt();
    let program = a.assemble();

    let mut config = experiment_config(0);
    config.max_cycles = 1_000_000;
    config.check_oracle = true;
    // Fault the array's second page so reuse chains are hot when it hits.
    config.inject_page_faults = vec![(arr / 0x1000 + 1) * 0x1000];

    let renamer = renamer_for(Scheme::Proposed, 48, regshare::isa::RegClass::Int);
    let mut sim = Pipeline::new(program, renamer, config);
    let report = sim.run().expect("chain fault run");
    assert!(report.halted);
    assert_eq!(report.exceptions, 1);
    let expected: u64 = 1 + (0..N).sum::<u64>() + N;
    assert_eq!(sim.memory().read_u64(out), expected);
}
