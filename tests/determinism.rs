//! Determinism regression test.
//!
//! The experiment harness promises bit-identical results across runs and
//! across the sequential/parallel sweep paths: every simulation owns its
//! state, hashing is the deterministic [`regshare::stats::FastHasher`],
//! and `par_map` returns results in input order. These goldens pin the
//! committed-instruction and cycle counts of every kernel under both
//! schemes; any change to them is a behavior change, not a perf tweak,
//! and must be deliberate (regenerate with `cargo run --release --bin
//! golden_probe`).

use regshare::harness::{
    experiment_config, par_map, renamer_for, run_kernel, run_kernel_sampled, swept_class, Scheme,
};
use regshare::sim::{Pipeline, SampledConfig};
use regshare::stats::SamplePlan;
use regshare::workloads::all_kernels;

const SCALE: u64 = 8_000;
const RF_REGS: usize = 64;

/// (kernel, scheme, cycles, committed instructions) at `SCALE`/`RF_REGS`.
const GOLDEN: [(&str, Scheme, u64, u64); 36] = [
    ("saxpy", Scheme::Baseline, 6489, 5336),
    ("saxpy", Scheme::Proposed, 6489, 5336),
    ("fir", Scheme::Baseline, 12608, 7639),
    ("fir", Scheme::Proposed, 12608, 7639),
    ("dct", Scheme::Baseline, 10387, 7591),
    ("dct", Scheme::Proposed, 10387, 7591),
    ("matmul", Scheme::Baseline, 8414, 6984),
    ("matmul", Scheme::Proposed, 8414, 6984),
    ("horner", Scheme::Baseline, 22478, 7569),
    ("horner", Scheme::Proposed, 22478, 7569),
    ("stencil", Scheme::Baseline, 10362, 7279),
    ("stencil", Scheme::Proposed, 10362, 7279),
    ("options", Scheme::Baseline, 17437, 5617),
    ("options", Scheme::Proposed, 17437, 5617),
    ("fft", Scheme::Baseline, 5798, 8000),
    ("fft", Scheme::Proposed, 5871, 8000),
    ("sort", Scheme::Baseline, 6122, 6446),
    ("sort", Scheme::Proposed, 6175, 6446),
    ("hashjoin", Scheme::Baseline, 13737, 6166),
    ("hashjoin", Scheme::Proposed, 15674, 6166),
    ("pchase", Scheme::Baseline, 7684, 6672),
    ("pchase", Scheme::Proposed, 7896, 6672),
    ("crc32", Scheme::Baseline, 19744, 7276),
    ("crc32", Scheme::Proposed, 19825, 7276),
    ("rle", Scheme::Baseline, 16848, 7125),
    ("rle", Scheme::Proposed, 16913, 7125),
    ("bitcount", Scheme::Baseline, 4380, 8002),
    ("bitcount", Scheme::Proposed, 4421, 8002),
    ("adpcm", Scheme::Baseline, 21155, 8001),
    ("adpcm", Scheme::Proposed, 21273, 8001),
    ("sad", Scheme::Baseline, 6080, 8000),
    ("sad", Scheme::Proposed, 6090, 8000),
    ("gmm", Scheme::Baseline, 5903, 8001),
    ("gmm", Scheme::Proposed, 5672, 8001),
    ("dnn", Scheme::Baseline, 4559, 5031),
    ("dnn", Scheme::Proposed, 4480, 5031),
];

#[test]
fn every_kernel_matches_golden_counts() {
    let kernels = all_kernels();
    assert_eq!(kernels.len() * 2, GOLDEN.len(), "golden table out of date");
    // Run through the same worker pool the experiment sweeps use, so
    // this test covers the parallel path's determinism guarantee too.
    let points: Vec<(regshare::workloads::Kernel, Scheme)> = kernels
        .into_iter()
        .flat_map(|k| [(k, Scheme::Baseline), (k, Scheme::Proposed)])
        .collect();
    let reports = par_map(&points, |&(ref k, scheme)| {
        let r = run_kernel(k, scheme, RF_REGS, SCALE);
        (k.name, scheme, r.cycles, r.committed_instructions)
    });
    let mut mismatches = Vec::new();
    for ((got, want), (k, scheme)) in reports.iter().zip(GOLDEN.iter()).zip(points.iter()) {
        if got != want {
            // Re-run the diverging point on a pipeline we keep, so the
            // failure message carries its end-state diagnostic dump.
            let renamer = renamer_for(*scheme, RF_REGS, swept_class(k.suite));
            let mut sim = Pipeline::new(k.program(SCALE), renamer, experiment_config(SCALE));
            let rerun = sim.run();
            mismatches.push(format!(
                "got {got:?}, want {want:?}\n  rerun: {}\n  {}",
                match &rerun {
                    Ok(r) => format!(
                        "{} cycles, {} committed",
                        r.cycles, r.committed_instructions
                    ),
                    Err(e) => format!("error: {e}"),
                },
                sim.snapshot()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden mismatches:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn attached_hints_do_not_perturb_dynamic_only_goldens() {
    // A compiled hint table rides along in the program sidecar and is
    // installed into the renamer, but the default `DynamicOnly` policy
    // must never read it: every kernel must reproduce the same golden
    // counts as the bare run above, byte for byte.
    let kernels = all_kernels();
    let mismatches: Vec<String> = par_map(&kernels, |k| {
        let program = k.program(SCALE);
        let hints = regshare::analyze::compile_hints(&program);
        assert!(hints.exact_slots() > 0, "{}: no hints compiled", k.name);
        let renamer = renamer_for(Scheme::Proposed, RF_REGS, swept_class(k.suite));
        let mut sim = Pipeline::new(program.with_hints(hints), renamer, experiment_config(SCALE));
        let r = sim.run().expect("kernel runs");
        let want = GOLDEN
            .iter()
            .find(|(n, s, _, _)| *n == k.name && *s == Scheme::Proposed)
            .unwrap();
        ((k.name, Scheme::Proposed, r.cycles, r.committed_instructions) != *want).then(|| {
            format!(
                "{}: got ({}, {}), want ({}, {})",
                k.name, r.cycles, r.committed_instructions, want.2, want.3
            )
        })
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        mismatches.is_empty(),
        "hints perturbed DynamicOnly:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn repeated_runs_are_bit_identical() {
    let kernels = all_kernels();
    let k = kernels.iter().find(|k| k.name == "hashjoin").unwrap();
    let a = run_kernel(k, Scheme::Proposed, RF_REGS, SCALE);
    let b = run_kernel(k, Scheme::Proposed, RF_REGS, SCALE);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed_instructions, b.committed_instructions);
    assert_eq!(a.committed_uops, b.committed_uops);
    assert_eq!(a.rename.reuse_fraction(), b.rename.reuse_fraction());
}

#[test]
fn sliced_sampled_runs_are_identical_for_any_worker_count() {
    // Time-parallel slicing promises byte-identical window results
    // regardless of how many workers the windows are spread over: each
    // window runs from a checkpoint clone at a position that is a pure
    // function of the plan. Wall-clock fields are the one legitimate
    // difference, so compare everything but them.
    let kernels = all_kernels();
    let k = kernels.iter().find(|k| k.name == "matmul").unwrap();
    let sample = SampledConfig::new(SamplePlan::new(10_000, 1_000, 3_000));
    let runs: Vec<Vec<(u64, u64, u64, u64)>> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            run_kernel_sampled(k, Scheme::Proposed, RF_REGS, 60_000, &sample, Some(workers))
                .windows
                .iter()
                .map(|w| (w.start, w.instructions, w.cycles, w.uops))
                .collect()
        })
        .collect();
    assert!(!runs[0].is_empty(), "expected at least one window");
    assert_eq!(runs[0], runs[1], "1 worker vs 2 workers diverged");
    assert_eq!(runs[0], runs[2], "1 worker vs 8 workers diverged");
}

#[test]
fn par_map_matches_sequential_map() {
    let kernels = all_kernels();
    let seq: Vec<u64> = kernels
        .iter()
        .map(|k| run_kernel(k, Scheme::Baseline, RF_REGS, 2_000).cycles)
        .collect();
    let par = par_map(&kernels, |k| {
        run_kernel(k, Scheme::Baseline, RF_REGS, 2_000).cycles
    });
    assert_eq!(seq, par);
}
