//! A counting global allocator for heap-traffic attribution.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and allocated byte) into process-wide atomics. Binaries
//! opt in with `#[global_allocator]`; library code then reads the
//! counters through [`allocations`] / [`allocated_bytes`] regardless of
//! which binary installed it. Without an installed `CountingAlloc` the
//! counters simply stay at zero.
//!
//! This is the measurement behind two artifacts:
//!
//! * `experiments profile` reports allocations per simulated kilocycle
//!   per kernel (`results/profile.json`);
//! * the zero-allocation regression test asserts that a warmed-up
//!   detailed-mode pipeline ticks without touching the heap.
//!
//! The counters use relaxed atomics: they are totals, not an ordering
//! protocol, and the two extra relaxed `fetch_add`s are noise next to
//! the allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total heap allocations since process start (0 unless a
/// [`CountingAlloc`] is installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the heap since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// The counting allocator. Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: regshare::CountingAlloc = regshare::CountingAlloc::new();
/// ```
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const so it can be a `static`).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: defers every operation to `System`; the counter updates have
// no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh allocation from the hot loop's perspective.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
