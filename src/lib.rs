#![warn(missing_docs)]

//! `regshare` — register renaming with physical register sharing.
//!
//! A from-scratch reproduction of *"A Novel Register Renaming Technique
//! for Out-of-Order Processors"* (HPCA 2018): an execute-driven
//! out-of-order core simulator, the paper's physical-register-sharing
//! renaming scheme with shadow-cell recovery, the conventional baseline,
//! benchmark kernel suites, an analytical area model, and a harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace libraries and provides the
//! [`harness`] used by the examples, the experiment binary and the
//! criterion benches.
//!
//! # Quickstart
//!
//! ```
//! use regshare::harness::{run_kernel, Scheme};
//! use regshare::workloads::all_kernels;
//!
//! let kernel = &all_kernels()[0]; // saxpy
//! let base = run_kernel(kernel, Scheme::Baseline, 48, 20_000);
//! let prop = run_kernel(kernel, Scheme::Proposed, 48, 20_000);
//! println!("speedup: {:.3}", prop.ipc() / base.ipc());
//! ```

pub mod alloc_track;
pub mod experiments;

pub use alloc_track::CountingAlloc;

pub use regshare_analyze as analyze;
pub use regshare_area as area;
pub use regshare_core as core;
pub use regshare_isa as isa;
pub use regshare_mem as mem;
pub use regshare_sim as sim;
pub use regshare_stats as stats;
pub use regshare_workloads as workloads;

pub mod harness {
    //! Shared experiment plumbing: build a renamer for a scheme, run a
    //! kernel through the timing simulator, and aggregate results.

    use regshare_core::{
        BankConfig, BaselineRenamer, HintPolicy, Renamer, RenamerConfig, ReuseRenamer,
    };
    use regshare_isa::RegClass;
    use regshare_sim::{
        run_window, sample_windows, Pipeline, SampledConfig, SampledReport, SimConfig, SimReport,
    };
    use regshare_workloads::{Kernel, Suite};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Maps `f` over `items` on a scoped worker pool, one OS thread per
    /// available core, returning results in **input order** no matter
    /// which worker finished first.
    ///
    /// Each simulation point is independent (every run constructs its own
    /// pipeline, renamer and memory image), so the experiment sweeps are
    /// embarrassingly parallel; work is handed out through an atomic
    /// cursor so long and short kernels balance across workers. With one
    /// core (or one item) this degrades to a plain sequential map — the
    /// results are bit-identical either way, which is what lets the
    /// determinism test cover the parallel path.
    ///
    /// Worker panics (e.g. a simulation error surfaced by
    /// [`run_kernel`]) are re-raised on the caller with their original
    /// payload.
    ///
    /// # Examples
    ///
    /// ```
    /// use regshare::harness::par_map;
    ///
    /// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
    /// assert_eq!(squares, [1, 4, 9, 16]);
    /// ```
    pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        par_map_with(items, None, f)
    }

    /// [`par_map`] with an explicit worker count (`None` = one per
    /// available core). Results are in input order and bit-identical for
    /// every worker count — the property the time-parallel slicing
    /// determinism test pins down by sweeping `workers`.
    pub fn par_map_with<T, R, F>(items: &[T], workers: Option<usize>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
            .min(n);
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, R)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        collected.sort_by_key(|&(i, _)| i);
        collected.into_iter().map(|(_, r)| r).collect()
    }

    /// Number of physical registers in the register file that is *not*
    /// being swept (the paper keeps the other file at its Table I size).
    pub const FIXED_RF: usize = 128;

    /// The register file a suite stresses — the one the paper sweeps for
    /// that suite ("for integer benchmarks we consider different sizes of
    /// the integer register file whereas for floating-point benchmarks we
    /// measure performance for different sizes of the floating-point
    /// register file", §VI-B).
    pub fn swept_class(suite: Suite) -> RegClass {
        match suite {
            Suite::Fp | Suite::Cognitive => RegClass::Fp,
            Suite::Int | Suite::Media => RegClass::Int,
        }
    }

    /// Which renaming scheme to simulate.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Scheme {
        /// Conventional merged register file, release-on-commit.
        Baseline,
        /// The paper's physical-register-sharing scheme at equal area
        /// (Table III bank configuration).
        Proposed,
    }

    impl Scheme {
        /// Display label used in tables.
        pub fn label(self) -> &'static str {
            match self {
                Scheme::Baseline => "baseline",
                Scheme::Proposed => "proposed",
            }
        }
    }

    /// The renamer configuration for a scheme at a given
    /// *baseline-equivalent* size of the swept register file; the other
    /// file stays at [`FIXED_RF`] registers. The proposed scheme gets the
    /// Table III equal-area bank split for the swept file.
    pub fn renamer_config_for(scheme: Scheme, rf_regs: usize, swept: RegClass) -> RenamerConfig {
        let fixed = BankConfig::conventional(FIXED_RF);
        let (swept_banks, template) = match scheme {
            Scheme::Baseline => (
                BankConfig::conventional(rf_regs),
                RenamerConfig::baseline(rf_regs),
            ),
            Scheme::Proposed => (
                BankConfig::paper_row(rf_regs),
                RenamerConfig::paper(rf_regs),
            ),
        };
        let (int_banks, fp_banks) = match swept {
            RegClass::Int => (swept_banks, fixed),
            RegClass::Fp => (fixed, swept_banks),
        };
        RenamerConfig {
            int_banks,
            fp_banks,
            ..template
        }
    }

    /// Builds the renamer for a scheme (see [`renamer_config_for`] for
    /// the sizing rules).
    pub fn renamer_for(scheme: Scheme, rf_regs: usize, swept: RegClass) -> Box<dyn Renamer> {
        let config = renamer_config_for(scheme, rf_regs, swept);
        match scheme {
            Scheme::Baseline => Box::new(BaselineRenamer::new(config)),
            Scheme::Proposed => Box::new(ReuseRenamer::new(config)),
        }
    }

    /// Builds a proposed-scheme renamer with an explicit bank layout
    /// (used by the ablation studies).
    pub fn proposed_with_banks(banks: BankConfig, counter_bits: u8) -> Box<dyn Renamer> {
        let config = RenamerConfig {
            int_banks: banks.clone(),
            fp_banks: banks,
            counter_bits,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        };
        Box::new(ReuseRenamer::new(config))
    }

    /// The simulator configuration used by all experiments: Table I
    /// defaults, instruction budget `scale`, generous cycle cap.
    pub fn experiment_config(scale: u64) -> SimConfig {
        SimConfig {
            max_instructions: scale,
            max_cycles: scale.saturating_mul(60).max(1_000_000),
            ..SimConfig::default()
        }
    }

    /// Runs one kernel under one scheme and register-file size.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors (oracle mismatch, deadlock) — an
    /// experiment must never silently drop a run.
    pub fn run_kernel(kernel: &Kernel, scheme: Scheme, rf_regs: usize, scale: u64) -> SimReport {
        let program = kernel.program(scale);
        let renamer = renamer_for(scheme, rf_regs, swept_class(kernel.suite));
        let mut sim = Pipeline::new(program, renamer, experiment_config(scale));
        match sim.run() {
            Ok(report) => report,
            Err(e) => panic!(
                "{} ({}, {} regs): {e}",
                kernel.name,
                scheme.label(),
                rf_regs
            ),
        }
    }

    /// Runs a kernel with a custom simulator configuration.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors.
    pub fn run_kernel_with(
        kernel: &Kernel,
        renamer: Box<dyn Renamer>,
        config: SimConfig,
        scale: u64,
    ) -> SimReport {
        let program = kernel.program(scale);
        let mut sim = Pipeline::new(program, renamer, config);
        match sim.run() {
            Ok(report) => report,
            Err(e) => panic!("{}: {e}", kernel.name),
        }
    }

    /// Runs one kernel through the two-speed engine: a sequential
    /// functional-warming pass with periodic detailed windows, the
    /// windows of each batch sliced across `workers` threads (`None` =
    /// one per core). Window positions depend only on `(plan, scale,
    /// lead)` and every window runs from its own checkpoint clone, so
    /// the report is bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// Panics if a window's detailed simulation errors — a sampled
    /// experiment must never silently drop an observation.
    pub fn run_kernel_sampled(
        kernel: &Kernel,
        scheme: Scheme,
        rf_regs: usize,
        scale: u64,
        sample: &SampledConfig,
        workers: Option<usize>,
    ) -> SampledReport {
        let program = kernel.program(scale);
        let swept = swept_class(kernel.suite);
        let rconfig = renamer_config_for(scheme, rf_regs, swept);
        let config = experiment_config(scale);
        sample_windows(&program, &config, sample, scale, |jobs| {
            par_map_with(&jobs, workers, |job| {
                let renamer = renamer_for(scheme, rf_regs, swept);
                match run_window(job, renamer, &rconfig, config.clone()) {
                    Ok(r) => r,
                    Err(e) => panic!(
                        "{} ({}, {} regs) window at {}: {e}",
                        kernel.name,
                        scheme.label(),
                        rf_regs,
                        job.spec.start
                    ),
                }
            })
        })
    }
}
