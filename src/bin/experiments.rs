//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release --bin experiments -- all
//! cargo run --release --bin experiments -- fig10 fig11 --scale 200000
//! ```
//!
//! Each experiment prints its table and writes machine-readable rows to
//! `results/<exp>.json`.

use regshare::area;
use regshare::core::{BankConfig, EarlyReleaseRenamer, RenamerConfig, ReuseRenamer};
use regshare::harness::{
    experiment_config, par_map, renamer_for, run_kernel, run_kernel_with, swept_class, Scheme,
    FIXED_RF,
};
use regshare::isa::RegClass;
use regshare::sim::{InjectSchedule, Pipeline, SimConfig, SimError};
use regshare::stats::{geomean, Table};
use regshare::workloads::{all_kernels, analysis, suite_kernels, Suite};
use serde::Serialize;
use std::collections::BTreeMap;

const RF_SIZES: [usize; 7] = [48, 56, 64, 72, 80, 96, 112];

struct Args {
    exps: Vec<String>,
    scale: u64,
    out_dir: String,
    /// Number of fault-injection campaigns (`inject`).
    campaigns: usize,
    /// Base seed for fault-injection schedules (`inject`).
    seed: u64,
    /// Kernel subset for `inject` (`None` = all kernels).
    kernels: Option<Vec<String>>,
}

fn parse_args() -> Args {
    let mut exps = Vec::new();
    let mut scale = 150_000u64;
    let mut out_dir = "results".to_string();
    let mut campaigns = 108usize;
    let mut seed = 0xC0FFEEu64;
    let mut kernels = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| die("--out needs a directory"));
            }
            "--campaigns" => {
                campaigns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--campaigns needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--kernels" => {
                let list = it.next().unwrap_or_else(|| die("--kernels needs a list"));
                kernels = Some(list.split(',').map(str::to_string).collect());
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [EXPERIMENT..] [--scale N] [--out DIR]\n\
                     \x20                 [--campaigns N] [--seed N] [--kernels a,b,c]\n\
                     experiments: fig1 fig2 fig3 table1 table2 table3 fig9 fig10 fig10ec \
                     fig11 fig12 analyze ablate-counter ablate-predictor ablate-banks \
                     ablate-speculation inject all\n\
                     --campaigns/--seed/--kernels apply to the `inject` fault-injection \
                     sweep only"
                );
                std::process::exit(0);
            }
            other => exps.push(other.to_string()),
        }
    }
    if exps.is_empty() {
        exps.push("all".into());
    }
    Args {
        exps,
        scale,
        out_dir,
        campaigns,
        seed,
        kernels,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn save<T: Serialize>(out_dir: &str, name: &str, rows: &T) {
    std::fs::create_dir_all(out_dir).expect("create results directory");
    let path = format!("{out_dir}/{name}.json");
    let json = serde_json::to_string_pretty(rows).expect("results serialize");
    std::fs::write(&path, json).expect("write results file");
    println!("  -> {path}\n");
}

fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

// ---------------------------------------------------------------- fig 1/2/3

#[derive(Serialize)]
struct Fig1Row {
    kernel: String,
    suite: String,
    redefining_pct: f64,
    non_redefining_pct: f64,
    total_pct: f64,
    dest_pct: f64,
}

fn fig1(args: &Args) {
    println!("== Figure 1: single-consumer destinations (redefining vs not) ==");
    let mut table =
        Table::with_headers(&["kernel", "suite", "redef%", "other%", "total%", "dest%"]);
    table.numeric();
    let mut rows = Vec::new();
    let mut per_suite: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for k in all_kernels() {
        let p = analysis::analyze(&k.program(args.scale), args.scale);
        let redef = p.single_use_redefining_fraction();
        let total = p.single_use_fraction();
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            pct(redef),
            pct(total - redef),
            pct(total),
            pct(p.dest_fraction()),
        ]);
        per_suite.entry(k.suite.label()).or_default().push(total);
        rows.push(Fig1Row {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            redefining_pct: redef * 100.0,
            non_redefining_pct: (total - redef) * 100.0,
            total_pct: total * 100.0,
            dest_pct: p.dest_fraction() * 100.0,
        });
    }
    for (suite, vals) in &per_suite {
        table.row(vec![
            "AVERAGE".into(),
            (*suite).into(),
            "-".into(),
            "-".into(),
            pct(regshare::stats::mean(vals)),
            "-".into(),
        ]);
    }
    print!("{table}");
    save(&args.out_dir, "fig1", &rows);
}

#[derive(Serialize)]
struct Fig2Row {
    suite: String,
    one: f64,
    two: f64,
    three: f64,
    four: f64,
    five: f64,
    six_plus: f64,
    zero: f64,
}

fn fig2(args: &Args) {
    println!("== Figure 2: consumers per produced value ==");
    let mut table = Table::with_headers(&["suite", "1", "2", "3", "4", "5", "6+", "(0)"]);
    table.numeric();
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let mut hist = regshare::stats::Histogram::new("consumers", 6);
        for k in suite_kernels(suite) {
            let p = analysis::analyze(&k.program(args.scale), args.scale);
            hist.merge(&p.consumers);
        }
        let f = |v: u64| hist.fraction(v);
        table.row(vec![
            suite.label().into(),
            pct(f(1)),
            pct(f(2)),
            pct(f(3)),
            pct(f(4)),
            pct(f(5)),
            pct(hist.overflow_fraction() + f(6)),
            pct(f(0)),
        ]);
        rows.push(Fig2Row {
            suite: suite.label().into(),
            one: f(1) * 100.0,
            two: f(2) * 100.0,
            three: f(3) * 100.0,
            four: f(4) * 100.0,
            five: f(5) * 100.0,
            six_plus: (hist.overflow_fraction() + f(6)) * 100.0,
            zero: f(0) * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig2", &rows);
}

#[derive(Serialize)]
struct Fig3Row {
    kernel: String,
    suite: String,
    one_reuse: f64,
    two_reuses: f64,
    three_reuses: f64,
    unlimited: f64,
}

fn fig3(args: &Args) {
    println!("== Figure 3: reuse potential for chain limits 1/2/3/unlimited ==");
    let mut table = Table::with_headers(&["kernel", "suite", "<=1", "<=2", "<=3", "unlimited"]);
    table.numeric();
    let mut rows = Vec::new();
    for k in all_kernels() {
        let p = k.program(args.scale);
        let vals: Vec<f64> = [1, 2, 3, u64::MAX]
            .iter()
            .map(|lim| analysis::reuse_potential(&p, args.scale, *lim))
            .collect();
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            pct(vals[3]),
        ]);
        rows.push(Fig3Row {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            one_reuse: vals[0] * 100.0,
            two_reuses: vals[1] * 100.0,
            three_reuses: vals[2] * 100.0,
            unlimited: vals[3] * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig3", &rows);
}

// ---------------------------------------------------------------- tables

fn table1(args: &Args) {
    println!("== Table I: system configuration ==");
    let c = SimConfig::default();
    let mut table = Table::with_headers(&["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("ISA", "TRISC (ARM-flavoured 64-bit RISC)".into()),
        ("ROB", format!("{} entries", c.rob_entries)),
        ("Issue queue", format!("{} entries", c.iq_entries)),
        ("Decode/dispatch width", format!("{}", c.decode_width)),
        ("Fetch queue", format!("{} instructions", c.fetch_queue)),
        (
            "Branch predictor",
            format!(
                "gshare {} + {}-entry BTB",
                c.bpred.pht_entries, c.bpred.btb_entries
            ),
        ),
        (
            "Mispredict penalty",
            format!("{} cycles", c.mispredict_penalty),
        ),
        ("L1-D", "32 KB, 2-way, 1 cycle".into()),
        ("L1-I", "48 KB, 3-way, 1 cycle".into()),
        ("L2", "1 MB, 16-way, 12 cycles".into()),
        (
            "TLB",
            format!("{}-entry fully associative", c.mem.tlb.entries),
        ),
        ("Prefetcher", "stride, degree 1".into()),
        ("DRAM", "DDR3-1600-like, 16 banks, 8 KB rows".into()),
    ];
    for (k, v) in &rows {
        table.row(vec![(*k).into(), v.clone()]);
    }
    print!("{table}");
    save(
        &args.out_dir,
        "table1",
        &rows
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect::<Vec<_>>(),
    );
}

fn table2(args: &Args) {
    println!("== Table II: area of register files and overhead structures ==");
    let rows = area::table2();
    let mut table = Table::with_headers(&["unit", "configuration", "area (mm^2)"]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.unit.clone(),
            r.configuration.clone(),
            format!("{:.3e}", r.area_mm2),
        ]);
    }
    let overhead: f64 = rows[2..].iter().map(|r| r.area_mm2).sum();
    table.row(vec![
        "Total overhead".into(),
        "-".into(),
        format!("{overhead:.3e}"),
    ]);
    print!("{table}");
    save(&args.out_dir, "table2", &rows);
}

#[derive(Serialize)]
struct Table3Row {
    baseline_regs: usize,
    paper_banks: Vec<usize>,
    solver_banks: Vec<usize>,
}

fn table3(args: &Args) {
    println!("== Table III: equal-area register file configurations ==");
    let ports = area::RegFilePorts::default();
    let mut table = Table::with_headers(&["baseline", "paper (0/1/2/3-sh)", "our solver"]);
    let mut rows = Vec::new();
    for n in RF_SIZES {
        let paper = BankConfig::paper_row(n);
        let solved = area::equal_area_config(n, ports);
        table.row(vec![
            n.to_string(),
            format!("{:?}", paper.sizes()),
            format!("{:?}", solved.sizes()),
        ]);
        rows.push(Table3Row {
            baseline_regs: n,
            paper_banks: paper.sizes().to_vec(),
            solver_banks: solved.sizes().to_vec(),
        });
    }
    print!("{table}");
    save(&args.out_dir, "table3", &rows);
}

// ---------------------------------------------------------------- fig 9

#[derive(Serialize)]
struct Fig9Row {
    coverage_pct: f64,
    one_shadow: u64,
    two_shadow: u64,
    three_shadow: u64,
}

fn fig9(args: &Args) {
    println!("== Figure 9: shadow registers needed to cover % of execution (fp suite) ==");
    // Effectively unbounded shadow banks; sample bank occupancy per cycle.
    let banks = BankConfig::new(vec![64, 48, 48, 48]);
    let mut samplers: Vec<regshare::stats::Sampler> = Vec::new();
    let kernels = suite_kernels(Suite::Fp);
    let occupancies = par_map(&kernels, |k| {
        let config = RenamerConfig {
            int_banks: BankConfig::conventional(FIXED_RF),
            fp_banks: banks.clone(),
            counter_bits: 2,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
        };
        let mut sim_cfg = experiment_config(args.scale);
        sim_cfg.occupancy_sample_interval = 16;
        run_kernel_with(k, Box::new(ReuseRenamer::new(config)), sim_cfg, args.scale).fp_occupancy
    });
    // Merge in kernel order so the aggregated sample streams match the
    // serial sweep exactly.
    for occupancy in occupancies {
        for (i, s) in occupancy.into_iter().enumerate() {
            match samplers.get_mut(i) {
                Some(dst) => {
                    for v in s.samples() {
                        dst.record(*v);
                    }
                }
                None => samplers.push(s),
            }
        }
    }
    let mut table = Table::with_headers(&[
        "coverage %",
        "1-shadow regs",
        "2-shadow regs",
        "3-shadow regs",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for pct_cov in [50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        let need = |bank: usize| {
            samplers
                .get(bank)
                .and_then(|s| s.percentile(pct_cov))
                .unwrap_or(0)
        };
        table.row(vec![
            format!("{pct_cov}"),
            need(1).to_string(),
            need(2).to_string(),
            need(3).to_string(),
        ]);
        rows.push(Fig9Row {
            coverage_pct: pct_cov,
            one_shadow: need(1),
            two_shadow: need(2),
            three_shadow: need(3),
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig9", &rows);
}

// ---------------------------------------------------------------- fig 10/11

#[derive(Serialize)]
struct SpeedupRow {
    kernel: String,
    suite: String,
    rf_regs: usize,
    baseline_ipc: f64,
    proposed_ipc: f64,
    speedup: f64,
    reuse_pct: f64,
}

/// Proposed-scheme renamer at the same register *count* as the baseline
/// (mechanism benefit without the equal-area discount).
fn equal_count_renamer(rf_regs: usize, swept: RegClass) -> Box<dyn regshare::core::Renamer> {
    let swept_banks = BankConfig::new(vec![rf_regs - 12, 4, 4, 4]);
    let fixed = BankConfig::conventional(FIXED_RF);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        counter_bits: 2,
        predictor_entries: 512,
        predictor_bits: 2,
        speculative_reuse: true,
    }))
}

fn speedup_sweep(args: &Args, name: &str, title: &str, equal_count: bool) {
    println!("{title}");
    // Every (kernel, size) point is independent; fan out across cores
    // and collect rows back in sweep order.
    let points: Vec<(regshare::workloads::Kernel, usize)> = all_kernels()
        .into_iter()
        .flat_map(|k| RF_SIZES.into_iter().map(move |rf| (k, rf)))
        .collect();
    let rows: Vec<SpeedupRow> = par_map(&points, |&(ref k, rf)| {
        let base = run_kernel(k, Scheme::Baseline, rf, args.scale);
        let prop = if equal_count {
            run_kernel_with(
                k,
                equal_count_renamer(rf, swept_class(k.suite)),
                experiment_config(args.scale),
                args.scale,
            )
        } else {
            run_kernel(k, Scheme::Proposed, rf, args.scale)
        };
        SpeedupRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            rf_regs: rf,
            baseline_ipc: base.ipc(),
            proposed_ipc: prop.ipc(),
            speedup: prop.ipc() / base.ipc(),
            reuse_pct: prop.rename.reuse_fraction() * 100.0,
        }
    });
    // Per-kernel table.
    let mut headers: Vec<String> = vec!["kernel".into(), "suite".into()];
    headers.extend(RF_SIZES.iter().map(|n| n.to_string()));
    let mut table = Table::new(headers);
    table.numeric();
    for k in all_kernels() {
        let mut cells = vec![k.name.to_string(), k.suite.label().to_string()];
        for rf in RF_SIZES {
            let r = rows
                .iter()
                .find(|r| r.kernel == k.name && r.rf_regs == rf)
                .expect("row exists");
            cells.push(format!("{:.3}", r.speedup));
        }
        table.row(cells);
    }
    // Per-suite geomeans.
    for suite in Suite::ALL {
        let mut cells = vec!["GEOMEAN".to_string(), suite.label().to_string()];
        for rf in RF_SIZES {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.suite == suite.label() && r.rf_regs == rf)
                .map(|r| r.speedup)
                .collect();
            cells.push(format!("{:.3}", geomean(&vals)));
        }
        table.row(cells);
    }
    let mut cells = vec!["GEOMEAN".to_string(), "ALL".to_string()];
    for rf in RF_SIZES {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.rf_regs == rf)
            .map(|r| r.speedup)
            .collect();
        cells.push(format!("{:.3}", geomean(&vals)));
    }
    table.row(cells);
    print!("{table}");
    save(&args.out_dir, name, &rows);
}

fn fig10(args: &Args) {
    speedup_sweep(
        args,
        "fig10",
        "== Figure 10: equal-area speedup vs baseline, per register file size ==",
        false,
    );
}

fn fig10ec(args: &Args) {
    speedup_sweep(
        args,
        "fig10ec",
        "== Figure 10-EC (extension): equal-register-count speedup vs baseline ==",
        true,
    );
}

#[derive(Serialize)]
struct Fig11Row {
    rf_regs: usize,
    baseline_ipc: f64,
    proposed_equal_area_ipc: f64,
    proposed_equal_count_ipc: f64,
    early_release_ipc: f64,
}

/// The Moudgill/Monreal-style early-release comparator (related work,
/// §VII) at the same register count as the baseline.
fn early_release_renamer(rf_regs: usize, swept: RegClass) -> Box<dyn regshare::core::Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let swept_banks = BankConfig::conventional(rf_regs);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(EarlyReleaseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::baseline(rf_regs)
    }))
}

fn fig11(args: &Args) {
    println!("== Figure 11: average IPC vs register file size ==");
    let kernels = all_kernels();
    let points: Vec<(usize, regshare::workloads::Kernel)> = RF_SIZES
        .into_iter()
        .flat_map(|rf| kernels.iter().map(move |k| (rf, *k)))
        .collect();
    // One point = all four schemes on one (size, kernel) pair; par_map
    // keeps sweep order, so the per-size averages see the kernels in the
    // same order (identical floating-point sums) as the serial loop.
    let ipcs = par_map(&points, |&(rf, ref k)| {
        let swept = swept_class(k.suite);
        (
            run_kernel(k, Scheme::Baseline, rf, args.scale).ipc(),
            run_kernel(k, Scheme::Proposed, rf, args.scale).ipc(),
            run_kernel_with(
                k,
                equal_count_renamer(rf, swept),
                experiment_config(args.scale),
                args.scale,
            )
            .ipc(),
            run_kernel_with(
                k,
                early_release_renamer(rf, swept),
                experiment_config(args.scale),
                args.scale,
            )
            .ipc(),
        )
    });
    let mut rows = Vec::new();
    for (i, rf) in RF_SIZES.into_iter().enumerate() {
        let chunk = &ipcs[i * kernels.len()..(i + 1) * kernels.len()];
        let col =
            |sel: fn(&(f64, f64, f64, f64)) -> f64| -> Vec<f64> { chunk.iter().map(sel).collect() };
        rows.push(Fig11Row {
            rf_regs: rf,
            baseline_ipc: regshare::stats::mean(&col(|t| t.0)),
            proposed_equal_area_ipc: regshare::stats::mean(&col(|t| t.1)),
            proposed_equal_count_ipc: regshare::stats::mean(&col(|t| t.2)),
            early_release_ipc: regshare::stats::mean(&col(|t| t.3)),
        });
    }
    let mut table = Table::with_headers(&[
        "regs",
        "baseline IPC",
        "proposed (equal area)",
        "proposed (equal count)",
        "early release (§VII)",
    ]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.rf_regs.to_string(),
            format!("{:.4}", r.baseline_ipc),
            format!("{:.4}", r.proposed_equal_area_ipc),
            format!("{:.4}", r.proposed_equal_count_ipc),
            format!("{:.4}", r.early_release_ipc),
        ]);
    }
    print!("{table}");
    // Register-savings estimate: for each baseline size, the smallest
    // proposed equal-count configuration that matches its IPC.
    for target in &rows {
        for r in &rows {
            if r.rf_regs < target.rf_regs
                && r.proposed_equal_count_ipc >= target.baseline_ipc * 0.999
            {
                println!(
                    "proposed scheme matches baseline-{} IPC with {} registers ({:.1}% fewer)",
                    target.rf_regs,
                    r.rf_regs,
                    (1.0 - r.rf_regs as f64 / target.rf_regs as f64) * 100.0
                );
                break;
            }
        }
    }
    save(&args.out_dir, "fig11", &rows);
}

// ---------------------------------------------------------------- fig 12

#[derive(Serialize)]
struct Fig12Row {
    suite: String,
    reuse_correct_pct: f64,
    reuse_incorrect_pct: f64,
    noreuse_correct_pct: f64,
    noreuse_incorrect_pct: f64,
    accuracy_pct: f64,
}

fn fig12(args: &Args) {
    println!("== Figure 12: register type predictor accuracy (at 64 regs) ==");
    let mut table = Table::with_headers(&[
        "suite",
        "reuse-correct",
        "reuse-incorrect",
        "noreuse-correct",
        "noreuse-incorrect",
        "accuracy",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let mut agg = regshare::core::PredictorStats::default();
        let kernels = suite_kernels(suite);
        let stats = par_map(&kernels, |k| {
            run_kernel(k, Scheme::Proposed, 64, args.scale).predictor
        });
        for rep in stats {
            agg.reuse_correct += rep.reuse_correct;
            agg.reuse_incorrect += rep.reuse_incorrect;
            agg.noreuse_correct += rep.noreuse_correct;
            agg.noreuse_incorrect += rep.noreuse_incorrect;
        }
        let t = agg.total().max(1) as f64;
        table.row(vec![
            suite.label().into(),
            pct(agg.reuse_correct as f64 / t),
            pct(agg.reuse_incorrect as f64 / t),
            pct(agg.noreuse_correct as f64 / t),
            pct(agg.noreuse_incorrect as f64 / t),
            pct(agg.accuracy()),
        ]);
        rows.push(Fig12Row {
            suite: suite.label().into(),
            reuse_correct_pct: agg.reuse_correct as f64 / t * 100.0,
            reuse_incorrect_pct: agg.reuse_incorrect as f64 / t * 100.0,
            noreuse_correct_pct: agg.noreuse_correct as f64 / t * 100.0,
            noreuse_incorrect_pct: agg.noreuse_incorrect as f64 / t * 100.0,
            accuracy_pct: agg.accuracy() * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig12", &rows);
}

// ---------------------------------------------------------------- ablations

#[derive(Serialize)]
struct AblateRow {
    setting: String,
    geomean_speedup: f64,
    mean_reuse_pct: f64,
}

fn ablate<F>(args: &Args, name: &str, title: &str, settings: Vec<(String, F)>)
where
    F: Fn(RegClass) -> Box<dyn regshare::core::Renamer> + Sync,
{
    println!("{title}");
    let mut table = Table::with_headers(&["setting", "geomean speedup", "mean reuse %"]);
    table.numeric();
    let mut rows = Vec::new();
    let kernels = all_kernels();
    for (label, make) in settings {
        // The renamer factory runs inside each worker: a boxed renamer
        // is not `Send`, but it never crosses a thread boundary.
        let metrics = par_map(&kernels, |k| {
            let base = run_kernel(k, Scheme::Baseline, 64, args.scale);
            let prop = run_kernel_with(
                k,
                make(swept_class(k.suite)),
                experiment_config(args.scale),
                args.scale,
            );
            (
                prop.ipc() / base.ipc(),
                prop.rename.reuse_fraction() * 100.0,
            )
        });
        let speedups: Vec<f64> = metrics.iter().map(|m| m.0).collect();
        let reuse: Vec<f64> = metrics.iter().map(|m| m.1).collect();
        let g = geomean(&speedups);
        let m = regshare::stats::mean(&reuse);
        table.row(vec![label.clone(), format!("{g:.4}"), format!("{m:.1}")]);
        rows.push(AblateRow {
            setting: label,
            geomean_speedup: g,
            mean_reuse_pct: m,
        });
    }
    print!("{table}");
    save(&args.out_dir, name, &rows);
}

fn renamer_with(
    swept: RegClass,
    swept_banks: BankConfig,
    counter_bits: u8,
    entries: usize,
) -> Box<dyn regshare::core::Renamer> {
    renamer_with_spec(swept, swept_banks, counter_bits, entries, true)
}

fn renamer_with_spec(
    swept: RegClass,
    swept_banks: BankConfig,
    counter_bits: u8,
    entries: usize,
    speculative_reuse: bool,
) -> Box<dyn regshare::core::Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        counter_bits,
        predictor_entries: entries,
        predictor_bits: 2,
        speculative_reuse,
    }))
}

fn ablate_speculation(args: &Args) {
    let settings = [
        ("safe reuses only", false),
        ("with speculation (paper)", true),
    ]
    .into_iter()
    .map(|(label, spec)| {
        (label.to_string(), move |swept: RegClass| {
            let banks = BankConfig::new(vec![52, 4, 4, 4]);
            renamer_with_spec(swept, banks, 2, 512, spec)
        })
    })
    .collect();
    ablate(
        args,
        "ablate_speculation",
        "== Ablation: speculative (non-redefining) reuse, §IV-A2 (equal count, 64 regs) ==",
        settings,
    );
}

fn ablate_counter(args: &Args) {
    // Version-counter width: an n-bit counter allows 2^n - 1 reuses; banks
    // sized to the same register count (52/4/4/4 = 64).
    let settings = [1u8, 2, 3]
        .into_iter()
        .map(|bits| {
            let label = format!("{bits}-bit counter");
            (label, move |swept: RegClass| {
                // Same bank layout throughout; narrower counters simply
                // saturate earlier and leave deeper shadow cells unused.
                let banks = BankConfig::new(vec![52, 4, 4, 4]);
                renamer_with(swept, banks, bits, 512)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_counter",
        "== Ablation: version counter width (equal count, 64 regs) ==",
        settings,
    );
}

fn ablate_predictor(args: &Args) {
    let settings = [64usize, 128, 256, 512, 1024, 4096]
        .into_iter()
        .map(|entries| {
            let label = format!("{entries} entries");
            (label, move |swept: RegClass| {
                let banks = BankConfig::new(vec![52, 4, 4, 4]);
                renamer_with(swept, banks, 2, entries)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_predictor",
        "== Ablation: register type predictor size (equal count, 64 regs) ==",
        settings,
    );
}

fn ablate_banks(args: &Args) {
    let splits: Vec<Vec<usize>> = vec![
        vec![52, 4, 4, 4],
        vec![48, 8, 4, 4],
        vec![48, 4, 4, 8],
        vec![44, 12, 4, 4],
        vec![52, 12, 0, 0],
        vec![56, 0, 0, 8],
    ];
    let settings = splits
        .into_iter()
        .map(|sizes| {
            let label = format!("{sizes:?}");
            (label, move |swept: RegClass| {
                renamer_with(swept, BankConfig::new(sizes.clone()), 2, 512)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_banks",
        "== Ablation: bank split at 64 registers (equal count) ==",
        settings,
    );
}

// ------------------------------------------------------- static oracle

#[derive(Serialize)]
struct StaticOracleRow {
    kernel: String,
    suite: String,
    lint_diagnostics: usize,
    static_sites: usize,
    dead_sites: usize,
    single_safe_sites: usize,
    single_needs_predictor_sites: usize,
    unknown_sites: usize,
    multi_consumer_sites: usize,
    static_guaranteed_single_pct: f64,
    static_possibly_single_pct: f64,
    weighted_lower_bound_pct: f64,
    weighted_upper_bound_pct: f64,
    dynamic_single_use_pct: f64,
    dynamic_single_use_redefining_pct: f64,
    trace_complete: bool,
    oracle_violations: usize,
    predictor_accuracy_pct: f64,
    predictor_reuse_correct: u64,
    predictor_reuse_incorrect: u64,
    predictor_noreuse_correct: u64,
    predictor_noreuse_incorrect: u64,
}

fn analyze(args: &Args) {
    use regshare::analyze::{classify, lint_program, oracle_check, Cfg, SiteClass};
    println!("== Static oracle: per-kernel static sharing bounds vs dynamic measurement ==");
    // Kernels halt at a loop boundary, so the functional budget must be
    // comfortably above the sizing scale for complete traces (the
    // soundness cross-checks need them).
    let budget = args.scale.saturating_mul(64);
    let kernels = all_kernels();
    let rows: Vec<StaticOracleRow> = par_map(&kernels, |k| {
        let program = k.program(args.scale);
        let diags = lint_program(&program);
        let cfg = Cfg::build(program.insts(), program.entry());
        let c = classify(&cfg, program.insts());
        let report = oracle_check(&program, budget)
            .unwrap_or_else(|e| panic!("{}: oracle run failed: {e}", k.name));
        let predictor = run_kernel(k, Scheme::Proposed, 64, args.scale).predictor;
        let sites = c.len().max(1) as f64;
        StaticOracleRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            lint_diagnostics: diags.len(),
            static_sites: c.len(),
            dead_sites: c.count(SiteClass::Dead),
            single_safe_sites: c.count(SiteClass::SingleSafeReuse),
            single_needs_predictor_sites: c.count(SiteClass::SingleNeedsPredictor),
            unknown_sites: c.count(SiteClass::Unknown),
            multi_consumer_sites: c.count(SiteClass::MultiConsumer),
            static_guaranteed_single_pct: c.guaranteed_single() as f64 / sites * 100.0,
            static_possibly_single_pct: c.possibly_single() as f64 / sites * 100.0,
            weighted_lower_bound_pct: report.lower_bound_fraction() * 100.0,
            weighted_upper_bound_pct: report.upper_bound_fraction() * 100.0,
            dynamic_single_use_pct: report.single_use_fraction() * 100.0,
            dynamic_single_use_redefining_pct: ratio_pct(
                report.single_use_redefining_instances,
                report.def_instances,
            ),
            trace_complete: report.trace_complete,
            oracle_violations: report.violations.len(),
            predictor_accuracy_pct: predictor.accuracy() * 100.0,
            predictor_reuse_correct: predictor.reuse_correct,
            predictor_reuse_incorrect: predictor.reuse_incorrect,
            predictor_noreuse_correct: predictor.noreuse_correct,
            predictor_noreuse_incorrect: predictor.noreuse_incorrect,
        }
    });
    let mut table = Table::with_headers(&[
        "kernel",
        "suite",
        "lint",
        "sites",
        "lower%",
        "dyn-single%",
        "upper%",
        "pred-acc%",
    ]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.kernel.clone(),
            r.suite.clone(),
            r.lint_diagnostics.to_string(),
            r.static_sites.to_string(),
            format!("{:.1}", r.weighted_lower_bound_pct),
            format!("{:.1}", r.dynamic_single_use_pct),
            format!("{:.1}", r.weighted_upper_bound_pct),
            format!("{:.1}", r.predictor_accuracy_pct),
        ]);
    }
    print!("{table}");
    for r in &rows {
        assert!(
            r.weighted_upper_bound_pct + 1e-9 >= r.dynamic_single_use_pct
                && r.weighted_lower_bound_pct <= r.dynamic_single_use_pct + 1e-9,
            "{}: static bounds do not bracket the dynamic single-use fraction",
            r.kernel
        );
        assert_eq!(
            r.oracle_violations, 0,
            "{}: static/dynamic disagreement",
            r.kernel
        );
    }
    println!(
        "static bounds bracket the dynamic single-use fraction on all {} kernels",
        rows.len()
    );
    save(&args.out_dir, "static_oracle", &rows);
}

fn ratio_pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}

// ---------------------------------------------------------------- main

// ------------------------------------------------------------------ inject

#[derive(Serialize)]
struct InjectRow {
    campaign: usize,
    kernel: String,
    scheme: String,
    seed: u64,
    interrupts: u64,
    nested_interrupts: u64,
    load_faults: u64,
    store_faults: u64,
    branch_flips: u64,
    squash_storms: u64,
    events_total: u64,
    audits: u64,
    cycles: u64,
    committed_instructions: u64,
    mispredicts: u64,
    exceptions: u64,
    shadow_recovers: u64,
    status: String,
}

fn inject(args: &Args) {
    println!("== Fault injection: seeded interrupts / faults / flips / squash storms ==");
    // Injection stresses recovery paths, not steady-state IPC: modest
    // runs keep a 100+-campaign sweep fast, and the schedule horizon
    // covers the whole run either way.
    let scale = args.scale.min(20_000);
    let mut kernels = all_kernels();
    if let Some(names) = &args.kernels {
        for n in names {
            if !kernels.iter().any(|k| k.name == n.as_str()) {
                die(&format!("unknown kernel for --kernels: {n}"));
            }
        }
        kernels.retain(|k| names.iter().any(|n| n == k.name));
    }
    // Campaign i covers kernel i mod K, alternating schemes across
    // passes, with a per-campaign schedule seed derived from --seed.
    let schemes = [Scheme::Baseline, Scheme::Proposed];
    let points: Vec<usize> = (0..args.campaigns.max(1)).collect();
    let runs: Vec<(InjectRow, Option<String>)> = par_map(&points, |&i| {
        let kernel = &kernels[i % kernels.len()];
        let scheme = schemes[(i / kernels.len()) % schemes.len()];
        let seed = args.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut cfg = experiment_config(scale);
        cfg.check_oracle = true;
        cfg.audit_interval = 256;
        let renamer = renamer_for(scheme, 64, swept_class(kernel.suite));
        let mut sim = Pipeline::new(kernel.program(scale), renamer, cfg);
        sim.set_inject(InjectSchedule::seeded(seed, scale));
        let (status, error) = match sim.run() {
            Ok(_) => ("ok", None),
            Err(e) => {
                let status = match &e {
                    SimError::OracleMismatch { .. } => "oracle-mismatch",
                    SimError::CycleLimit { .. } => "cycle-limit",
                    SimError::Deadlock { .. } => "deadlock",
                    SimError::Invariant { .. } => "invariant-violation",
                    SimError::Lsq { .. } => "lsq-error",
                };
                let detail = format!(
                    "campaign {i} ({}, {}, seed {seed:#x}): {e}",
                    kernel.name,
                    scheme.label()
                );
                (status, Some(detail))
            }
        };
        let report = sim.report();
        let stats = sim.inject_stats();
        let row = InjectRow {
            campaign: i,
            kernel: kernel.name.into(),
            scheme: scheme.label().into(),
            seed,
            interrupts: stats.interrupts,
            nested_interrupts: stats.nested_interrupts,
            load_faults: stats.load_faults,
            store_faults: stats.store_faults,
            branch_flips: stats.branch_flips,
            squash_storms: stats.squash_storms,
            events_total: stats.total(),
            audits: sim.audits(),
            cycles: report.cycles,
            committed_instructions: report.committed_instructions,
            mispredicts: report.mispredicts,
            exceptions: report.exceptions,
            shadow_recovers: report.shadow_recovers,
            status: status.into(),
        };
        (row, error)
    });
    let errors: Vec<String> = runs.iter().filter_map(|(_, e)| e.clone()).collect();
    let rows: Vec<InjectRow> = runs.into_iter().map(|(r, _)| r).collect();
    let sum = |f: fn(&InjectRow) -> u64| rows.iter().map(f).sum::<u64>();
    println!(
        "  {} campaigns over {} kernels x {} schemes at scale {scale}: \
         {} events delivered ({} interrupts incl. {} nested, {} load faults, \
         {} store faults, {} branch flips, {} squash storms), {} invariant audits, \
         {} clean",
        rows.len(),
        kernels.len(),
        schemes.len(),
        sum(|r| r.events_total),
        sum(|r| r.interrupts),
        sum(|r| r.nested_interrupts),
        sum(|r| r.load_faults),
        sum(|r| r.store_faults),
        sum(|r| r.branch_flips),
        sum(|r| r.squash_storms),
        sum(|r| r.audits),
        rows.iter().filter(|r| r.status == "ok").count(),
    );
    save(&args.out_dir, "inject_report", &rows);
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{e}");
        }
        die(&format!(
            "{} of {} injection campaigns failed",
            errors.len(),
            rows.len()
        ));
    }
}

type ExperimentFn = fn(&Args);

fn main() {
    let args = parse_args();
    let known: Vec<(&str, ExperimentFn)> = vec![
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig10ec", fig10ec),
        ("fig11", fig11),
        ("fig12", fig12),
        ("analyze", analyze),
        ("ablate-counter", ablate_counter),
        ("ablate-speculation", ablate_speculation),
        ("ablate-predictor", ablate_predictor),
        ("ablate-banks", ablate_banks),
        ("inject", inject),
    ];
    let selected: Vec<&str> = if args.exps.iter().any(|e| e == "all") {
        known.iter().map(|(n, _)| *n).collect()
    } else {
        args.exps.iter().map(String::as_str).collect()
    };
    for name in selected {
        match known.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => f(&args),
            None => die(&format!("unknown experiment: {name} (try --help)")),
        }
    }
}
