//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release --bin experiments -- all
//! cargo run --release --bin experiments -- fig10 fig11 --scale 200000
//! ```
//!
//! Each experiment prints its table and writes machine-readable rows to
//! `results/<exp>.json`. The experiments themselves live in
//! `regshare::experiments` (one module per subcommand); this binary only
//! parses flags and dispatches through the registry.

use regshare::experiments::{die, registry, Args};

// Count heap traffic so `experiments profile` can report allocations
// per simulated kilocycle. Two relaxed atomic adds per allocation —
// noise next to the allocation itself, and the steady-state hot loop
// does not allocate at all.
#[global_allocator]
static ALLOC: regshare::CountingAlloc = regshare::CountingAlloc::new();

fn parse_args() -> Args {
    let mut exps = Vec::new();
    let mut scale = 150_000u64;
    let mut out_dir = "results".to_string();
    let mut campaigns = 108usize;
    let mut seed = 0xC0FFEEu64;
    let mut kernels = None;
    let mut sample = false;
    let mut workers = None;
    let mut period = None;
    let mut warmup = None;
    let mut measure = None;
    let mut port = 0u16;
    let mut data_dir = "results/serve".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                out_dir = it.next().unwrap_or_else(|| die("--out needs a directory"));
            }
            "--campaigns" => {
                campaigns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--campaigns needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--kernels" => {
                let list = it.next().unwrap_or_else(|| die("--kernels needs a list"));
                kernels = Some(list.split(',').map(str::to_string).collect());
            }
            "--sample" => sample = true,
            "--workers" => {
                workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--workers needs a number")),
                );
            }
            "--period" => {
                period = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--period needs a number")),
                );
            }
            "--warmup" => {
                warmup = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--warmup needs a number")),
                );
            }
            "--measure" => {
                measure = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--measure needs a number")),
                );
            }
            "--port" => {
                port = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs a port number"));
            }
            "--data-dir" => {
                data_dir = it
                    .next()
                    .unwrap_or_else(|| die("--data-dir needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [EXPERIMENT..] [--scale N] [--out DIR]\n\
                     \x20                 [--campaigns N] [--seed N] [--kernels a,b,c]\n\
                     \x20                 [--sample] [--workers N] [--period N] \
                     [--warmup N] [--measure N]\n\
                     \x20                 [--port N] [--data-dir DIR]\n\
                     experiments: fig1 fig2 fig3 table1 table2 table3 fig9 fig10 fig10ec \
                     fig11 fig12 analyze hints ablate-counter ablate-predictor ablate-banks \
                     ablate-speculation inject smt profile sample shape bench serve submit all\n\
                     --campaigns/--seed/--kernels apply to the `inject` fault-injection \
                     sweep only\n\
                     --sample makes `all` run the two-speed sampled registry (sample, \
                     shape, bench), the mode that scales to --scale 1000000000\n\
                     --workers/--period/--warmup/--measure tune sampled runs\n\
                     `serve` runs the job service (--port to pin the bind port, \
                     --data-dir for journal+cache, --workers for pool size); `submit` \
                     batches a sweep to a running service at --port and verifies the \
                     results against in-process runs"
                );
                std::process::exit(0);
            }
            other => exps.push(other.to_string()),
        }
    }
    if exps.is_empty() {
        exps.push("all".into());
    }
    Args {
        exps,
        scale,
        out_dir,
        campaigns,
        seed,
        kernels,
        sample,
        workers,
        period,
        warmup,
        measure,
        port,
        data_dir,
    }
}

fn main() {
    let args = parse_args();
    let known = registry();
    // The two-speed registry: everything that scales to 10⁹. Kept out of
    // plain `all`, which promises bit-identical output across runs — the
    // `bench` report's payload is wall-clock throughput.
    let sampled = ["sample", "shape", "bench"];
    // The job service pair blocks on (or requires) a live listener, so
    // `all` never includes it either.
    let service = ["serve", "submit"];
    // Host-time attribution: wall-clock payload like `bench`, but not
    // part of the sampled trio — run it explicitly.
    let wallclock = ["profile"];
    let selected: Vec<&str> = if args.exps.iter().any(|e| e == "all") {
        if args.sample {
            sampled.to_vec()
        } else {
            known
                .iter()
                .map(|(n, _)| *n)
                .filter(|n| !sampled.contains(n) && !service.contains(n) && !wallclock.contains(n))
                .collect()
        }
    } else {
        args.exps.iter().map(String::as_str).collect()
    };
    for name in selected {
        match known.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => {
                if let Err(e) = f(&args) {
                    die(&format!("{name}: {e}"));
                }
            }
            None => die(&format!("unknown experiment: {name} (try --help)")),
        }
    }
}
