//! Prints golden (kernel, scheme) -> (cycles, committed) tuples for the
//! determinism regression test. Dev tool; output is pasted into
//! `tests/determinism.rs`.

use regshare::harness::{run_kernel, Scheme};
use regshare::workloads::all_kernels;

fn main() {
    let scale = 8_000;
    let rf = 64;
    for kernel in all_kernels() {
        for scheme in [Scheme::Baseline, Scheme::Proposed] {
            let r = run_kernel(&kernel, scheme, rf, scale);
            println!(
                "    (\"{}\", Scheme::{:?}, {}, {}),",
                kernel.name, scheme, r.cycles, r.committed_instructions
            );
        }
    }
}
