//! Prints golden (kernel, scheme) -> (cycles, committed) tuples for the
//! determinism regression test. Dev tool; output is pasted into
//! `tests/determinism.rs` (default mode) or `tests/width_golden.rs`
//! (`width` mode: the superscalar-width sweep goldens).

use regshare::harness::{experiment_config, renamer_for, run_kernel, swept_class, Scheme};
use regshare::sim::Pipeline;
use regshare::workloads::all_kernels;

fn main() {
    let width_mode = std::env::args().any(|a| a == "width");
    let scale = 8_000;
    let rf = 64;
    if width_mode {
        // The width sweep pins rename-width scaling behavior: widths
        // 2/4/8 with issue_width = 2x and all other Table I parameters
        // unchanged.
        for kernel in all_kernels() {
            if !["saxpy", "fft", "hashjoin", "dct", "matmul", "sort"].contains(&kernel.name) {
                continue;
            }
            for scheme in [Scheme::Baseline, Scheme::Proposed] {
                for width in [2usize, 4, 8] {
                    let mut cfg = experiment_config(scale);
                    cfg.fetch_width = width;
                    cfg.decode_width = width;
                    cfg.rename_width = width;
                    cfg.commit_width = width;
                    cfg.issue_width = 2 * width;
                    let renamer = renamer_for(scheme, rf, swept_class(kernel.suite));
                    let mut sim = Pipeline::new(kernel.program(scale), renamer, cfg);
                    let r = sim.run().expect("width golden run");
                    println!(
                        "    (\"{}\", Scheme::{:?}, {}, {}, {}),",
                        kernel.name, scheme, width, r.cycles, r.committed_instructions
                    );
                }
            }
        }
        return;
    }
    for kernel in all_kernels() {
        for scheme in [Scheme::Baseline, Scheme::Proposed] {
            let r = run_kernel(&kernel, scheme, rf, scale);
            println!(
                "    (\"{}\", Scheme::{:?}, {}, {}),",
                kernel.name, scheme, r.cycles, r.committed_instructions
            );
        }
    }
}
