//! `regsim` — run one workload through the simulator from the command
//! line.
//!
//! ```text
//! regsim --kernel gmm --scheme proposed --regs 48 --scale 200000
//! regsim --kernel pchase --scheme both --regs 64 --verify
//! regsim --synthetic --bias 0.7 --seed 3 --scheme both
//! regsim --file program.s --verify
//! regsim --list
//! ```

use regshare::core::{BankConfig, HintPolicy, RenamerConfig, ReuseRenamer};
use regshare::harness::{renamer_for, swept_class, Scheme, FIXED_RF};
use regshare::isa::RegClass;
use regshare::sim::{Pipeline, SimConfig};
use regshare::workloads::synthetic::{generate, SyntheticConfig};
use regshare::workloads::{all_kernels, Kernel};

struct Options {
    kernel: Option<String>,
    file: Option<String>,
    synthetic: bool,
    bias: f64,
    seed: u64,
    scheme: String,
    regs: usize,
    scale: u64,
    verify: bool,
    equal_count: bool,
    fault: Option<u64>,
    list: bool,
}

fn usage() -> ! {
    println!(
        "usage: regsim [--kernel NAME | --file PROG.s | --synthetic] [options]\n\
         \n\
         workload:\n\
           --kernel NAME      one of the 16 built-in kernels (see --list)\n\
           --file PATH        assemble and run a textual .s program\n\
           --synthetic        generated workload (see --bias/--seed)\n\
           --bias F           synthetic single-use bias, 0..1 (default 0.5)\n\
           --seed N           synthetic RNG seed (default 1)\n\
         \n\
         simulation:\n\
           --scheme S         baseline | proposed | both (default both)\n\
           --regs N           swept register file size: 48..112 (default 64)\n\
           --scale N          committed-instruction budget (default 100000)\n\
           --equal-count      proposed scheme keeps the baseline's register count\n\
           --verify           lockstep-check every commit against the functional machine\n\
           --fault ADDR       inject a one-shot page fault at this data address\n\
           --list             list the built-in kernels and exit"
    );
    std::process::exit(0);
}

fn parse() -> Options {
    let mut o = Options {
        kernel: None,
        file: None,
        synthetic: false,
        bias: 0.5,
        seed: 1,
        scheme: "both".into(),
        regs: 64,
        scale: 100_000,
        verify: false,
        equal_count: false,
        fault: None,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2)
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--kernel" => o.kernel = Some(value(&mut args, "--kernel")),
            "--file" => o.file = Some(value(&mut args, "--file")),
            "--synthetic" => o.synthetic = true,
            "--bias" => o.bias = value(&mut args, "--bias").parse().unwrap_or(0.5),
            "--seed" => o.seed = value(&mut args, "--seed").parse().unwrap_or(1),
            "--scheme" => o.scheme = value(&mut args, "--scheme"),
            "--regs" => o.regs = value(&mut args, "--regs").parse().unwrap_or(64),
            "--scale" => o.scale = value(&mut args, "--scale").parse().unwrap_or(100_000),
            "--verify" => o.verify = true,
            "--equal-count" => o.equal_count = true,
            "--fault" => {
                let v = value(&mut args, "--fault");
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                o.fault = Some(parsed.unwrap_or_else(|_| {
                    eprintln!("error: bad --fault address: {v}");
                    std::process::exit(2)
                }));
            }
            "--list" => o.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    o
}

fn build_renamer(o: &Options, scheme: Scheme, swept: RegClass) -> Box<dyn regshare::core::Renamer> {
    if scheme == Scheme::Proposed && o.equal_count {
        let swept_banks = BankConfig::new(vec![o.regs.saturating_sub(12), 4, 4, 4]);
        let fixed = BankConfig::conventional(FIXED_RF);
        let (int_banks, fp_banks) = match swept {
            RegClass::Int => (swept_banks, fixed),
            RegClass::Fp => (fixed, swept_banks),
        };
        return Box::new(ReuseRenamer::new(RenamerConfig {
            int_banks,
            fp_banks,
            counter_bits: 2,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        }));
    }
    renamer_for(scheme, o.regs, swept)
}

fn main() {
    let o = parse();
    if o.list {
        println!("{:10}  suite", "kernel");
        for k in all_kernels() {
            println!("{:10}  {}", k.name, k.suite);
        }
        return;
    }

    let (program, swept, label) = if let Some(path) = &o.file {
        let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let program = regshare::isa::parse_program(&source).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        });
        (program, RegClass::Int, path.clone())
    } else if o.synthetic {
        let cfg = SyntheticConfig {
            single_use_bias: o.bias,
            seed: o.seed,
            iterations: (o.scale / 100).max(1),
            ..SyntheticConfig::default()
        };
        (
            generate(cfg),
            RegClass::Int,
            format!("synthetic(bias={}, seed={})", o.bias, o.seed),
        )
    } else {
        let name = o.kernel.clone().unwrap_or_else(|| usage());
        let kernels = all_kernels();
        let kernel: &Kernel = kernels.iter().find(|k| k.name == name).unwrap_or_else(|| {
            eprintln!("error: unknown kernel {name} (try --list)");
            std::process::exit(2);
        });
        (kernel.program(o.scale), swept_class(kernel.suite), name)
    };

    let mut config = SimConfig {
        max_instructions: o.scale,
        max_cycles: o.scale.saturating_mul(100).max(1_000_000),
        check_oracle: o.verify,
        ..SimConfig::default()
    };
    if let Some(addr) = o.fault {
        config.inject_page_faults.push(addr);
    }

    let schemes: Vec<Scheme> = match o.scheme.as_str() {
        "baseline" => vec![Scheme::Baseline],
        "proposed" => vec![Scheme::Proposed],
        "both" => vec![Scheme::Baseline, Scheme::Proposed],
        other => {
            eprintln!("error: unknown scheme {other}");
            std::process::exit(2);
        }
    };

    let mut ipcs = Vec::new();
    for scheme in schemes {
        let renamer = build_renamer(&o, scheme, swept);
        let mut sim = Pipeline::new(program.clone(), renamer, config.clone());
        match sim.run() {
            Ok(report) => {
                println!("=== {label} / {} / {} regs ===", scheme.label(), o.regs);
                println!("{report}");
                println!();
                ipcs.push(report.ipc());
            }
            Err(e) => {
                eprintln!("simulation failed ({}): {e}", scheme.label());
                std::process::exit(1);
            }
        }
    }
    if ipcs.len() == 2 && ipcs[0] > 0.0 {
        println!("speedup (proposed / baseline): {:.4}", ipcs[1] / ipcs[0]);
    }
}
