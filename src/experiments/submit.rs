//! `experiments submit` — batch client for the job service.
//!
//! Builds a sweep of simulation points (kernels × schemes at a few
//! register-file sizes), submits them to a running `experiments serve`
//! instance in batches, polls until every job is terminal, and then
//! **verifies** each completed result against a direct in-process run
//! of the same payload: the service must return byte-identical rows, or
//! the run fails. The summary (status, cache hits, verification) lands
//! in `<out_dir>/submit.json`.

use super::common::{save, Args, ExpError};
use super::serve::SimExecutor;
use crate::stats::Table;
use crate::workloads::all_kernels;
use regshare_serve::{Client, JobExecutor};
use serde::{Serialize, Value};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

#[derive(Serialize)]
struct SubmitRow {
    kernel: String,
    scheme: String,
    rf: usize,
    status: String,
    cached: bool,
    verified: bool,
}

fn serve_err(detail: String) -> ExpError {
    ExpError::Serve { detail }
}

fn payload_for(kernel: &str, scheme: &str, rf: usize, scale: u64) -> Value {
    Value::Object(vec![
        ("kernel".to_string(), Value::Str(kernel.to_string())),
        ("scheme".to_string(), Value::Str(scheme.to_string())),
        ("rf".to_string(), Value::UInt(rf as u64)),
        ("scale".to_string(), Value::UInt(scale)),
    ])
}

/// Submits the sweep and verifies the results. Needs `--port` pointing
/// at a running `experiments serve`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    if args.port == 0 {
        return Err(serve_err(
            "submit needs --port pointing at a running `experiments serve`".into(),
        ));
    }
    let client = Client::new(&format!("127.0.0.1:{}", args.port));
    client
        .healthz()
        .map_err(|e| serve_err(format!("service not reachable: {e}")))?;

    // The sweep: every kernel (or the --kernels subset) under both
    // schemes at three register-file sizes.
    let kernels: Vec<String> = match &args.kernels {
        Some(subset) => subset.clone(),
        None => all_kernels().iter().map(|k| k.name.to_string()).collect(),
    };
    let mut payloads = Vec::new();
    for kernel in &kernels {
        for scheme in ["baseline", "proposed"] {
            for rf in [56usize, 64, 80] {
                payloads.push(payload_for(kernel, scheme, rf, args.scale));
            }
        }
    }

    println!(
        "== submit: {} jobs ({} kernels x 2 schemes x 3 sizes) to 127.0.0.1:{} ==",
        payloads.len(),
        kernels.len(),
        args.port
    );
    // Batches of 16: large enough to exercise batch admission, small
    // enough that a full queue backs off per-batch, not per-sweep.
    let mut ids = Vec::with_capacity(payloads.len());
    for chunk in payloads.chunks(16) {
        let mut batch_ids = client
            .submit(chunk)
            .map_err(|e| serve_err(format!("submit batch: {e}")))?;
        ids.append(&mut batch_ids);
    }
    let rows_raw = client
        .wait_terminal(&ids, Duration::from_secs(600))
        .map_err(|e| serve_err(format!("await jobs: {e}")))?;

    // Verification: recompute each completed job in-process and demand
    // byte-identical result rows.
    let executor = SimExecutor;
    let unused = Arc::new(AtomicBool::new(false));
    let mut rows = Vec::with_capacity(rows_raw.len());
    let mut verified = 0usize;
    let mut cached = 0usize;
    let mut failed = 0usize;
    for (payload, row) in payloads.iter().zip(&rows_raw) {
        let status = row
            .get("status")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let was_cached = row.get("cached").and_then(Value::as_bool).unwrap_or(false);
        let ok = if status == "completed" {
            let served = row.get("result").and_then(Value::as_str).unwrap_or("");
            let direct = executor
                .run(payload, &unused)
                .map_err(|e| serve_err(format!("in-process verification run: {e}")))?;
            if served != direct {
                return Err(serve_err(format!(
                    "verification mismatch for {}: served {served} != direct {direct}",
                    serde_json::to_string(payload).unwrap_or_default()
                )));
            }
            verified += 1;
            cached += was_cached as usize;
            true
        } else {
            failed += 1;
            false
        };
        rows.push(SubmitRow {
            kernel: payload
                .get("kernel")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            scheme: payload
                .get("scheme")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            rf: payload.get("rf").and_then(Value::as_u64).unwrap_or(0) as usize,
            status,
            cached: was_cached,
            verified: ok,
        });
    }

    let mut table = Table::with_headers(&["outcome", "jobs"]);
    table.numeric();
    table.row(vec!["completed+verified".into(), verified.to_string()]);
    table.row(vec!["  of which cached".into(), cached.to_string()]);
    table.row(vec!["dead-lettered".into(), failed.to_string()]);
    print!("{table}");
    if failed > 0 {
        for (payload, row) in payloads.iter().zip(&rows_raw) {
            if row.get("status").and_then(Value::as_str) != Some("completed") {
                eprintln!(
                    "dead-lettered: {} -> {}",
                    serde_json::to_string(payload).unwrap_or_default(),
                    row.get("error").and_then(Value::as_str).unwrap_or("?")
                );
            }
        }
        return Err(serve_err(format!("{failed} job(s) dead-lettered")));
    }
    println!("all {verified} results byte-identical to direct in-process runs");
    save(&args.out_dir, "submit", &rows)
}
