//! Sampled per-kernel IPC through the two-speed engine: one sequential
//! functional-warming pass per kernel feeds periodic detailed windows
//! (both schemes measured from the *same* checkpoints), the windows of
//! each batch sliced across worker threads. Reports mean IPC with a 95%
//! confidence interval — the mode that scales to 10⁹-instruction runs.

use super::common::{save, Args, ExpError};
use crate::harness::{
    experiment_config, par_map_with, renamer_config_for, renamer_for, swept_class, Scheme,
};
use crate::sim::{run_window, sample_windows, SampledConfig, WindowResult};
use crate::stats::{Table, Welford};
use crate::workloads::all_kernels;
use serde::Serialize;

/// Swept-file size used for the sampled comparison (the paper's
/// headline 64-register point).
const RF_REGS: usize = 64;

#[derive(Serialize)]
struct SampleRow {
    kernel: String,
    suite: String,
    scheme: String,
    rf_regs: usize,
    scale: u64,
    period: u64,
    warmup: u64,
    measure: u64,
    windows: usize,
    ipc_mean: f64,
    ipc_ci95_half_width: f64,
    warm_instructions: u64,
    detailed_instructions: u64,
}

fn aggregate(windows: &[WindowResult]) -> (Welford, u64) {
    let mut ipc = Welford::new();
    let mut instructions = 0;
    for w in windows {
        if w.cycles > 0 {
            ipc.record(w.ipc());
        }
        instructions += w.instructions;
    }
    (ipc, instructions)
}

/// Runs the experiment and writes `sampled.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let scale = args.scale;
    let plan = args.sample_plan(scale);
    println!(
        "== Sampled IPC (two-speed engine): {} instructions, window {}+{} every {} ==",
        scale, plan.warmup, plan.measure, plan.period
    );
    let mut table = Table::with_headers(&[
        "kernel", "suite", "windows", "base IPC", "±95%", "prop IPC", "±95%", "speedup",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for k in all_kernels() {
        let swept = swept_class(k.suite);
        let bcfg = renamer_config_for(Scheme::Baseline, RF_REGS, swept);
        let pcfg = renamer_config_for(Scheme::Proposed, RF_REGS, swept);
        let config = experiment_config(scale);
        let sample_cfg = SampledConfig::new(plan);
        // Both schemes measure from the same checkpoints, so the
        // (expensive) sequential warming pass is paid once per kernel.
        let mut base_windows: Vec<WindowResult> = Vec::new();
        let prop = sample_windows(&k.program(scale), &config, &sample_cfg, scale, |jobs| {
            let pairs = par_map_with(&jobs, args.workers, |job| {
                let run = |scheme: Scheme, rcfg| {
                    run_window(
                        job,
                        renamer_for(scheme, RF_REGS, swept),
                        rcfg,
                        config.clone(),
                    )
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} ({}) window at {}: {e}",
                            k.name,
                            scheme.label(),
                            job.spec.start
                        )
                    })
                };
                (run(Scheme::Baseline, &bcfg), run(Scheme::Proposed, &pcfg))
            });
            pairs
                .into_iter()
                .map(|(b, p)| {
                    base_windows.push(b);
                    p
                })
                .collect()
        });
        let (base_ipc, base_instructions) = aggregate(&base_windows);
        let speedup = if base_ipc.mean() > 0.0 {
            prop.ipc_mean() / base_ipc.mean()
        } else {
            0.0
        };
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            prop.windows.len().to_string(),
            format!("{:.3}", base_ipc.mean()),
            format!("{:.3}", base_ipc.ci95_half_width()),
            format!("{:.3}", prop.ipc_mean()),
            format!("{:.3}", prop.ipc_ci95()),
            format!("{:.3}", speedup),
        ]);
        for (scheme, ipc, windows, detailed_instructions) in [
            (
                Scheme::Baseline,
                &base_ipc,
                base_windows.len(),
                base_instructions,
            ),
            (
                Scheme::Proposed,
                &prop.ipc,
                prop.windows.len(),
                prop.detailed_instructions,
            ),
        ] {
            rows.push(SampleRow {
                kernel: k.name.into(),
                suite: k.suite.label().into(),
                scheme: scheme.label().into(),
                rf_regs: RF_REGS,
                scale,
                period: plan.period,
                warmup: plan.warmup,
                measure: plan.measure,
                windows,
                ipc_mean: ipc.mean(),
                ipc_ci95_half_width: ipc.ci95_half_width(),
                warm_instructions: prop.warm_instructions,
                detailed_instructions,
            });
        }
    }
    print!("{table}");
    save(&args.out_dir, "sampled", &rows)
}
