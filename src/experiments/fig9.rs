//! Figure 9: shadow registers needed to cover a given fraction of
//! execution (fp suite).

use super::common::{save, Args, ExpError};
use crate::core::{BankConfig, HintPolicy, RenamerConfig, ReuseRenamer};
use crate::harness::{experiment_config, par_map, run_kernel_with, FIXED_RF};
use crate::stats::Table;
use crate::workloads::{suite_kernels, Suite};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Row {
    coverage_pct: f64,
    one_shadow: u64,
    two_shadow: u64,
    three_shadow: u64,
}

/// Runs the occupancy sweep and writes `fig9.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 9: shadow registers needed to cover % of execution (fp suite) ==");
    // Effectively unbounded shadow banks; sample bank occupancy per cycle.
    let banks = BankConfig::new(vec![64, 48, 48, 48]);
    let mut samplers: Vec<crate::stats::Sampler> = Vec::new();
    let kernels = suite_kernels(Suite::Fp);
    let occupancies = par_map(&kernels, |k| {
        let config = RenamerConfig {
            int_banks: BankConfig::conventional(FIXED_RF),
            fp_banks: banks.clone(),
            counter_bits: 2,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        };
        let mut sim_cfg = experiment_config(args.scale);
        sim_cfg.occupancy_sample_interval = 16;
        run_kernel_with(k, Box::new(ReuseRenamer::new(config)), sim_cfg, args.scale).fp_occupancy
    });
    // Merge in kernel order so the aggregated sample streams match the
    // serial sweep exactly.
    for occupancy in occupancies {
        for (i, s) in occupancy.into_iter().enumerate() {
            match samplers.get_mut(i) {
                Some(dst) => {
                    for v in s.samples() {
                        dst.record(*v);
                    }
                }
                None => samplers.push(s),
            }
        }
    }
    let mut table = Table::with_headers(&[
        "coverage %",
        "1-shadow regs",
        "2-shadow regs",
        "3-shadow regs",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for pct_cov in [50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        let need = |bank: usize| {
            samplers
                .get(bank)
                .and_then(|s| s.percentile(pct_cov))
                .unwrap_or(0)
        };
        table.row(vec![
            format!("{pct_cov}"),
            need(1).to_string(),
            need(2).to_string(),
            need(3).to_string(),
        ]);
        rows.push(Fig9Row {
            coverage_pct: pct_cov,
            one_shadow: need(1),
            two_shadow: need(2),
            three_shadow: need(3),
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig9", &rows)
}
