//! Table I: the simulated system configuration.

use super::common::{save, Args, ExpError};
use crate::sim::SimConfig;
use crate::stats::Table;

/// Prints the configuration table and writes `table1.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Table I: system configuration ==");
    let c = SimConfig::default();
    let mut table = Table::with_headers(&["parameter", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("ISA", "TRISC (ARM-flavoured 64-bit RISC)".into()),
        ("ROB", format!("{} entries", c.rob_entries)),
        ("Issue queue", format!("{} entries", c.iq_entries)),
        ("Decode/dispatch width", format!("{}", c.decode_width)),
        ("Fetch queue", format!("{} instructions", c.fetch_queue)),
        (
            "Branch predictor",
            format!(
                "gshare {} + {}-entry BTB",
                c.bpred.pht_entries, c.bpred.btb_entries
            ),
        ),
        (
            "Mispredict penalty",
            format!("{} cycles", c.mispredict_penalty),
        ),
        ("L1-D", "32 KB, 2-way, 1 cycle".into()),
        ("L1-I", "48 KB, 3-way, 1 cycle".into()),
        ("L2", "1 MB, 16-way, 12 cycles".into()),
        (
            "TLB",
            format!("{}-entry fully associative", c.mem.tlb.entries),
        ),
        ("Prefetcher", "stride, degree 1".into()),
        ("DRAM", "DDR3-1600-like, 16 banks, 8 KB rows".into()),
    ];
    for (k, v) in &rows {
        table.row(vec![(*k).into(), v.clone()]);
    }
    print!("{table}");
    save(
        &args.out_dir,
        "table1",
        &rows
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect::<Vec<_>>(),
    )
}
