//! Fault injection: seeded campaigns of interrupts, page faults, branch
//! flips and squash storms under lockstep oracle + invariant audits.

use super::common::{die, save, Args, ExpError};
use crate::harness::{experiment_config, par_map, renamer_for, swept_class, Scheme};
use crate::sim::{InjectSchedule, Pipeline, SimError};
use crate::workloads::all_kernels;
use serde::Serialize;

#[derive(Serialize)]
struct InjectRow {
    campaign: usize,
    kernel: String,
    scheme: String,
    seed: u64,
    interrupts: u64,
    nested_interrupts: u64,
    load_faults: u64,
    store_faults: u64,
    branch_flips: u64,
    squash_storms: u64,
    events_total: u64,
    audits: u64,
    cycles: u64,
    committed_instructions: u64,
    mispredicts: u64,
    exceptions: u64,
    shadow_recovers: u64,
    status: String,
}

/// Runs the campaign sweep and writes `inject_report.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Fault injection: seeded interrupts / faults / flips / squash storms ==");
    // Injection stresses recovery paths, not steady-state IPC: modest
    // runs keep a 100+-campaign sweep fast, and the schedule horizon
    // covers the whole run either way.
    let scale = args.scale.min(20_000);
    let mut kernels = all_kernels();
    if let Some(names) = &args.kernels {
        for n in names {
            if !kernels.iter().any(|k| k.name == n.as_str()) {
                die(&format!("unknown kernel for --kernels: {n}"));
            }
        }
        kernels.retain(|k| names.iter().any(|n| n == k.name));
    }
    // Campaign i covers kernel i mod K, alternating schemes across
    // passes, with a per-campaign schedule seed derived from --seed.
    let schemes = [Scheme::Baseline, Scheme::Proposed];
    let points: Vec<usize> = (0..args.campaigns.max(1)).collect();
    let runs: Vec<(InjectRow, Option<String>)> = par_map(&points, |&i| {
        let kernel = &kernels[i % kernels.len()];
        let scheme = schemes[(i / kernels.len()) % schemes.len()];
        let seed = args.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut cfg = experiment_config(scale);
        cfg.check_oracle = true;
        cfg.audit_interval = 256;
        let renamer = renamer_for(scheme, 64, swept_class(kernel.suite));
        let mut sim = Pipeline::new(kernel.program(scale), renamer, cfg);
        sim.set_inject(InjectSchedule::seeded(seed, scale));
        let (status, error) = match sim.run() {
            Ok(_) => ("ok", None),
            Err(e) => {
                let status = match &e {
                    SimError::OracleMismatch { .. } => "oracle-mismatch",
                    SimError::CycleLimit { .. } => "cycle-limit",
                    SimError::Deadlock { .. } => "deadlock",
                    SimError::Invariant { .. } => "invariant-violation",
                    SimError::Lsq { .. } => "lsq-error",
                    // No supervisor attaches a cancel token here, but the
                    // row schema still needs a stable word for it.
                    SimError::Cancelled { .. } => "cancelled",
                    SimError::Config { .. } => "config-error",
                };
                let detail = format!(
                    "campaign {i} ({}, {}, seed {seed:#x}): {e}",
                    kernel.name,
                    scheme.label()
                );
                (status, Some(detail))
            }
        };
        let report = sim.report();
        let stats = sim.inject_stats();
        let row = InjectRow {
            campaign: i,
            kernel: kernel.name.into(),
            scheme: scheme.label().into(),
            seed,
            interrupts: stats.interrupts,
            nested_interrupts: stats.nested_interrupts,
            load_faults: stats.load_faults,
            store_faults: stats.store_faults,
            branch_flips: stats.branch_flips,
            squash_storms: stats.squash_storms,
            events_total: stats.total(),
            audits: sim.audits(),
            cycles: report.cycles,
            committed_instructions: report.committed_instructions,
            mispredicts: report.mispredicts,
            exceptions: report.exceptions,
            shadow_recovers: report.shadow_recovers,
            status: status.into(),
        };
        (row, error)
    });
    let errors: Vec<String> = runs.iter().filter_map(|(_, e)| e.clone()).collect();
    let rows: Vec<InjectRow> = runs.into_iter().map(|(r, _)| r).collect();
    let sum = |f: fn(&InjectRow) -> u64| rows.iter().map(f).sum::<u64>();
    println!(
        "  {} campaigns over {} kernels x {} schemes at scale {scale}: \
         {} events delivered ({} interrupts incl. {} nested, {} load faults, \
         {} store faults, {} branch flips, {} squash storms), {} invariant audits, \
         {} clean",
        rows.len(),
        kernels.len(),
        schemes.len(),
        sum(|r| r.events_total),
        sum(|r| r.interrupts),
        sum(|r| r.nested_interrupts),
        sum(|r| r.load_faults),
        sum(|r| r.store_faults),
        sum(|r| r.branch_flips),
        sum(|r| r.squash_storms),
        sum(|r| r.audits),
        rows.iter().filter(|r| r.status == "ok").count(),
    );
    save(&args.out_dir, "inject_report", &rows)?;
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("{e}");
        }
        die(&format!(
            "{} of {} injection campaigns failed",
            errors.len(),
            rows.len()
        ));
    }
    Ok(())
}
