//! Figure 10-EC (extension): equal-register-count speedup over the
//! baseline across register-file sizes.

use super::common::{Args, ExpError};
use super::sweeps::speedup_sweep;

/// Runs the sweep and writes `fig10ec.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    speedup_sweep(
        args,
        "fig10ec",
        "== Figure 10-EC (extension): equal-register-count speedup vs baseline ==",
        true,
    )
}
