//! Static oracle: per-kernel static sharing bounds cross-checked against
//! the dynamic measurement.

use super::common::{ratio_pct, save, Args, ExpError};
use crate::harness::{par_map, run_kernel, Scheme};
use crate::stats::Table;
use crate::workloads::all_kernels;
use serde::Serialize;

#[derive(Serialize)]
struct StaticOracleRow {
    kernel: String,
    suite: String,
    lint_diagnostics: usize,
    static_sites: usize,
    dead_sites: usize,
    single_safe_sites: usize,
    single_needs_predictor_sites: usize,
    unknown_sites: usize,
    multi_consumer_sites: usize,
    static_guaranteed_single_pct: f64,
    static_possibly_single_pct: f64,
    weighted_lower_bound_pct: f64,
    weighted_upper_bound_pct: f64,
    dynamic_single_use_pct: f64,
    dynamic_single_use_redefining_pct: f64,
    trace_complete: bool,
    oracle_violations: usize,
    predictor_accuracy_pct: f64,
    predictor_reuse_correct: u64,
    predictor_reuse_incorrect: u64,
    predictor_noreuse_correct: u64,
    predictor_noreuse_incorrect: u64,
}

/// Runs the static/dynamic cross-check and writes `static_oracle.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    use crate::analyze::{classify, lint_program, oracle_check, Cfg, SiteClass};
    println!("== Static oracle: per-kernel static sharing bounds vs dynamic measurement ==");
    // Kernels halt at a loop boundary, so the functional budget must be
    // comfortably above the sizing scale for complete traces (the
    // soundness cross-checks need them).
    let budget = args.scale.saturating_mul(64);
    let kernels = all_kernels();
    let rows: Vec<StaticOracleRow> = par_map(&kernels, |k| {
        let program = k.program(args.scale);
        let diags = lint_program(&program);
        let cfg = Cfg::build(program.insts(), program.entry());
        let c = classify(&cfg, program.insts());
        let report = oracle_check(&program, budget)
            .unwrap_or_else(|e| panic!("{}: oracle run failed: {e}", k.name));
        let predictor = run_kernel(k, Scheme::Proposed, 64, args.scale).predictor;
        let sites = c.len().max(1) as f64;
        StaticOracleRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            lint_diagnostics: diags.len(),
            static_sites: c.len(),
            dead_sites: c.count(SiteClass::Dead),
            single_safe_sites: c.count(SiteClass::SingleSafeReuse),
            single_needs_predictor_sites: c.count(SiteClass::SingleNeedsPredictor),
            unknown_sites: c.count(SiteClass::Unknown),
            multi_consumer_sites: c.count(SiteClass::MultiConsumer),
            static_guaranteed_single_pct: c.guaranteed_single() as f64 / sites * 100.0,
            static_possibly_single_pct: c.possibly_single() as f64 / sites * 100.0,
            weighted_lower_bound_pct: report.lower_bound_fraction() * 100.0,
            weighted_upper_bound_pct: report.upper_bound_fraction() * 100.0,
            dynamic_single_use_pct: report.single_use_fraction() * 100.0,
            dynamic_single_use_redefining_pct: ratio_pct(
                report.single_use_redefining_instances,
                report.def_instances,
            ),
            trace_complete: report.trace_complete,
            oracle_violations: report.violations.len(),
            predictor_accuracy_pct: predictor.accuracy() * 100.0,
            predictor_reuse_correct: predictor.reuse_correct,
            predictor_reuse_incorrect: predictor.reuse_incorrect,
            predictor_noreuse_correct: predictor.noreuse_correct,
            predictor_noreuse_incorrect: predictor.noreuse_incorrect,
        }
    });
    let mut table = Table::with_headers(&[
        "kernel",
        "suite",
        "lint",
        "sites",
        "lower%",
        "dyn-single%",
        "upper%",
        "pred-acc%",
    ]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.kernel.clone(),
            r.suite.clone(),
            r.lint_diagnostics.to_string(),
            r.static_sites.to_string(),
            format!("{:.1}", r.weighted_lower_bound_pct),
            format!("{:.1}", r.dynamic_single_use_pct),
            format!("{:.1}", r.weighted_upper_bound_pct),
            format!("{:.1}", r.predictor_accuracy_pct),
        ]);
    }
    print!("{table}");
    for r in &rows {
        assert!(
            r.weighted_upper_bound_pct + 1e-9 >= r.dynamic_single_use_pct
                && r.weighted_lower_bound_pct <= r.dynamic_single_use_pct + 1e-9,
            "{}: static bounds do not bracket the dynamic single-use fraction",
            r.kernel
        );
        assert_eq!(
            r.oracle_violations, 0,
            "{}: static/dynamic disagreement",
            r.kernel
        );
    }
    println!(
        "static bounds bracket the dynamic single-use fraction on all {} kernels",
        rows.len()
    );
    save(&args.out_dir, "static_oracle", &rows)
}
