//! Static sharing hints raced against the dynamic predictor: every
//! kernel runs under all three [`HintPolicy`] variants with its compiled
//! hint table attached, and the speculation accounting is split by grant
//! source (Fig. 12 style, per source).

use super::common::{save, Args, ExpError};
use crate::analyze::{classify, classify_with_loops, compile_hints, Cfg, SiteClass};
use crate::core::{HintPolicy, ReuseRenamer};
use crate::harness::{experiment_config, par_map, renamer_config_for, swept_class, Scheme};
use crate::sim::Pipeline;
use crate::stats::Table;
use crate::workloads::all_kernels;
use serde::Serialize;

const POLICIES: [(HintPolicy, &str); 3] = [
    (HintPolicy::DynamicOnly, "dynamic"),
    (HintPolicy::StaticOnly, "static"),
    (HintPolicy::Hybrid, "hybrid"),
];

#[derive(Serialize)]
struct HintRow {
    kernel: String,
    suite: String,
    policy: String,
    // Hint-table shape (identical across the kernel's three policies).
    sites: usize,
    exact_hint_slots: usize,
    hint_coverage_pct: f64,
    unknown_sites_base: usize,
    unknown_sites_loops: usize,
    // Timing result.
    cycles: u64,
    committed_instructions: u64,
    ipc: f64,
    // Sharing behaviour.
    reuses: u64,
    safe_reuses: u64,
    speculative_reuses: u64,
    repairs: u64,
    // Grant-source split.
    static_speculations: u64,
    dynamic_speculations: u64,
    static_denials: u64,
    static_correct: u64,
    static_repaired: u64,
    dynamic_correct: u64,
    dynamic_repaired: u64,
    static_accuracy_pct: f64,
    dynamic_accuracy_pct: f64,
    static_bank_correct: u64,
    static_bank_incorrect: u64,
}

/// Runs the hint-policy race and writes `hints.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Static hints vs dynamic predictor: 3 policies x all kernels ==");
    let kernels = all_kernels();
    let rows: Vec<HintRow> = par_map(&kernels, |k| {
        let program = k.program(args.scale);
        let cfg = Cfg::build(program.insts(), program.entry());
        let base = classify(&cfg, program.insts());
        let deep = classify_with_loops(&cfg, program.insts());
        let hints = compile_hints(&program);
        let sites = hints.len();
        let exact = hints.exact_slots();
        let program = program.with_hints(hints);
        POLICIES
            .iter()
            .map(|&(policy, label)| {
                let mut rconfig = renamer_config_for(Scheme::Proposed, 64, swept_class(k.suite));
                rconfig.hint_policy = policy;
                let renamer = Box::new(ReuseRenamer::new(rconfig));
                let mut sim =
                    Pipeline::new(program.clone(), renamer, experiment_config(args.scale));
                let report = sim
                    .run()
                    .unwrap_or_else(|e| panic!("{} ({label}): {e}", k.name));
                HintRow {
                    kernel: k.name.into(),
                    suite: k.suite.label().into(),
                    policy: label.into(),
                    sites,
                    exact_hint_slots: exact,
                    hint_coverage_pct: if sites == 0 {
                        0.0
                    } else {
                        exact as f64 / sites as f64 * 100.0
                    },
                    unknown_sites_base: base.count(SiteClass::Unknown),
                    unknown_sites_loops: deep.count(SiteClass::Unknown),
                    cycles: report.cycles,
                    committed_instructions: report.committed_instructions,
                    ipc: report.ipc(),
                    reuses: report.rename.reuses,
                    safe_reuses: report.rename.safe_reuses,
                    speculative_reuses: report.rename.speculative_reuses,
                    repairs: report.rename.repairs,
                    static_speculations: report.hints.static_speculations,
                    dynamic_speculations: report.hints.dynamic_speculations,
                    static_denials: report.hints.static_denials,
                    static_correct: report.hints.static_correct,
                    static_repaired: report.hints.static_repaired,
                    dynamic_correct: report.hints.dynamic_correct,
                    dynamic_repaired: report.hints.dynamic_repaired,
                    static_accuracy_pct: report.hints.static_accuracy() * 100.0,
                    dynamic_accuracy_pct: report.hints.dynamic_accuracy() * 100.0,
                    static_bank_correct: report.hints.static_bank_correct,
                    static_bank_incorrect: report.hints.static_bank_incorrect,
                }
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    let mut table = Table::with_headers(&[
        "kernel",
        "policy",
        "ipc",
        "cover%",
        "spec(s/d)",
        "repairs(s/d)",
        "deny",
        "acc-s%",
        "acc-d%",
    ]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.kernel.clone(),
            r.policy.clone(),
            format!("{:.4}", r.ipc),
            format!("{:.1}", r.hint_coverage_pct),
            format!("{}/{}", r.static_speculations, r.dynamic_speculations),
            format!("{}/{}", r.static_repaired, r.dynamic_repaired),
            r.static_denials.to_string(),
            format!("{:.1}", r.static_accuracy_pct),
            format!("{:.1}", r.dynamic_accuracy_pct),
        ]);
    }
    print!("{table}");

    // Sanity: DynamicOnly must never take or deny anything on static
    // authority, and static grants must only appear where proofs exist.
    for r in rows.iter().filter(|r| r.policy == "dynamic") {
        assert_eq!(
            (r.static_speculations, r.static_denials),
            (0, 0),
            "{}: DynamicOnly acted on a static hint",
            r.kernel
        );
    }
    // The deepened classifier must never be *less* precise than the
    // baseline classifier it refines.
    for r in rows.iter().filter(|r| r.policy == "dynamic") {
        assert!(
            r.unknown_sites_loops <= r.unknown_sites_base,
            "{}: loop-aware classification lost precision",
            r.kernel
        );
    }
    let improved = kernels
        .iter()
        .zip(rows.chunks(POLICIES.len()))
        .filter(|(_, c)| c[0].unknown_sites_loops < c[0].unknown_sites_base)
        .count();
    println!(
        "loop-aware analysis shrank the Unknown class on {improved}/{} kernels",
        kernels.len()
    );
    save(&args.out_dir, "hints", &rows)
}
