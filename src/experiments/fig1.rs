//! Figure 1: fraction of single-consumer destinations, split by whether
//! the consumer redefines its source register.

use super::common::{pct, save, Args, ExpError};
use crate::stats::Table;
use crate::workloads::{all_kernels, analysis};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Fig1Row {
    kernel: String,
    suite: String,
    redefining_pct: f64,
    non_redefining_pct: f64,
    total_pct: f64,
    dest_pct: f64,
}

/// Runs the experiment and writes `fig1.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 1: single-consumer destinations (redefining vs not) ==");
    let mut table =
        Table::with_headers(&["kernel", "suite", "redef%", "other%", "total%", "dest%"]);
    table.numeric();
    let mut rows = Vec::new();
    let mut per_suite: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for k in all_kernels() {
        let p = analysis::analyze(&k.program(args.scale), args.scale);
        let redef = p.single_use_redefining_fraction();
        let total = p.single_use_fraction();
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            pct(redef),
            pct(total - redef),
            pct(total),
            pct(p.dest_fraction()),
        ]);
        per_suite.entry(k.suite.label()).or_default().push(total);
        rows.push(Fig1Row {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            redefining_pct: redef * 100.0,
            non_redefining_pct: (total - redef) * 100.0,
            total_pct: total * 100.0,
            dest_pct: p.dest_fraction() * 100.0,
        });
    }
    for (suite, vals) in &per_suite {
        table.row(vec![
            "AVERAGE".into(),
            (*suite).into(),
            "-".into(),
            "-".into(),
            pct(crate::stats::mean(vals)),
            "-".into(),
        ]);
    }
    print!("{table}");
    save(&args.out_dir, "fig1", &rows)
}
