//! Table II: area of the register files and the scheme's overhead
//! structures.

use super::common::{save, Args, ExpError};
use crate::area;
use crate::stats::Table;

/// Prints the area table and writes `table2.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Table II: area of register files and overhead structures ==");
    let rows = area::table2();
    let mut table = Table::with_headers(&["unit", "configuration", "area (mm^2)"]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.unit.clone(),
            r.configuration.clone(),
            format!("{:.3e}", r.area_mm2),
        ]);
    }
    let overhead: f64 = rows[2..].iter().map(|r| r.area_mm2).sum();
    table.row(vec![
        "Total overhead".into(),
        "-".into(),
        format!("{overhead:.3e}"),
    ]);
    print!("{table}");
    save(&args.out_dir, "table2", &rows)
}
