//! The shared ablation harness and renamer factories used by the four
//! `ablate-*` subcommands.

use super::common::{save, Args, ExpError};
use crate::core::{BankConfig, HintPolicy, Renamer, RenamerConfig, ReuseRenamer};
use crate::harness::{
    experiment_config, par_map, run_kernel, run_kernel_with, swept_class, Scheme, FIXED_RF,
};
use crate::isa::RegClass;
use crate::stats::{geomean, Table};
use crate::workloads::all_kernels;
use serde::Serialize;

#[derive(Serialize)]
struct AblateRow {
    setting: String,
    geomean_speedup: f64,
    mean_reuse_pct: f64,
}

pub(crate) fn ablate<F>(
    args: &Args,
    name: &str,
    title: &str,
    settings: Vec<(String, F)>,
) -> Result<(), ExpError>
where
    F: Fn(RegClass) -> Box<dyn Renamer> + Sync,
{
    println!("{title}");
    let mut table = Table::with_headers(&["setting", "geomean speedup", "mean reuse %"]);
    table.numeric();
    let mut rows = Vec::new();
    let kernels = all_kernels();
    for (label, make) in settings {
        // The renamer factory runs inside each worker: a boxed renamer
        // is not `Send`, but it never crosses a thread boundary.
        let metrics = par_map(&kernels, |k| {
            let base = run_kernel(k, Scheme::Baseline, 64, args.scale);
            let prop = run_kernel_with(
                k,
                make(swept_class(k.suite)),
                experiment_config(args.scale),
                args.scale,
            );
            (
                prop.ipc() / base.ipc(),
                prop.rename.reuse_fraction() * 100.0,
            )
        });
        let speedups: Vec<f64> = metrics.iter().map(|m| m.0).collect();
        let reuse: Vec<f64> = metrics.iter().map(|m| m.1).collect();
        let g = geomean(&speedups);
        let m = crate::stats::mean(&reuse);
        table.row(vec![label.clone(), format!("{g:.4}"), format!("{m:.1}")]);
        rows.push(AblateRow {
            setting: label,
            geomean_speedup: g,
            mean_reuse_pct: m,
        });
    }
    print!("{table}");
    save(&args.out_dir, name, &rows)
}

pub(crate) fn renamer_with(
    swept: RegClass,
    swept_banks: BankConfig,
    counter_bits: u8,
    entries: usize,
) -> Box<dyn Renamer> {
    renamer_with_spec(swept, swept_banks, counter_bits, entries, true)
}

pub(crate) fn renamer_with_spec(
    swept: RegClass,
    swept_banks: BankConfig,
    counter_bits: u8,
    entries: usize,
    speculative_reuse: bool,
) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        counter_bits,
        predictor_entries: entries,
        predictor_bits: 2,
        speculative_reuse,
        hint_policy: HintPolicy::DynamicOnly,
        threads: 1,
    }))
}
