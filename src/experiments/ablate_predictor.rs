//! Ablation: register type predictor size.

use super::ablate::{ablate, renamer_with};
use super::common::{Args, ExpError};
use crate::core::BankConfig;
use crate::isa::RegClass;

/// Runs the ablation and writes `ablate_predictor.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let settings = [64usize, 128, 256, 512, 1024, 4096]
        .into_iter()
        .map(|entries| {
            let label = format!("{entries} entries");
            (label, move |swept: RegClass| {
                let banks = BankConfig::new(vec![52, 4, 4, 4]);
                renamer_with(swept, banks, 2, entries)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_predictor",
        "== Ablation: register type predictor size (equal count, 64 regs) ==",
        settings,
    )
}
