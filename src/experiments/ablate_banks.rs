//! Ablation: shadow-bank split at a fixed register count.

use super::ablate::{ablate, renamer_with};
use super::common::{Args, ExpError};
use crate::core::BankConfig;
use crate::isa::RegClass;

/// Runs the ablation and writes `ablate_banks.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let splits: Vec<Vec<usize>> = vec![
        vec![52, 4, 4, 4],
        vec![48, 8, 4, 4],
        vec![48, 4, 4, 8],
        vec![44, 12, 4, 4],
        vec![52, 12, 0, 0],
        vec![56, 0, 0, 8],
    ];
    let settings = splits
        .into_iter()
        .map(|sizes| {
            let label = format!("{sizes:?}");
            (label, move |swept: RegClass| {
                renamer_with(swept, BankConfig::new(sizes.clone()), 2, 512)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_banks",
        "== Ablation: bank split at 64 registers (equal count) ==",
        settings,
    )
}
