//! Shape stability: the fig1/fig3 dataflow shapes recomputed across an
//! instruction-count ladder (10⁵ → 10⁷ → 10⁹) from windowed functional
//! traces. The full figures replay an exact trace, which cannot scale to
//! paper-length streams; here each rung samples bounded trace windows
//! spread across the stream and shows the shape metrics barely move —
//! the evidence that sampled paper-scale runs measure the same programs
//! the small-scale figures characterize.

use super::common::{pct, save, Args, ExpError};
use crate::isa::{Machine, Retired};
use crate::stats::Table;
use crate::workloads::{all_kernels, analysis, Kernel};
use serde::Serialize;

/// Instructions captured per trace window.
const WINDOW: u64 = 20_000;

/// Trace windows per rung (bounds the memory a rung can hold).
const MAX_WINDOWS: u64 = 25;

#[derive(Serialize)]
struct ShapeRow {
    kernel: String,
    suite: String,
    scale: u64,
    windows: usize,
    single_use_pct: f64,
    dest_pct: f64,
    reuse_le2_pct: f64,
    reuse_unlimited_pct: f64,
}

/// One representative kernel per suite (the ladder is about scale, not
/// breadth — the full per-kernel shapes live in fig1/fig3).
fn representatives() -> Vec<Kernel> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for k in all_kernels() {
        if !seen.contains(&k.suite) {
            seen.push(k.suite);
            out.push(k);
        }
    }
    out
}

/// The instruction-count ladder up to `scale`.
fn rungs(scale: u64) -> Vec<u64> {
    let mut rungs: Vec<u64> = [100_000, 10_000_000, 1_000_000_000]
        .into_iter()
        .filter(|&r| r <= scale)
        .collect();
    if rungs.last() != Some(&scale) {
        rungs.push(scale);
    }
    rungs
}

/// Collects up to [`MAX_WINDOWS`] windows of [`WINDOW`] retired
/// instructions, evenly spread over the first `rung` instructions.
fn windowed_trace(kernel: &Kernel, rung: u64) -> Vec<Retired> {
    let windows = (rung / WINDOW).clamp(1, MAX_WINDOWS);
    let period = rung / windows;
    let mut machine = Machine::new(kernel.program(rung));
    let mut trace = Vec::new();
    for i in 0..windows {
        let start = i * period;
        let end = (start + WINDOW).min(rung);
        machine
            .run_observe(start, |_| {})
            .expect("functional execution");
        if machine.is_halted() {
            break;
        }
        machine
            .run_observe(end, |r| trace.push(*r))
            .expect("functional execution");
    }
    trace
}

/// Runs the experiment and writes `shape.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let ladder = rungs(args.scale);
    println!(
        "== Shape stability: fig1/fig3 metrics across scales {:?} ==",
        ladder
    );
    let mut table = Table::with_headers(&[
        "kernel",
        "scale",
        "single-use%",
        "dest%",
        "reuse<=2%",
        "reuse-unl%",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for k in representatives() {
        for &rung in &ladder {
            let trace = windowed_trace(&k, rung);
            let profile = analysis::analyze_trace(&trace);
            let le2 = analysis::reuse_potential_trace(&trace, 2);
            let unl = analysis::reuse_potential_trace(&trace, u64::MAX);
            table.row(vec![
                k.name.into(),
                rung.to_string(),
                pct(profile.single_use_fraction()),
                pct(profile.dest_fraction()),
                pct(le2),
                pct(unl),
            ]);
            rows.push(ShapeRow {
                kernel: k.name.into(),
                suite: k.suite.label().into(),
                scale: rung,
                windows: trace.len().div_ceil(WINDOW as usize),
                single_use_pct: profile.single_use_fraction() * 100.0,
                dest_pct: profile.dest_fraction() * 100.0,
                reuse_le2_pct: le2 * 100.0,
                reuse_unlimited_pct: unl * 100.0,
            });
        }
    }
    print!("{table}");
    save(&args.out_dir, "shape", &rows)
}
