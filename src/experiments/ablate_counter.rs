//! Ablation: version-counter width.

use super::ablate::{ablate, renamer_with};
use super::common::{Args, ExpError};
use crate::core::BankConfig;
use crate::isa::RegClass;

/// Runs the ablation and writes `ablate_counter.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    // Version-counter width: an n-bit counter allows 2^n - 1 reuses; banks
    // sized to the same register count (52/4/4/4 = 64).
    let settings = [1u8, 2, 3]
        .into_iter()
        .map(|bits| {
            let label = format!("{bits}-bit counter");
            (label, move |swept: RegClass| {
                // Same bank layout throughout; narrower counters simply
                // saturate earlier and leave deeper shadow cells unused.
                let banks = BankConfig::new(vec![52, 4, 4, 4]);
                renamer_with(swept, banks, bits, 512)
            })
        })
        .collect();
    ablate(
        args,
        "ablate_counter",
        "== Ablation: version counter width (equal count, 64 regs) ==",
        settings,
    )
}
