//! Engine throughput benchmark: detailed-mode committed-uops/sec versus
//! functional-warming instructions/sec, per kernel and aggregate, written
//! to `BENCH_sample.json`. This is the evidence for the two-speed
//! engine's speed ratio and the cost model behind the sampled mode.

use super::common::{save, Args, ExpError};
use crate::harness::{experiment_config, run_kernel, Scheme};
use crate::sim::FunctionalWarmer;
use crate::stats::Table;
use crate::workloads::all_kernels;
use serde::Serialize;

/// Swept-file size for the detailed-mode measurement.
const RF_REGS: usize = 64;

/// Detailed-mode instruction budget: throughput stabilizes well within
/// this, so the benchmark does not pay paper-scale detailed time.
const DETAILED_CAP: u64 = 200_000;

/// Warming-mode budget bounds: enough instructions for a stable
/// measurement even at smoke scales, capped so the benchmark itself
/// stays cheap at paper scales.
const WARM_FLOOR: u64 = 2_000_000;
const WARM_CAP: u64 = 20_000_000;

#[derive(Serialize)]
struct BenchRow {
    kernel: String,
    suite: String,
    detailed_instructions: u64,
    detailed_seconds: f64,
    detailed_uops_per_sec: f64,
    detailed_instructions_per_sec: f64,
    warm_instructions: u64,
    warm_seconds: f64,
    warm_instructions_per_sec: f64,
    /// Warming instructions/sec over detailed committed-uops/sec.
    speed_ratio: f64,
}

#[derive(Serialize)]
struct BenchReport {
    scale: u64,
    rows: Vec<BenchRow>,
    total_detailed_uops: u64,
    total_detailed_seconds: f64,
    total_warm_instructions: u64,
    total_warm_seconds: f64,
    aggregate_detailed_uops_per_sec: f64,
    aggregate_warm_instructions_per_sec: f64,
    aggregate_speed_ratio: f64,
    /// Wall time of this whole benchmark sweep, in seconds.
    sweep_wall_seconds: f64,
}

/// Runs the benchmark and writes `BENCH_sample.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let detailed_scale = args.scale.min(DETAILED_CAP);
    let warm_scale = args.scale.clamp(WARM_FLOOR, WARM_CAP);
    println!(
        "== Engine throughput: detailed ({detailed_scale} instructions) vs \
         functional warming ({warm_scale} instructions) =="
    );
    let mut table =
        Table::with_headers(&["kernel", "suite", "detailed uops/s", "warm inst/s", "ratio"]);
    table.numeric();
    let sweep_started = std::time::Instant::now();
    let mut rows = Vec::new();
    let mut total_uops = 0u64;
    let mut total_detailed_seconds = 0.0;
    let mut total_warm_instructions = 0u64;
    let mut total_warm_seconds = 0.0;
    for k in all_kernels() {
        let detailed = run_kernel(&k, Scheme::Proposed, RF_REGS, detailed_scale);
        let mut warmer =
            FunctionalWarmer::new(k.program(warm_scale), &experiment_config(warm_scale));
        warmer.run_until(warm_scale).unwrap_or_else(|e| {
            panic!("{}: functional warming failed: {e}", k.name);
        });
        let warm_per_sec = warmer.retired() as f64 / warmer.wall_seconds().max(1e-12);
        let ratio = warm_per_sec / detailed.uops_per_second().max(1e-12);
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            format!("{:.0}", detailed.uops_per_second()),
            format!("{:.0}", warm_per_sec),
            format!("{:.1}", ratio),
        ]);
        total_uops += detailed.committed_uops;
        total_detailed_seconds += detailed.wall_seconds;
        total_warm_instructions += warmer.retired();
        total_warm_seconds += warmer.wall_seconds();
        rows.push(BenchRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            detailed_instructions: detailed.committed_instructions,
            detailed_seconds: detailed.wall_seconds,
            detailed_uops_per_sec: detailed.uops_per_second(),
            detailed_instructions_per_sec: detailed.instructions_per_second(),
            warm_instructions: warmer.retired(),
            warm_seconds: warmer.wall_seconds(),
            warm_instructions_per_sec: warm_per_sec,
            speed_ratio: ratio,
        });
    }
    let aggregate_detailed = total_uops as f64 / total_detailed_seconds.max(1e-12);
    let aggregate_warm = total_warm_instructions as f64 / total_warm_seconds.max(1e-12);
    let aggregate_ratio = aggregate_warm / aggregate_detailed.max(1e-12);
    table.row(vec![
        "AGGREGATE".into(),
        "-".into(),
        format!("{aggregate_detailed:.0}"),
        format!("{aggregate_warm:.0}"),
        format!("{aggregate_ratio:.1}"),
    ]);
    print!("{table}");
    let report = BenchReport {
        scale: args.scale,
        rows,
        total_detailed_uops: total_uops,
        total_detailed_seconds,
        total_warm_instructions,
        total_warm_seconds,
        aggregate_detailed_uops_per_sec: aggregate_detailed,
        aggregate_warm_instructions_per_sec: aggregate_warm,
        aggregate_speed_ratio: aggregate_ratio,
        sweep_wall_seconds: sweep_started.elapsed().as_secs_f64(),
    };
    save(&args.out_dir, "BENCH_sample", &report)
}
