//! `experiments serve` — the simulation job service.
//!
//! Wraps the deterministic simulator in a [`regshare_serve::JobExecutor`]
//! and runs the supervised service from `crates/serve` on top of it:
//! HTTP job intake with backpressure, per-attempt deadlines wired to the
//! pipeline's cooperative [`CancelToken`], retries, panic isolation, a
//! verified result cache, and journal-replay crash recovery. `experiments
//! submit` (and `ci/serve_smoke.sh`) are the matching clients.
//!
//! A job payload selects one simulation point:
//!
//! ```json
//! {"kernel": "saxpy", "scheme": "proposed", "rf": 64, "scale": 20000}
//! ```
//!
//! and the result is a JSON row of the report's *deterministic* fields
//! only — wall-clock numbers are deliberately excluded so a cached
//! result is byte-identical to a recomputed one, which is what lets the
//! cache be verified at all.

use super::common::{Args, ExpError};
use crate::harness::{experiment_config, renamer_for, swept_class, Scheme};
use crate::sim::{CancelToken, Pipeline, SimReport};
use crate::workloads::{all_kernels, Kernel};
use regshare_serve::{install_signal_handlers, JobExecutor, ServeConfig, Server};
use serde::Value;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Bump when the simulator or the result schema changes in any way that
/// could alter result bytes: the version is folded into every cache
/// key, so stale entries become unreachable instead of wrong.
pub const SIM_SERVICE_VERSION: &str = "regshare-sim-v1";

/// The [`JobExecutor`] that runs one deterministic simulation point per
/// job.
pub struct SimExecutor;

fn kernel_by_name(name: &str) -> Result<Kernel, String> {
    all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .ok_or_else(|| {
            let known: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
            format!("unknown kernel {name:?} (known: {})", known.join(", "))
        })
}

fn scheme_by_name(name: &str) -> Result<Scheme, String> {
    match name {
        "baseline" => Ok(Scheme::Baseline),
        "proposed" => Ok(Scheme::Proposed),
        other => Err(format!(
            "unknown scheme {other:?} (known: baseline, proposed)"
        )),
    }
}

/// The deterministic result row: every field is a pure function of the
/// payload, so recomputation reproduces cached bytes exactly.
fn report_row(payload: &Value, report: &SimReport) -> Value {
    Value::Object(vec![
        ("spec".to_string(), payload.clone()),
        ("cycles".to_string(), Value::UInt(report.cycles)),
        (
            "committed_instructions".to_string(),
            Value::UInt(report.committed_instructions),
        ),
        (
            "committed_uops".to_string(),
            Value::UInt(report.committed_uops),
        ),
        ("ipc".to_string(), Value::Float(report.ipc())),
        ("halted".to_string(), Value::Bool(report.halted)),
        ("mispredicts".to_string(), Value::UInt(report.mispredicts)),
        ("exceptions".to_string(), Value::UInt(report.exceptions)),
        (
            "rename_stall_cycles".to_string(),
            Value::UInt(report.rename_stall_cycles),
        ),
        (
            "reuse_fraction".to_string(),
            Value::Float(report.rename.reuse_fraction()),
        ),
    ])
}

impl JobExecutor for SimExecutor {
    fn version(&self) -> String {
        SIM_SERVICE_VERSION.to_string()
    }

    /// Runs one simulation point. The service's deadline reaper owns
    /// the `cancel` flag; it is threaded into the pipeline driver loop
    /// as a [`CancelToken`], so a runaway simulation stops at the next
    /// check interval instead of pinning a worker forever.
    fn run(&self, payload: &Value, cancel: &Arc<AtomicBool>) -> Result<String, String> {
        let kernel_name = payload
            .get("kernel")
            .and_then(Value::as_str)
            .ok_or("payload missing \"kernel\"")?;
        let scheme_name = payload
            .get("scheme")
            .and_then(Value::as_str)
            .ok_or("payload missing \"scheme\"")?;
        let rf = payload
            .get("rf")
            .and_then(Value::as_u64)
            .ok_or("payload missing \"rf\"")? as usize;
        let scale = payload
            .get("scale")
            .and_then(Value::as_u64)
            .ok_or("payload missing \"scale\"")?;
        let kernel = kernel_by_name(kernel_name)?;
        let scheme = scheme_by_name(scheme_name)?;
        if !(16..=512).contains(&rf) {
            return Err(format!("rf {rf} out of range [16, 512]"));
        }

        let program = kernel.program(scale);
        let renamer = renamer_for(scheme, rf, swept_class(kernel.suite));
        let mut sim = Pipeline::new(program, renamer, experiment_config(scale));
        sim.set_cancel(CancelToken::from_flag(Arc::clone(cancel)));
        let report = sim
            .run()
            .map_err(|e| format!("{kernel_name} ({scheme_name}, {rf} regs): {e}"))?;
        serde_json::to_string(&report_row(payload, &report))
            .map_err(|e| format!("serialize report row: {e}"))
    }
}

/// The service configuration `experiments serve` and the tests share:
/// worker count from `--workers`, state under `--data-dir`.
pub(crate) fn service_config(args: &Args) -> ServeConfig {
    ServeConfig {
        addr: format!("127.0.0.1:{}", args.port),
        workers: args
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(2)
            })
            .max(1),
        queue_capacity: 256,
        max_attempts: 3,
        deadline: Duration::from_secs(120),
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_secs(2),
        data_dir: args.data_dir.clone().into(),
    }
}

/// Runs the service until SIGTERM/SIGINT or `POST /shutdown`, then
/// drains and exits. Queued-but-unfinished jobs stay journaled and are
/// replayed by the next start.
pub fn run(args: &Args) -> Result<(), ExpError> {
    install_signal_handlers();
    let config = service_config(args);
    let data_dir = config.data_dir.display().to_string();
    let workers = config.workers;
    let server = Server::start(config, Arc::new(SimExecutor)).map_err(|e| ExpError::Serve {
        detail: format!("start service: {e}"),
    })?;
    println!(
        "== regshare job service ==\n\
         listening on 127.0.0.1:{} ({workers} workers, state in {data_dir})\n\
         endpoints: POST /jobs, GET /jobs/<id>, GET /healthz, GET /stats, POST /shutdown\n\
         recovered {} journaled job(s); SIGTERM or POST /shutdown drains and exits",
        server.port(),
        server.recovered_jobs(),
    );
    server.run_until_signalled();
    println!("drained; journal and cache left in {data_dir}");
    Ok(())
}
