//! SMT frontier: per-thread IPC, aggregate throughput, and iso-area
//! register-file pressure for {1,2,4} hardware threads × {2,4,8}-wide
//! cores, baseline renaming vs the proposed sharing scheme.
//!
//! Each matrix point sizes the baseline file by
//! [`area::smt_baseline_regs`] (one architectural copy per thread plus a
//! width-scaled speculative window), ports by [`area::ports_for_width`],
//! and gives the proposed scheme the equal-area bank split for that
//! budget. Multi-threaded points fetch under the ICOUNT policy and run
//! one kernel per hardware thread from a fixed mixed-suite lineup, so
//! the rows answer the paper's open question directly: does the ~10.5%
//! iso-area reduction survive when 2–4 threads share one physical file?

use super::common::{save, Args, ExpError};
use crate::area;
use crate::core::{BankConfig, BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use crate::harness::{par_map, Scheme};
use crate::sim::{FetchPolicyKind, Pipeline, SimConfig, SimReport};
use crate::stats::Table;
use crate::workloads::{all_kernels, Kernel};
use serde::Serialize;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const WIDTHS: [usize; 3] = [2, 4, 8];
/// Thread `t` of an `n`-thread point runs `MIX[t]` — a fixed
/// mixed-suite lineup (fp, fp, int, fp) so co-scheduled threads stress
/// both register classes.
const MIX: [&str; 4] = ["saxpy", "fft", "hashjoin", "dct"];

/// One simulated point of the frontier matrix.
#[derive(Serialize)]
struct SmtRow {
    threads: usize,
    width: usize,
    scheme: String,
    kernels: Vec<String>,
    /// Physical registers per class actually instantiated.
    regs_per_class: usize,
    /// Iso-area register savings vs the baseline budget (0 for baseline
    /// rows; can dip when the architectural floor forces a larger file).
    rf_reduction_pct: f64,
    cycles: u64,
    committed_instructions: u64,
    aggregate_ipc: f64,
    per_thread_ipc: Vec<f64>,
    /// Fraction of destination renames served by register reuse
    /// (single-use sharing successes; 0 for the baseline).
    single_use_fraction: f64,
    rename_stalls: u64,
}

/// The committed artifact: the full matrix plus the headline verdict.
#[derive(Serialize)]
struct SmtFrontier {
    scale: u64,
    /// The paper's single-thread iso-area register-file reduction (§VI).
    paper_rf_reduction_pct: f64,
    rows: Vec<SmtRow>,
    verdict: String,
}

fn kernel(name: &str) -> Kernel {
    all_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("smt mix kernel {name} is not in the workload suite"))
}

/// Equal-area bank split for the proposed scheme, floored so the shared
/// file can always hold every thread's architectural state (the rename
/// tables pin 32 registers per thread per class) with a little renaming
/// headroom. A floored point is exactly the SMT-pressure signal the
/// frontier exists to expose: its `rf_reduction_pct` shrinks below the
/// pure iso-area solution.
fn proposed_banks(r_base: usize, ports: area::RegFilePorts, threads: usize) -> BankConfig {
    let banks = area::equal_area_config(r_base, ports);
    let floor = 32 * threads + 16;
    if banks.total() >= floor {
        banks
    } else {
        let s = banks.sizes()[1];
        BankConfig::new(vec![floor - 3 * s, s, s, s])
    }
}

fn run_point(threads: usize, width: usize, scheme: Scheme, scale: u64) -> (usize, SimReport) {
    let r_base = area::smt_baseline_regs(threads, width);
    let ports = area::ports_for_width(width);
    let (renamer, regs): (Box<dyn Renamer>, usize) = match scheme {
        Scheme::Baseline => (
            Box::new(BaselineRenamer::new(
                RenamerConfig::baseline(r_base).with_threads(threads),
            )),
            r_base,
        ),
        Scheme::Proposed => {
            let banks = proposed_banks(r_base, ports, threads);
            let regs = banks.total();
            let config = RenamerConfig {
                int_banks: banks.clone(),
                fp_banks: banks,
                ..RenamerConfig::baseline(r_base)
            }
            .with_threads(threads);
            (Box::new(ReuseRenamer::new(config)), regs)
        }
    };
    let programs = MIX[..threads]
        .iter()
        .map(|name| kernel(name).program(scale))
        .collect();
    let mut config = SimConfig::default().with_width(width).with_threads(threads);
    config.fetch_policy = if threads > 1 {
        FetchPolicyKind::Icount
    } else {
        FetchPolicyKind::RoundRobin
    };
    let budget = scale * threads as u64;
    config.max_instructions = budget;
    // Floored SMT points run the shared file nearly at its architectural
    // minimum and crawl through rename stalls; the cap only needs to
    // catch true deadlock, so charge it generously.
    config.max_cycles = budget.saturating_mul(200).max(2_000_000);
    let mut sim = Pipeline::new_smt(programs, renamer, config)
        .unwrap_or_else(|e| panic!("smt t={threads} w={width} {}: {e}", scheme.label()));
    match sim.run() {
        Ok(report) => (regs, report),
        Err(e) => {
            let r = sim.report();
            panic!(
                "smt t={threads} w={width} {}: {e} (committed {:?} over {} cycles, \
                 rename stalls {})",
                scheme.label(),
                r.per_thread_committed,
                r.cycles,
                r.rename_stall_cycles
            )
        }
    }
}

/// Runs the frontier matrix and writes `smt_frontier.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== SMT frontier: threads x width under a shared physical register file ==");
    let mut points = Vec::new();
    for &threads in &THREAD_COUNTS {
        for &width in &WIDTHS {
            for scheme in [Scheme::Baseline, Scheme::Proposed] {
                points.push((threads, width, scheme));
            }
        }
    }
    let reports = par_map(&points, |&(threads, width, scheme)| {
        run_point(threads, width, scheme, args.scale)
    });
    let mut rows = Vec::new();
    for (&(threads, width, scheme), (regs, report)) in points.iter().zip(reports) {
        let r_base = area::smt_baseline_regs(threads, width);
        rows.push(SmtRow {
            threads,
            width,
            scheme: scheme.label().to_string(),
            kernels: MIX[..threads].iter().map(|s| s.to_string()).collect(),
            regs_per_class: regs,
            rf_reduction_pct: 100.0 * (r_base as f64 - regs as f64) / r_base as f64,
            cycles: report.cycles,
            committed_instructions: report.committed_instructions,
            aggregate_ipc: report.ipc(),
            per_thread_ipc: (0..threads).map(|t| report.per_thread_ipc(t)).collect(),
            single_use_fraction: report.rename.reuse_fraction(),
            rename_stalls: report.rename_stall_cycles,
        });
    }
    let verdict = verdict(&rows);
    let mut table = Table::with_headers(&[
        "threads",
        "width",
        "scheme",
        "regs",
        "rf-cut%",
        "agg IPC",
        "per-thread IPC",
        "reuse%",
    ]);
    for r in &rows {
        table.row(vec![
            r.threads.to_string(),
            r.width.to_string(),
            r.scheme.clone(),
            r.regs_per_class.to_string(),
            format!("{:.1}", r.rf_reduction_pct),
            format!("{:.3}", r.aggregate_ipc),
            r.per_thread_ipc
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>()
                .join("/"),
            format!("{:.1}", r.single_use_fraction * 100.0),
        ]);
    }
    print!("{table}");
    println!("verdict: {verdict}");
    let frontier = SmtFrontier {
        scale: args.scale,
        paper_rf_reduction_pct: 10.5,
        rows,
        verdict,
    };
    save(&args.out_dir, "smt_frontier", &frontier)
}

/// Condenses the matrix into the headline comparison against the
/// paper's single-thread result: the mean iso-area register cut and the
/// proposed scheme's IPC retention, at 1 thread vs the SMT points.
fn verdict(rows: &[SmtRow]) -> String {
    let stat = |threads_wanted: fn(usize) -> bool| {
        let mut cut = 0.0;
        let mut retention = 0.0;
        let mut n = 0usize;
        for p in rows.iter().filter(|r| r.scheme == "proposed") {
            if !threads_wanted(p.threads) {
                continue;
            }
            let base = rows
                .iter()
                .find(|r| r.scheme == "baseline" && r.threads == p.threads && r.width == p.width)
                .expect("every proposed point has a baseline twin");
            cut += p.rf_reduction_pct;
            retention += 100.0 * p.aggregate_ipc / base.aggregate_ipc;
            n += 1;
        }
        (cut / n as f64, retention / n as f64)
    };
    let (st_cut, st_ret) = stat(|t| t == 1);
    let (smt_cut, smt_ret) = stat(|t| t > 1);
    format!(
        "single-thread iso-area RF cut averages {st_cut:.1}% at {st_ret:.1}% of baseline IPC \
         (paper: 10.5%); under SMT the cut averages {smt_cut:.1}% at {smt_ret:.1}% of baseline \
         IPC — per-thread architectural state, not the speculative window, bounds the shared \
         file as threads scale"
    )
}
