//! Figure 12: register type predictor accuracy per suite.

use super::common::{pct, save, Args, ExpError};
use crate::harness::{par_map, run_kernel, Scheme};
use crate::stats::Table;
use crate::workloads::{suite_kernels, Suite};
use serde::Serialize;

#[derive(Serialize)]
struct Fig12Row {
    suite: String,
    reuse_correct_pct: f64,
    reuse_incorrect_pct: f64,
    noreuse_correct_pct: f64,
    noreuse_incorrect_pct: f64,
    accuracy_pct: f64,
}

/// Runs the predictor sweep and writes `fig12.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 12: register type predictor accuracy (at 64 regs) ==");
    let mut table = Table::with_headers(&[
        "suite",
        "reuse-correct",
        "reuse-incorrect",
        "noreuse-correct",
        "noreuse-incorrect",
        "accuracy",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let mut agg = crate::core::PredictorStats::default();
        let kernels = suite_kernels(suite);
        let stats = par_map(&kernels, |k| {
            run_kernel(k, Scheme::Proposed, 64, args.scale).predictor
        });
        for rep in stats {
            agg.reuse_correct += rep.reuse_correct;
            agg.reuse_incorrect += rep.reuse_incorrect;
            agg.noreuse_correct += rep.noreuse_correct;
            agg.noreuse_incorrect += rep.noreuse_incorrect;
        }
        let t = agg.total().max(1) as f64;
        table.row(vec![
            suite.label().into(),
            pct(agg.reuse_correct as f64 / t),
            pct(agg.reuse_incorrect as f64 / t),
            pct(agg.noreuse_correct as f64 / t),
            pct(agg.noreuse_incorrect as f64 / t),
            pct(agg.accuracy()),
        ]);
        rows.push(Fig12Row {
            suite: suite.label().into(),
            reuse_correct_pct: agg.reuse_correct as f64 / t * 100.0,
            reuse_incorrect_pct: agg.reuse_incorrect as f64 / t * 100.0,
            noreuse_correct_pct: agg.noreuse_correct as f64 / t * 100.0,
            noreuse_incorrect_pct: agg.noreuse_incorrect as f64 / t * 100.0,
            accuracy_pct: agg.accuracy() * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig12", &rows)
}
