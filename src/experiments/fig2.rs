//! Figure 2: distribution of consumer counts per produced value.

use super::common::{pct, save, Args, ExpError};
use crate::stats::Table;
use crate::workloads::{analysis, suite_kernels, Suite};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Row {
    suite: String,
    one: f64,
    two: f64,
    three: f64,
    four: f64,
    five: f64,
    six_plus: f64,
    zero: f64,
}

/// Runs the experiment and writes `fig2.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 2: consumers per produced value ==");
    let mut table = Table::with_headers(&["suite", "1", "2", "3", "4", "5", "6+", "(0)"]);
    table.numeric();
    let mut rows = Vec::new();
    for suite in Suite::ALL {
        let mut hist = crate::stats::Histogram::new("consumers", 6);
        for k in suite_kernels(suite) {
            let p = analysis::analyze(&k.program(args.scale), args.scale);
            hist.merge(&p.consumers);
        }
        let f = |v: u64| hist.fraction(v);
        table.row(vec![
            suite.label().into(),
            pct(f(1)),
            pct(f(2)),
            pct(f(3)),
            pct(f(4)),
            pct(f(5)),
            pct(hist.overflow_fraction() + f(6)),
            pct(f(0)),
        ]);
        rows.push(Fig2Row {
            suite: suite.label().into(),
            one: f(1) * 100.0,
            two: f(2) * 100.0,
            three: f(3) * 100.0,
            four: f(4) * 100.0,
            five: f(5) * 100.0,
            six_plus: (hist.overflow_fraction() + f(6)) * 100.0,
            zero: f(0) * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig2", &rows)
}
