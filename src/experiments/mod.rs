//! The paper's evaluation as a library: one module per experiment
//! subcommand, a shared [`Args`] options struct, and the [`registry`]
//! the `experiments` binary dispatches through.
//!
//! Each subcommand module exposes `run(&Args)`, prints its table, and
//! writes machine-readable rows to `<out_dir>/<name>.json`. The binary
//! in `src/bin/experiments.rs` is a thin CLI: it parses flags into
//! [`Args`] and walks the registry.

mod ablate;
mod ablate_banks;
mod ablate_counter;
mod ablate_predictor;
mod ablate_speculation;
mod analyze;
mod bench;
mod common;
mod fig1;
mod fig10;
mod fig10ec;
mod fig11;
mod fig12;
mod fig2;
mod fig3;
mod fig9;
mod hints;
mod inject;
mod profile;
mod sample;
mod serve;
mod shape;
mod smt;
mod submit;
mod sweeps;
mod table1;
mod table2;
mod table3;

pub use common::{die, write_json_atomic, Args, ExpError, RF_SIZES};
pub use serve::SimExecutor;

/// An experiment entry point. Harness failures (result-file I/O, the
/// job service) surface as [`ExpError`] values; the binary prints them
/// and exits non-zero.
pub type ExperimentFn = fn(&Args) -> Result<(), ExpError>;

/// Every experiment in canonical order — `all` runs them in exactly
/// this sequence, so the registry order is part of the reproducibility
/// contract.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("fig1", fig1::run),
        ("fig2", fig2::run),
        ("fig3", fig3::run),
        ("table1", table1::run),
        ("table2", table2::run),
        ("table3", table3::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig10ec", fig10ec::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("analyze", analyze::run),
        ("hints", hints::run),
        ("ablate-counter", ablate_counter::run),
        ("ablate-speculation", ablate_speculation::run),
        ("ablate-predictor", ablate_predictor::run),
        ("ablate-banks", ablate_banks::run),
        ("inject", inject::run),
        ("smt", smt::run),
        // Host-time attribution: wall-clock payload, so `all` skips it
        // (same contract as `bench`).
        ("profile", profile::run),
        // Two-speed engine: the sampled registry `all --sample` runs.
        ("sample", sample::run),
        ("shape", shape::run),
        ("bench", bench::run),
        // Job service: `serve` blocks on a listener and `submit` talks
        // to one, so `all` skips both (like the sampled trio).
        ("serve", serve::run),
        ("submit", submit::run),
    ]
}
