//! Cycle-attribution profile: where a detailed-mode host-second goes,
//! per stage, plus heap-allocation counts — written to `profile.json`.
//!
//! Runs every kernel once with [`crate::sim::SimConfig::profile`] set,
//! which turns on the per-stage wall-clock lap timer inside
//! `Pipeline::step` (the deterministic work counters are always on).
//! Allocation counts are read from [`crate::alloc_track`]; they are
//! meaningful when the binary installs [`crate::CountingAlloc`] (the
//! `experiments` binary does) and read as zero otherwise.
//!
//! Like `bench`, this report's payload is host wall-clock, so `all` —
//! which promises bit-identical output — never includes it.

use super::common::{save, Args, ExpError};
use crate::alloc_track;
use crate::harness::{experiment_config, renamer_for, run_kernel_with, swept_class, Scheme};
use crate::sim::{StageProfile, NUM_STAGE_SLOTS, STAGE_SLOT_NAMES};
use crate::stats::Table;
use crate::workloads::all_kernels;
use serde::Serialize;

/// Swept-file size for the measurement (matches `bench`).
const RF_REGS: usize = 64;

/// Detailed-mode instruction budget per kernel: attribution stabilizes
/// well within this, so the profile stays cheap at paper scales.
const DETAILED_CAP: u64 = 200_000;

#[derive(Serialize)]
struct ProfileRow {
    kernel: String,
    suite: String,
    cycles: u64,
    committed_uops: u64,
    /// Detailed-mode throughput for this kernel (committed uops per
    /// host second — the "MIPS" the perf work is judged on).
    uops_per_sec: f64,
    /// Deterministic work units per stage, keyed by stage name.
    stage_work: Vec<(String, u64)>,
    /// Host nanoseconds per stage, keyed by stage name.
    stage_nanos: Vec<(String, u64)>,
    /// Fraction of attributed time per stage, keyed by stage name.
    stage_share: Vec<(String, f64)>,
    /// Heap allocations during this kernel's run (0 without the
    /// counting allocator installed).
    allocations: u64,
    /// Bytes requested from the heap during this kernel's run.
    allocated_bytes: u64,
    /// Allocations per 1000 simulated cycles — the zero-alloc-tick
    /// scorecard (setup allocations amortize toward 0 as scale grows).
    allocs_per_kcycle: f64,
}

#[derive(Serialize)]
struct ProfileReport {
    scale: u64,
    /// Whether the run binary had the counting allocator installed.
    alloc_counted: bool,
    rows: Vec<ProfileRow>,
    /// Host nanoseconds per stage summed over all kernels.
    total_stage_nanos: Vec<(String, u64)>,
    /// Fraction of total attributed time per stage.
    total_stage_share: Vec<(String, f64)>,
    aggregate_uops_per_sec: f64,
    total_allocations: u64,
}

fn keyed<T: Copy>(values: &[T; NUM_STAGE_SLOTS]) -> Vec<(String, T)> {
    STAGE_SLOT_NAMES
        .iter()
        .zip(values.iter())
        .map(|(n, v)| (n.to_string(), *v))
        .collect()
}

/// Runs the per-stage attribution sweep and writes `profile.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let scale = args.scale.min(DETAILED_CAP);
    println!("== Cycle attribution: per-stage host time at {scale} instructions ==");
    let alloc_base = alloc_track::allocations();
    let mut table = Table::with_headers(&[
        "kernel",
        "uops/s",
        "top stage",
        "share",
        "allocs",
        "allocs/kcycle",
    ]);
    table.numeric();
    let mut rows = Vec::new();
    let mut total_nanos = [0u64; NUM_STAGE_SLOTS];
    let mut total_uops = 0u64;
    let mut total_seconds = 0.0;
    let mut total_allocations = 0u64;
    for k in all_kernels() {
        let renamer = renamer_for(Scheme::Proposed, RF_REGS, swept_class(k.suite));
        let config = crate::sim::SimConfig {
            profile: true,
            ..experiment_config(scale)
        };
        let allocs_before = alloc_track::allocations();
        let bytes_before = alloc_track::allocated_bytes();
        let report = run_kernel_with(&k, renamer, config, scale);
        let allocations = alloc_track::allocations() - allocs_before;
        let allocated_bytes = alloc_track::allocated_bytes() - bytes_before;
        let p: &StageProfile = &report.profile;
        let (top_idx, _) = p
            .nanos
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| **n)
            .unwrap_or((0, &0));
        let allocs_per_kcycle = allocations as f64 * 1000.0 / report.cycles.max(1) as f64;
        table.row(vec![
            k.name.into(),
            format!("{:.0}", report.uops_per_second()),
            STAGE_SLOT_NAMES[top_idx].into(),
            format!(
                "{:.1}%",
                100.0 * p.nanos[top_idx] as f64 / p.total_nanos().max(1) as f64
            ),
            allocations.to_string(),
            format!("{allocs_per_kcycle:.2}"),
        ]);
        for (t, n) in total_nanos.iter_mut().zip(p.nanos.iter()) {
            *t += n;
        }
        total_uops += report.committed_uops;
        total_seconds += report.wall_seconds;
        total_allocations += allocations;
        let shares: [f64; NUM_STAGE_SLOTS] =
            std::array::from_fn(|i| p.nanos[i] as f64 / p.total_nanos().max(1) as f64);
        rows.push(ProfileRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            cycles: report.cycles,
            committed_uops: report.committed_uops,
            uops_per_sec: report.uops_per_second(),
            stage_work: keyed(&p.work),
            stage_nanos: keyed(&p.nanos),
            stage_share: keyed(&shares),
            allocations,
            allocated_bytes,
            allocs_per_kcycle,
        });
    }
    let grand_total: u64 = total_nanos.iter().sum();
    let total_shares: [f64; NUM_STAGE_SLOTS] =
        std::array::from_fn(|i| total_nanos[i] as f64 / grand_total.max(1) as f64);
    let aggregate = total_uops as f64 / total_seconds.max(1e-12);
    let mut totals = Table::with_headers(&["stage", "nanos", "share"]);
    totals.numeric();
    for i in 0..NUM_STAGE_SLOTS {
        totals.row(vec![
            STAGE_SLOT_NAMES[i].into(),
            total_nanos[i].to_string(),
            format!("{:.1}%", 100.0 * total_shares[i]),
        ]);
    }
    print!("{table}");
    print!("{totals}");
    println!("aggregate: {aggregate:.0} uops/s, {total_allocations} allocations");
    let report = ProfileReport {
        scale,
        alloc_counted: alloc_track::allocations() > alloc_base,
        rows,
        total_stage_nanos: keyed(&total_nanos),
        total_stage_share: keyed(&total_shares),
        aggregate_uops_per_sec: aggregate,
        total_allocations,
    };
    save(&args.out_dir, "profile", &report)
}
