//! Shared plumbing for the experiment subcommands: the parsed CLI
//! options, result persistence, and small formatting helpers.
//!
//! Result files are written through [`write_json_atomic`] — temp file +
//! atomic rename — so a killed run leaves either the previous artifact
//! or the new one, never a torn half-file. I/O and serialization
//! failures surface as [`ExpError`] values naming the offending path,
//! in the same structured-diagnostic discipline `SimError` brought to
//! the pipeline.

use regshare_stats::SamplePlan;
use serde::Serialize;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// A structured experiment-harness failure. Every variant names the
/// artifact involved so a failing batch run is diagnosable from the
/// message alone.
#[derive(Debug)]
pub enum ExpError {
    /// Creating the results directory failed.
    CreateDir {
        /// The directory being created.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Writing (or renaming into place) a results file failed.
    WriteFile {
        /// The destination path.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// JSON serialization of result rows failed.
    Serialize {
        /// What was being serialized (the results file it was bound for).
        what: String,
        /// The serializer's diagnostic.
        detail: String,
    },
    /// The job service (or its client) failed.
    Serve {
        /// The service diagnostic.
        detail: String,
    },
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::CreateDir { path, source } => {
                write!(f, "create results directory {path}: {source}")
            }
            ExpError::WriteFile { path, source } => {
                write!(f, "write results file {path}: {source}")
            }
            ExpError::Serialize { what, detail } => {
                write!(f, "serialize rows for {what}: {detail}")
            }
            ExpError::Serve { detail } => write!(f, "job service: {detail}"),
        }
    }
}

impl std::error::Error for ExpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExpError::CreateDir { source, .. } | ExpError::WriteFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The baseline register-file sizes every sweep walks (§VI-B).
pub const RF_SIZES: [usize; 7] = [48, 56, 64, 72, 80, 96, 112];

/// Default detailed-warmup instructions per sampled window.
pub const DEFAULT_WARMUP: u64 = 2_000;

/// Default measured instructions per sampled window.
pub const DEFAULT_MEASURE: u64 = 10_000;

/// Options shared by every experiment, parsed once by the CLI front end.
pub struct Args {
    /// Experiment names to run, in request order (`all` expands to the
    /// full registry).
    pub exps: Vec<String>,
    /// Instruction budget per simulation point.
    pub scale: u64,
    /// Directory the per-experiment JSON rows are written to.
    pub out_dir: String,
    /// Number of fault-injection campaigns (`inject`).
    pub campaigns: usize,
    /// Base seed for fault-injection schedules (`inject`).
    pub seed: u64,
    /// Kernel subset for `inject` (`None` = all kernels).
    pub kernels: Option<Vec<String>>,
    /// Run through the two-speed sampled engine (`all` then dispatches
    /// the reduced sampled registry).
    pub sample: bool,
    /// Worker threads for time-parallel window slicing (`None` = one per
    /// core; results are identical either way).
    pub workers: Option<usize>,
    /// Override: instructions between sampled-window starts.
    pub period: Option<u64>,
    /// Override: detailed warmup instructions per window.
    pub warmup: Option<u64>,
    /// Override: measured instructions per window.
    pub measure: Option<u64>,
    /// Job-service port: the bind port for `serve` (0 = ephemeral,
    /// printed at startup), the target port for `submit`.
    pub port: u16,
    /// Job-service state directory (journal + result cache) for `serve`.
    pub data_dir: String,
}

impl Args {
    /// The sampling plan at a given instruction budget: defaults scale
    /// the period so a run gets ~50 windows, floored so windows never
    /// overlap and short smoke runs still get a handful of observations.
    pub fn sample_plan(&self, scale: u64) -> SamplePlan {
        let warmup = self.warmup.unwrap_or(DEFAULT_WARMUP);
        let measure = self.measure.unwrap_or(DEFAULT_MEASURE);
        let period = self
            .period
            .unwrap_or_else(|| (scale / 50).max(warmup + measure));
        SamplePlan::new(period, warmup, measure)
    }
}

/// Prints `msg` as an error and exits with status 2.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Writes `text` to `path` through a sibling temp file and an atomic
/// rename: concurrent readers (and crashes mid-write) see either the
/// old contents or the new, never a torn file.
pub fn write_json_atomic(path: &Path, text: &str) -> Result<(), ExpError> {
    let shown = path.display().to_string();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|source| ExpError::CreateDir {
                path: parent.display().to_string(),
                source,
            })?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let write = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()
    };
    write(&tmp).map_err(|source| ExpError::WriteFile {
        path: tmp.display().to_string(),
        source,
    })?;
    std::fs::rename(&tmp, path).map_err(|source| ExpError::WriteFile {
        path: shown,
        source,
    })
}

/// Writes one experiment's rows to `<out_dir>/<name>.json` (atomically;
/// see [`write_json_atomic`]).
pub(crate) fn save<T: Serialize>(out_dir: &str, name: &str, rows: &T) -> Result<(), ExpError> {
    let path = format!("{out_dir}/{name}.json");
    let json = serde_json::to_string_pretty(rows).map_err(|e| ExpError::Serialize {
        what: path.clone(),
        detail: e.to_string(),
    })?;
    write_json_atomic(Path::new(&path), &json)?;
    println!("  -> {path}\n");
    Ok(())
}

pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

pub(crate) fn ratio_pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}
