//! Shared plumbing for the experiment subcommands: the parsed CLI
//! options, result persistence, and small formatting helpers.

use regshare_stats::SamplePlan;
use serde::Serialize;

/// The baseline register-file sizes every sweep walks (§VI-B).
pub const RF_SIZES: [usize; 7] = [48, 56, 64, 72, 80, 96, 112];

/// Default detailed-warmup instructions per sampled window.
pub const DEFAULT_WARMUP: u64 = 2_000;

/// Default measured instructions per sampled window.
pub const DEFAULT_MEASURE: u64 = 10_000;

/// Options shared by every experiment, parsed once by the CLI front end.
pub struct Args {
    /// Experiment names to run, in request order (`all` expands to the
    /// full registry).
    pub exps: Vec<String>,
    /// Instruction budget per simulation point.
    pub scale: u64,
    /// Directory the per-experiment JSON rows are written to.
    pub out_dir: String,
    /// Number of fault-injection campaigns (`inject`).
    pub campaigns: usize,
    /// Base seed for fault-injection schedules (`inject`).
    pub seed: u64,
    /// Kernel subset for `inject` (`None` = all kernels).
    pub kernels: Option<Vec<String>>,
    /// Run through the two-speed sampled engine (`all` then dispatches
    /// the reduced sampled registry).
    pub sample: bool,
    /// Worker threads for time-parallel window slicing (`None` = one per
    /// core; results are identical either way).
    pub workers: Option<usize>,
    /// Override: instructions between sampled-window starts.
    pub period: Option<u64>,
    /// Override: detailed warmup instructions per window.
    pub warmup: Option<u64>,
    /// Override: measured instructions per window.
    pub measure: Option<u64>,
}

impl Args {
    /// The sampling plan at a given instruction budget: defaults scale
    /// the period so a run gets ~50 windows, floored so windows never
    /// overlap and short smoke runs still get a handful of observations.
    pub fn sample_plan(&self, scale: u64) -> SamplePlan {
        let warmup = self.warmup.unwrap_or(DEFAULT_WARMUP);
        let measure = self.measure.unwrap_or(DEFAULT_MEASURE);
        let period = self
            .period
            .unwrap_or_else(|| (scale / 50).max(warmup + measure));
        SamplePlan::new(period, warmup, measure)
    }
}

/// Prints `msg` as an error and exits with status 2.
pub fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Writes one experiment's rows to `<out_dir>/<name>.json`.
pub(crate) fn save<T: Serialize>(out_dir: &str, name: &str, rows: &T) {
    std::fs::create_dir_all(out_dir).expect("create results directory");
    let path = format!("{out_dir}/{name}.json");
    let json = serde_json::to_string_pretty(rows).expect("results serialize");
    std::fs::write(&path, json).expect("write results file");
    println!("  -> {path}\n");
}

pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

pub(crate) fn ratio_pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}
