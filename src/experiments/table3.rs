//! Table III: equal-area register-file configurations, paper row vs the
//! crate's own solver.

use super::common::{save, Args, ExpError, RF_SIZES};
use crate::area;
use crate::core::BankConfig;
use crate::stats::Table;
use serde::Serialize;

#[derive(Serialize)]
struct Table3Row {
    baseline_regs: usize,
    paper_banks: Vec<usize>,
    solver_banks: Vec<usize>,
}

/// Prints the configuration table and writes `table3.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Table III: equal-area register file configurations ==");
    let ports = area::RegFilePorts::default();
    let mut table = Table::with_headers(&["baseline", "paper (0/1/2/3-sh)", "our solver"]);
    let mut rows = Vec::new();
    for n in RF_SIZES {
        let paper = BankConfig::paper_row(n);
        let solved = area::equal_area_config(n, ports);
        table.row(vec![
            n.to_string(),
            format!("{:?}", paper.sizes()),
            format!("{:?}", solved.sizes()),
        ]);
        rows.push(Table3Row {
            baseline_regs: n,
            paper_banks: paper.sizes().to_vec(),
            solver_banks: solved.sizes().to_vec(),
        });
    }
    print!("{table}");
    save(&args.out_dir, "table3", &rows)
}
