//! Ablation: speculative (non-redefining) reuse on vs safe reuses only.

use super::ablate::{ablate, renamer_with_spec};
use super::common::{Args, ExpError};
use crate::core::BankConfig;
use crate::isa::RegClass;

/// Runs the ablation and writes `ablate_speculation.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    let settings = [
        ("safe reuses only", false),
        ("with speculation (paper)", true),
    ]
    .into_iter()
    .map(|(label, spec)| {
        (label.to_string(), move |swept: RegClass| {
            let banks = BankConfig::new(vec![52, 4, 4, 4]);
            renamer_with_spec(swept, banks, 2, 512, spec)
        })
    })
    .collect();
    ablate(
        args,
        "ablate_speculation",
        "== Ablation: speculative (non-redefining) reuse, §IV-A2 (equal count, 64 regs) ==",
        settings,
    )
}
