//! Figure 10: equal-area speedup over the baseline across register-file
//! sizes.

use super::common::{Args, ExpError};
use super::sweeps::speedup_sweep;

/// Runs the sweep and writes `fig10.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    speedup_sweep(
        args,
        "fig10",
        "== Figure 10: equal-area speedup vs baseline, per register file size ==",
        false,
    )
}
