//! Figure 3: reuse potential under bounded sharing-chain lengths.

use super::common::{pct, save, Args, ExpError};
use crate::stats::Table;
use crate::workloads::{all_kernels, analysis};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Row {
    kernel: String,
    suite: String,
    one_reuse: f64,
    two_reuses: f64,
    three_reuses: f64,
    unlimited: f64,
}

/// Runs the experiment and writes `fig3.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 3: reuse potential for chain limits 1/2/3/unlimited ==");
    let mut table = Table::with_headers(&["kernel", "suite", "<=1", "<=2", "<=3", "unlimited"]);
    table.numeric();
    let mut rows = Vec::new();
    for k in all_kernels() {
        let p = k.program(args.scale);
        let vals: Vec<f64> = [1, 2, 3, u64::MAX]
            .iter()
            .map(|lim| analysis::reuse_potential(&p, args.scale, *lim))
            .collect();
        table.row(vec![
            k.name.into(),
            k.suite.label().into(),
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            pct(vals[3]),
        ]);
        rows.push(Fig3Row {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            one_reuse: vals[0] * 100.0,
            two_reuses: vals[1] * 100.0,
            three_reuses: vals[2] * 100.0,
            unlimited: vals[3] * 100.0,
        });
    }
    print!("{table}");
    save(&args.out_dir, "fig3", &rows)
}
