//! Figure 11: average IPC versus register-file size for the baseline,
//! both proposed configurations, and the early-release comparator.

use super::common::{save, Args, ExpError, RF_SIZES};
use super::sweeps::{early_release_renamer, equal_count_renamer};
use crate::harness::{
    experiment_config, par_map, run_kernel, run_kernel_with, swept_class, Scheme,
};
use crate::stats::Table;
use crate::workloads::all_kernels;
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Row {
    rf_regs: usize,
    baseline_ipc: f64,
    proposed_equal_area_ipc: f64,
    proposed_equal_count_ipc: f64,
    early_release_ipc: f64,
}

/// Runs the four-scheme sweep and writes `fig11.json`.
pub fn run(args: &Args) -> Result<(), ExpError> {
    println!("== Figure 11: average IPC vs register file size ==");
    let kernels = all_kernels();
    let points: Vec<(usize, crate::workloads::Kernel)> = RF_SIZES
        .into_iter()
        .flat_map(|rf| kernels.iter().map(move |k| (rf, *k)))
        .collect();
    // One point = all four schemes on one (size, kernel) pair; par_map
    // keeps sweep order, so the per-size averages see the kernels in the
    // same order (identical floating-point sums) as the serial loop.
    let ipcs = par_map(&points, |&(rf, ref k)| {
        let swept = swept_class(k.suite);
        (
            run_kernel(k, Scheme::Baseline, rf, args.scale).ipc(),
            run_kernel(k, Scheme::Proposed, rf, args.scale).ipc(),
            run_kernel_with(
                k,
                equal_count_renamer(rf, swept),
                experiment_config(args.scale),
                args.scale,
            )
            .ipc(),
            run_kernel_with(
                k,
                early_release_renamer(rf, swept),
                experiment_config(args.scale),
                args.scale,
            )
            .ipc(),
        )
    });
    let mut rows = Vec::new();
    for (i, rf) in RF_SIZES.into_iter().enumerate() {
        let chunk = &ipcs[i * kernels.len()..(i + 1) * kernels.len()];
        let col =
            |sel: fn(&(f64, f64, f64, f64)) -> f64| -> Vec<f64> { chunk.iter().map(sel).collect() };
        rows.push(Fig11Row {
            rf_regs: rf,
            baseline_ipc: crate::stats::mean(&col(|t| t.0)),
            proposed_equal_area_ipc: crate::stats::mean(&col(|t| t.1)),
            proposed_equal_count_ipc: crate::stats::mean(&col(|t| t.2)),
            early_release_ipc: crate::stats::mean(&col(|t| t.3)),
        });
    }
    let mut table = Table::with_headers(&[
        "regs",
        "baseline IPC",
        "proposed (equal area)",
        "proposed (equal count)",
        "early release (§VII)",
    ]);
    table.numeric();
    for r in &rows {
        table.row(vec![
            r.rf_regs.to_string(),
            format!("{:.4}", r.baseline_ipc),
            format!("{:.4}", r.proposed_equal_area_ipc),
            format!("{:.4}", r.proposed_equal_count_ipc),
            format!("{:.4}", r.early_release_ipc),
        ]);
    }
    print!("{table}");
    // Register-savings estimate: for each baseline size, the smallest
    // proposed equal-count configuration that matches its IPC.
    for target in &rows {
        for r in &rows {
            if r.rf_regs < target.rf_regs
                && r.proposed_equal_count_ipc >= target.baseline_ipc * 0.999
            {
                println!(
                    "proposed scheme matches baseline-{} IPC with {} registers ({:.1}% fewer)",
                    target.rf_regs,
                    r.rf_regs,
                    (1.0 - r.rf_regs as f64 / target.rf_regs as f64) * 100.0
                );
                break;
            }
        }
    }
    save(&args.out_dir, "fig11", &rows)
}
