//! The shared IPC-sweep harness and comparator renamers used by the
//! figure 10/10-EC/11 subcommands.

use super::common::{save, Args, ExpError, RF_SIZES};
use crate::core::{
    BankConfig, EarlyReleaseRenamer, HintPolicy, Renamer, RenamerConfig, ReuseRenamer,
};
use crate::harness::{
    experiment_config, par_map, run_kernel, run_kernel_with, swept_class, Scheme, FIXED_RF,
};
use crate::isa::RegClass;
use crate::stats::{geomean, Table};
use crate::workloads::{all_kernels, Suite};
use serde::Serialize;

#[derive(Serialize)]
pub(crate) struct SpeedupRow {
    pub(crate) kernel: String,
    pub(crate) suite: String,
    pub(crate) rf_regs: usize,
    pub(crate) baseline_ipc: f64,
    pub(crate) proposed_ipc: f64,
    pub(crate) speedup: f64,
    pub(crate) reuse_pct: f64,
}

/// Proposed-scheme renamer at the same register *count* as the baseline
/// (mechanism benefit without the equal-area discount).
pub(crate) fn equal_count_renamer(rf_regs: usize, swept: RegClass) -> Box<dyn Renamer> {
    let swept_banks = BankConfig::new(vec![rf_regs - 12, 4, 4, 4]);
    let fixed = BankConfig::conventional(FIXED_RF);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        counter_bits: 2,
        predictor_entries: 512,
        predictor_bits: 2,
        speculative_reuse: true,
        hint_policy: HintPolicy::DynamicOnly,
        threads: 1,
    }))
}

/// The Moudgill/Monreal-style early-release comparator (related work,
/// §VII) at the same register count as the baseline.
pub(crate) fn early_release_renamer(rf_regs: usize, swept: RegClass) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(FIXED_RF);
    let swept_banks = BankConfig::conventional(rf_regs);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(EarlyReleaseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::baseline(rf_regs)
    }))
}

pub(crate) fn speedup_sweep(
    args: &Args,
    name: &str,
    title: &str,
    equal_count: bool,
) -> Result<(), ExpError> {
    println!("{title}");
    // Every (kernel, size) point is independent; fan out across cores
    // and collect rows back in sweep order.
    let points: Vec<(crate::workloads::Kernel, usize)> = all_kernels()
        .into_iter()
        .flat_map(|k| RF_SIZES.into_iter().map(move |rf| (k, rf)))
        .collect();
    let rows: Vec<SpeedupRow> = par_map(&points, |&(ref k, rf)| {
        let base = run_kernel(k, Scheme::Baseline, rf, args.scale);
        let prop = if equal_count {
            run_kernel_with(
                k,
                equal_count_renamer(rf, swept_class(k.suite)),
                experiment_config(args.scale),
                args.scale,
            )
        } else {
            run_kernel(k, Scheme::Proposed, rf, args.scale)
        };
        SpeedupRow {
            kernel: k.name.into(),
            suite: k.suite.label().into(),
            rf_regs: rf,
            baseline_ipc: base.ipc(),
            proposed_ipc: prop.ipc(),
            speedup: prop.ipc() / base.ipc(),
            reuse_pct: prop.rename.reuse_fraction() * 100.0,
        }
    });
    // Per-kernel table.
    let mut headers: Vec<String> = vec!["kernel".into(), "suite".into()];
    headers.extend(RF_SIZES.iter().map(|n| n.to_string()));
    let mut table = Table::new(headers);
    table.numeric();
    for k in all_kernels() {
        let mut cells = vec![k.name.to_string(), k.suite.label().to_string()];
        for rf in RF_SIZES {
            let r = rows
                .iter()
                .find(|r| r.kernel == k.name && r.rf_regs == rf)
                .expect("row exists");
            cells.push(format!("{:.3}", r.speedup));
        }
        table.row(cells);
    }
    // Per-suite geomeans.
    for suite in Suite::ALL {
        let mut cells = vec!["GEOMEAN".to_string(), suite.label().to_string()];
        for rf in RF_SIZES {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.suite == suite.label() && r.rf_regs == rf)
                .map(|r| r.speedup)
                .collect();
            cells.push(format!("{:.3}", geomean(&vals)));
        }
        table.row(cells);
    }
    let mut cells = vec!["GEOMEAN".to_string(), "ALL".to_string()];
    for rf in RF_SIZES {
        let vals: Vec<f64> = rows
            .iter()
            .filter(|r| r.rf_regs == rf)
            .map(|r| r.speedup)
            .collect();
        cells.push(format!("{:.3}", geomean(&vals)));
    }
    table.row(cells);
    print!("{table}");
    save(&args.out_dir, name, &rows)
}
