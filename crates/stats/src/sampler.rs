//! Exact sample collection with percentile queries, the streaming
//! (Welford) mean/variance estimator, and the sampled-simulation window
//! plan.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Two-sided 95% Student-t quantiles for 1–30 degrees of freedom.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The two-sided 95% Student-t critical value for `df` degrees of
/// freedom (exact table up to 30, then the usual coarse steps down to
/// the normal limit 1.96).
pub fn t95(df: u64) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T95[df as usize - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Streaming mean/variance estimator (Welford's algorithm) with a 95%
/// confidence interval on the mean.
///
/// Numerically stable in one pass and O(1) space — the sampled simulator
/// feeds it one IPC observation per detailed window and reads the
/// interval at the end of the run.
///
/// # Examples
///
/// ```
/// use regshare_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.record(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
/// assert!(w.ci95_half_width() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The unbiased sample variance (n−1 denominator); 0.0 with fewer
    /// than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The standard error of the mean (`s / √n`); 0.0 with fewer than
    /// two observations.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval on the mean
    /// (`t · s / √n` with n−1 degrees of freedom); 0.0 with fewer than
    /// two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            t95(self.count - 1) * self.std_error()
        }
    }

    /// The 95% confidence interval on the mean as `(low, high)`;
    /// degenerate `(mean, mean)` with fewer than two observations.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }
}

impl fmt::Display for Welford {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (95% CI)",
            self.count,
            self.mean,
            self.ci95_half_width()
        )
    }
}

/// The periodic window plan of a sampled (SMARTS-style) simulation.
///
/// The instruction stream is divided into fixed windows starting at
/// multiples of `period` counted from instruction 0. Each window runs
/// `warmup` instructions of detailed simulation whose timing is
/// discarded (they drain the cold-start transient of the reconstructed
/// pipeline) followed by `measure` instructions whose IPC becomes one
/// observation. Window positions depend only on this plan — never on
/// worker count or scheduling — which is what makes sliced runs
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplePlan {
    /// Distance between consecutive window starts, in instructions.
    pub period: u64,
    /// Detailed-warmup instructions per window (timing discarded).
    pub warmup: u64,
    /// Measured instructions per window (one IPC observation each).
    pub measure: u64,
}

impl SamplePlan {
    /// Creates a plan.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < warmup + measure <= period` and `measure > 0`.
    pub fn new(period: u64, warmup: u64, measure: u64) -> Self {
        assert!(measure > 0, "sample plan needs a measured portion");
        assert!(
            warmup + measure <= period,
            "window ({warmup}+{measure}) longer than period {period}"
        );
        SamplePlan {
            period,
            warmup,
            measure,
        }
    }

    /// Instructions of detailed simulation per window.
    pub fn window_len(&self) -> u64 {
        self.warmup + self.measure
    }

    /// Start positions (in committed instructions from 0) of every
    /// window that fits entirely below `limit`.
    pub fn window_starts(&self, limit: u64) -> Vec<u64> {
        let mut starts = Vec::new();
        let mut s = 0u64;
        while s + self.window_len() <= limit {
            starts.push(s);
            match s.checked_add(self.period) {
                Some(next) => s = next,
                None => break,
            }
        }
        starts
    }

    /// Fraction of the stream covered by detailed simulation.
    pub fn detail_fraction(&self) -> f64 {
        self.window_len() as f64 / self.period as f64
    }
}

/// Collects `u64` samples and answers min/max/mean/percentile queries.
///
/// Samples are stored verbatim; queries sort lazily and cache the sorted
/// order until the next insertion. Intended for up to a few million samples
/// (e.g. per-cycle occupancy of a register bank).
///
/// # Examples
///
/// ```
/// use regshare_stats::Sampler;
///
/// let mut s = Sampler::new("live_shadow_regs");
/// for v in [4, 8, 6, 2] {
///     s.record(v);
/// }
/// assert_eq!(s.min(), Some(2));
/// assert_eq!(s.max(), Some(8));
/// assert_eq!(s.percentile(50.0), Some(4));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sampler {
    name: String,
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: std::cell::RefCell<Option<Vec<u64>>>,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new(name: impl Into<String>) -> Self {
        Sampler {
            name: name.into(),
            samples: Vec::new(),
            sorted: std::cell::RefCell::new(None),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        *self.sorted.borrow_mut() = None;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// The value at the given percentile (nearest-rank); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `0.0..=100.0`.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile out of range: {pct}"
        );
        if self.samples.is_empty() {
            return None;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(sorted.len() - 1);
        Some(sorted[idx])
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A read-only view of the raw samples, in insertion order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

impl fmt::Display for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "{}: n={} min={} mean={:.2} max={}",
                self.name,
                self.len(),
                self.min().unwrap_or(0),
                m,
                self.max().unwrap_or(0)
            ),
            None => write!(f, "{}: empty", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sampler_has_no_stats() {
        let s = Sampler::new("s");
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn min_max_mean() {
        let mut s = Sampler::new("s");
        for v in [5, 1, 3] {
            s.record(v);
        }
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(5));
        assert!((s.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = Sampler::new("s");
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(90.0), Some(90));
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.percentile(0.0), Some(1));
    }

    #[test]
    fn percentile_cache_invalidated_by_record() {
        let mut s = Sampler::new("s");
        s.record(10);
        assert_eq!(s.percentile(100.0), Some(10));
        s.record(20);
        assert_eq!(s.percentile(100.0), Some(20));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_pct() {
        let mut s = Sampler::new("s");
        s.record(1);
        s.percentile(-0.1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Sampler::new("s");
        assert!(!format!("{s}").is_empty());
        s.record(3);
        assert!(format!("{s}").contains("mean"));
    }
}

#[cfg(test)]
mod welford_tests {
    use super::*;

    #[test]
    fn empty_estimator_is_degenerate() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95_half_width(), 0.0);
        assert_eq!(w.ci95(), (0.0, 0.0));
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut w = Welford::new();
        w.record(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.ci95(), (42.0, 42.0));
    }

    #[test]
    fn matches_textbook_sample() {
        // Classic example: mean 5, sample variance 32/7.
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        let expected_se = (32.0f64 / 7.0 / 8.0).sqrt();
        assert!((w.std_error() - expected_se).abs() < 1e-12);
        // df = 7 → t = 2.365.
        assert!((w.ci95_half_width() - 2.365 * expected_se).abs() < 1e-9);
    }

    #[test]
    fn constant_stream_has_zero_width_interval() {
        let mut w = Welford::new();
        for _ in 0..100 {
            w.record(3.25);
        }
        assert!((w.mean() - 3.25).abs() < 1e-12);
        assert!(w.variance().abs() < 1e-20);
        assert!(w.ci95_half_width().abs() < 1e-10);
    }

    #[test]
    fn uniform_integers_match_closed_form() {
        // 1..=1000: mean 500.5, sample variance n(n+1)/12 = 83_416.666…
        let mut w = Welford::new();
        for x in 1..=1000u32 {
            w.record(x as f64);
        }
        assert!((w.mean() - 500.5).abs() < 1e-9);
        let expected_var = 1000.0 * 1001.0 / 12.0;
        assert!((w.variance() - expected_var).abs() / expected_var < 1e-12);
        // Large n → t ≈ 1.96.
        let se = (expected_var / 1000.0).sqrt();
        assert!((w.ci95_half_width() - 1.96 * se).abs() < 1e-6);
    }

    #[test]
    fn ci_covers_true_mean_of_known_distribution() {
        // Deterministic LCG noise around 10.0; the 95% interval of 200
        // samples must comfortably cover the true mean.
        let mut w = Welford::new();
        let mut state = 0x12345678u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            w.record(10.0 + noise);
        }
        let (lo, hi) = w.ci95();
        assert!(lo < 10.0 && 10.0 < hi, "CI [{lo}, {hi}] misses 10.0");
        assert!(hi - lo < 0.2, "CI suspiciously wide: [{lo}, {hi}]");
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!((t95(30) - 2.042).abs() < 1e-9);
        assert!((t95(50) - 2.000).abs() < 1e-9);
        assert!((t95(1000) - 1.960).abs() < 1e-9);
        assert!(t95(0).is_infinite());
    }

    #[test]
    fn display_mentions_ci() {
        let mut w = Welford::new();
        w.record(1.0);
        w.record(2.0);
        assert!(format!("{w}").contains("95% CI"));
    }
}

#[cfg(test)]
mod plan_tests {
    use super::*;

    #[test]
    fn window_starts_are_period_multiples() {
        let p = SamplePlan::new(1000, 100, 200);
        assert_eq!(p.window_len(), 300);
        assert_eq!(p.window_starts(3300), vec![0, 1000, 2000, 3000]);
        // 3000 + 300 > 3200: the last window no longer fits.
        assert_eq!(p.window_starts(3200), vec![0, 1000, 2000]);
    }

    #[test]
    fn no_window_fits_in_tiny_stream() {
        let p = SamplePlan::new(1000, 100, 200);
        assert!(p.window_starts(299).is_empty());
        assert_eq!(p.window_starts(300), vec![0]);
    }

    #[test]
    fn detail_fraction() {
        let p = SamplePlan::new(10_000, 1_000, 1_000);
        assert!((p.detail_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "longer than period")]
    fn window_must_fit_in_period() {
        SamplePlan::new(100, 80, 30);
    }

    #[test]
    #[should_panic(expected = "measured portion")]
    fn measure_must_be_positive() {
        SamplePlan::new(100, 10, 0);
    }
}
