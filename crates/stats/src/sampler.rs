//! Exact sample collection with percentile queries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Collects `u64` samples and answers min/max/mean/percentile queries.
///
/// Samples are stored verbatim; queries sort lazily and cache the sorted
/// order until the next insertion. Intended for up to a few million samples
/// (e.g. per-cycle occupancy of a register bank).
///
/// # Examples
///
/// ```
/// use regshare_stats::Sampler;
///
/// let mut s = Sampler::new("live_shadow_regs");
/// for v in [4, 8, 6, 2] {
///     s.record(v);
/// }
/// assert_eq!(s.min(), Some(2));
/// assert_eq!(s.max(), Some(8));
/// assert_eq!(s.percentile(50.0), Some(4));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sampler {
    name: String,
    samples: Vec<u64>,
    #[serde(skip)]
    sorted: std::cell::RefCell<Option<Vec<u64>>>,
}

impl Sampler {
    /// Creates an empty sampler.
    pub fn new(name: impl Into<String>) -> Self {
        Sampler {
            name: name.into(),
            samples: Vec::new(),
            sorted: std::cell::RefCell::new(None),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        *self.sorted.borrow_mut() = None;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// The value at the given percentile (nearest-rank); `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `0.0..=100.0`.
    pub fn percentile(&self, pct: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile out of range: {pct}"
        );
        if self.samples.is_empty() {
            return None;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(sorted.len() - 1);
        Some(sorted[idx])
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A read-only view of the raw samples, in insertion order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

impl fmt::Display for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mean() {
            Some(m) => write!(
                f,
                "{}: n={} min={} mean={:.2} max={}",
                self.name,
                self.len(),
                self.min().unwrap_or(0),
                m,
                self.max().unwrap_or(0)
            ),
            None => write!(f, "{}: empty", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sampler_has_no_stats() {
        let s = Sampler::new("s");
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
    }

    #[test]
    fn min_max_mean() {
        let mut s = Sampler::new("s");
        for v in [5, 1, 3] {
            s.record(v);
        }
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(5));
        assert!((s.mean().unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s = Sampler::new("s");
        for v in 1..=100u64 {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), Some(50));
        assert_eq!(s.percentile(90.0), Some(90));
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.percentile(0.0), Some(1));
    }

    #[test]
    fn percentile_cache_invalidated_by_record() {
        let mut s = Sampler::new("s");
        s.record(10);
        assert_eq!(s.percentile(100.0), Some(10));
        s.record(20);
        assert_eq!(s.percentile(100.0), Some(20));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_pct() {
        let mut s = Sampler::new("s");
        s.record(1);
        s.percentile(-0.1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Sampler::new("s");
        assert!(!format!("{s}").is_empty());
        s.record(3);
        assert!(format!("{s}").contains("mean"));
    }
}
