//! A fast hasher for the simulator's integer-keyed tables.
//!
//! The standard library's default SipHash is keyed against hash-flooding
//! attacks, which the simulator does not face: its hash tables are keyed
//! by sequence numbers, page indices and physical-register ids — small
//! trusted integers on per-micro-op hot paths, where SipHash shows up as
//! several percent of total runtime. [`FastHasher`] is a Fibonacci
//! multiplicative hash with an avalanche shift: one multiply per word,
//! good bucket spread for sequential keys, and deterministic across runs
//! (which the experiment harness's reproducibility guarantee relies on).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// MurmurHash3-style 64-bit finalizer (two multiplies, three shifts):
/// cheap, and avalanches into the *low* bits, which hashbrown uses for
/// bucket selection.
#[inline]
fn mix(v: u64) -> u64 {
    let mut h = v.wrapping_mul(PHI);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Multiplicative hasher for small trusted integer keys.
///
/// # Examples
///
/// ```
/// use regshare_stats::FastHashMap;
///
/// let mut committed: FastHashMap<u64, &str> = FastHashMap::default();
/// committed.insert(41, "ld");
/// committed.insert(42, "add");
/// assert_eq!(committed[&42], "add");
/// ```
#[derive(Debug, Default, Clone)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Rarely taken (compound keys hashing a byte tail); still mixes
        // every byte so equality implies hash equality.
        for &b in bytes {
            self.0 = mix(self.0 ^ u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = mix(v ^ self.0);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(v: u64) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(7), hash_of(7));
    }

    #[test]
    fn sequential_keys_spread() {
        // Low bits select the bucket in hashbrown; sequential keys must
        // not collide there.
        let mask = 0x7f;
        let buckets: FastHashSet<u64> = (0..64u64).map(|k| hash_of(k) & mask).collect();
        assert!(
            buckets.len() > 48,
            "only {} distinct buckets",
            buckets.len()
        );
    }

    #[test]
    fn map_round_trips() {
        let mut m: FastHashMap<u64, u64> = FastHashMap::default();
        for k in 0..1000 {
            m.insert(k, k * 3);
        }
        for k in 0..1000 {
            assert_eq!(m[&k], k * 3);
        }
    }

    #[test]
    fn byte_stream_hashing_mixes() {
        let mut a = FastHasher::default();
        a.write(b"ab");
        let mut b = FastHasher::default();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
    }
}
