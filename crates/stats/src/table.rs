//! Fixed-width plain-text tables for the experiment harness.

use std::fmt;

/// Column alignment for [`Table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-justified (default).
    #[default]
    Left,
    /// Right-justified; the natural choice for numeric columns.
    Right,
}

/// A simple fixed-width text table.
///
/// Used by the experiment harness to print the paper's tables and figure
/// data in a terminal-friendly format.
///
/// # Examples
///
/// ```
/// use regshare_stats::{Align, Table};
///
/// let mut t = Table::new(vec!["benchmark".into(), "ipc".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["saxpy".into(), "1.43".into()]);
/// let text = t.render();
/// assert!(text.contains("saxpy"));
/// assert!(text.contains("1.43"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_headers(headers: &[&str]) -> Self {
        Table::new(headers.iter().map(|h| h.to_string()).collect())
    }

    /// Sets the alignment for column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn align(&mut self, idx: usize, align: Align) -> &mut Self {
        self.aligns[idx] = align;
        self
    }

    /// Right-aligns every column except the first; the common layout for
    /// "name | number | number | …" tables.
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row built from `Display` values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a `String`, including a header separator line.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let pad = |s: &str, w: usize, a: Align| -> String {
            let len = s.chars().count();
            let fill = w.saturating_sub(len);
            match a {
                Align::Left => format!("{s}{}", " ".repeat(fill)),
                Align::Right => format!("{}{s}", " ".repeat(fill)),
            }
        };
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&pad(h, widths[i], self.aligns[i]));
        }
        out.push('\n');
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&pad(&row[i], widths[i], self.aligns[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_headers_and_cells() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.row(vec!["x".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains('a') && s.contains('b') && s.contains('x') && s.contains('y'));
    }

    #[test]
    fn columns_are_aligned() {
        let mut t = Table::with_headers(&["name", "v"]);
        t.align(1, Align::Right);
        t.row(vec!["long-name".into(), "1".into()]);
        t.row(vec!["s".into(), "100".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        // All lines are padded to equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        // Right alignment: '1' sits at the end of row 1's value column.
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_row_width_panics() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn numeric_right_aligns_all_but_first() {
        let mut t = Table::with_headers(&["k", "v1", "v2"]);
        t.numeric();
        assert_eq!(t.aligns[0], Align::Left);
        assert_eq!(t.aligns[1], Align::Right);
        assert_eq!(t.aligns[2], Align::Right);
    }

    #[test]
    fn row_display_converts_values() {
        let mut t = Table::with_headers(&["a", "b"]);
        t.row_display(&[1.5, 2.25]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("2.25"));
    }

    #[test]
    fn unicode_headers_do_not_break_padding() {
        let mut t = Table::with_headers(&["α", "β"]);
        t.row(vec!["aa".into(), "bb".into()]);
        // Must not panic and must contain the data.
        assert!(t.render().contains("aa"));
    }
}
