//! Dense integer histogram with an overflow bucket.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram over the values `0..=max`, with everything above `max`
/// collected in a single overflow bucket.
///
/// This matches how the paper buckets consumer counts ("one, two, …, six or
/// more times", Fig. 2).
///
/// # Examples
///
/// ```
/// use regshare_stats::Histogram;
///
/// let mut h = Histogram::new("reuse_chain_len", 3);
/// for len in [0, 1, 1, 2, 7] {
///     h.record(len);
/// }
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Histogram {
    name: String,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with inline buckets for values `0..=max`.
    pub fn new(name: impl Into<String>, max: u64) -> Self {
        Histogram {
            name: name.into(),
            buckets: vec![0; (max + 1) as usize],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.total += 1;
        self.sum += value;
        match self.buckets.get_mut(value as usize) {
            Some(slot) => *slot += 1,
            None => self.overflow += 1,
        }
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.total += n;
        self.sum += value * n;
        match self.buckets.get_mut(value as usize) {
            Some(slot) => *slot += n,
            None => self.overflow += n,
        }
    }

    /// Number of observations exactly equal to `value` (0 if above `max`).
    pub fn count(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Number of observations strictly above the largest inline bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all observations; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Fraction of observations equal to `value`, in `[0, 1]`.
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations in the overflow bucket.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// Fraction of observations `>= value` (inline buckets + overflow).
    pub fn fraction_at_least(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let inline: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(v, _)| *v as u64 >= value)
            .map(|(_, c)| *c)
            .sum();
        (inline + self.overflow) as f64 / self.total as f64
    }

    /// Smallest value `v` such that at least `pct` percent of observations
    /// are `<= v`. Overflowed observations are treated as `max + 1`.
    ///
    /// Returns 0 when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `0.0..=100.0`.
    pub fn percentile(&self, pct: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile out of range: {pct}"
        );
        if self.total == 0 {
            return 0;
        }
        let threshold = (pct / 100.0 * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (value, count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= threshold {
                return value as u64;
            }
        }
        self.buckets.len() as u64
    }

    /// The largest inline bucket value.
    pub fn max_inline(&self) -> u64 {
        (self.buckets.len() - 1) as u64
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates `(value, count)` over the inline buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(|(v, c)| (v as u64, *c))
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different bucket counts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.name)?;
        for (value, count) in self.iter() {
            write!(f, " {value}:{count}")?;
        }
        write!(f, " >{}:{} ]", self.max_inline(), self.overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_inline_and_overflow_buckets() {
        let mut h = Histogram::new("h", 2);
        h.record(0);
        h.record(2);
        h.record(3);
        h.record(100);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn record_n_is_equivalent_to_repeated_record() {
        let mut a = Histogram::new("a", 4);
        let mut b = Histogram::new("b", 4);
        a.record_n(3, 5);
        for _ in 0..5 {
            b.record(3);
        }
        assert_eq!(a.count(3), b.count(3));
        assert_eq!(a.total(), b.total());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn mean_accounts_for_overflowed_values() {
        let mut h = Histogram::new("h", 1);
        h.record(10);
        h.record(0);
        assert!((h.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_and_fraction_at_least() {
        let mut h = Histogram::new("h", 3);
        for v in [1, 1, 2, 3, 9] {
            h.record(v);
        }
        assert!((h.fraction(1) - 0.4).abs() < 1e-12);
        assert!((h.fraction_at_least(2) - 0.6).abs() < 1e-12);
        assert!((h.overflow_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn percentile_on_simple_distribution() {
        let mut h = Histogram::new("h", 10);
        for v in 1..=10 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(100.0), 10);
        assert_eq!(h.percentile(10.0), 1);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::new("h", 4);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        Histogram::new("h", 1).percentile(101.0);
    }

    #[test]
    fn merge_sums_buckets() {
        let mut a = Histogram::new("a", 2);
        let mut b = Histogram::new("b", 2);
        a.record(1);
        b.record(1);
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        let h = Histogram::new("h", 1);
        assert!(!format!("{h}").is_empty());
    }
}
