#![warn(missing_docs)]

//! Statistics primitives for the `regshare` simulator family.
//!
//! The timing simulator, the renaming schemes and the experiment harness all
//! report results through the small set of types defined here:
//!
//! * [`Counter`] — a named monotonically increasing event counter.
//! * [`Histogram`] — a dense integer histogram with an overflow bucket.
//! * [`Ratio`] — numerator/denominator pairs rendered as percentages.
//! * [`Sampler`] — exact min/max/mean/percentile over `u64` samples.
//! * [`Table`] — fixed-width plain-text table rendering used to print the
//!   paper's tables and figures.
//!
//! It also hosts [`FastHasher`], the deterministic integer hasher the
//! simulator's hot-path hash tables share.
//!
//! # Examples
//!
//! ```
//! use regshare_stats::Histogram;
//!
//! let mut consumers = Histogram::new("consumers", 6);
//! consumers.record(1);
//! consumers.record(1);
//! consumers.record(9); // lands in the overflow bucket
//! assert_eq!(consumers.count(1), 2);
//! assert_eq!(consumers.overflow(), 1);
//! ```

mod hash;
mod histogram;
mod sampler;
mod table;

pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use histogram::Histogram;
pub use sampler::{SamplePlan, Sampler, Welford};
pub use table::{Align, Table};

use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use regshare_stats::Counter;
///
/// let mut commits = Counter::new("committed_instructions");
/// commits.add(3);
/// commits.inc();
/// assert_eq!(commits.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// A numerator/denominator pair, displayed as a percentage.
///
/// `Ratio` never divides by zero: an empty denominator yields 0.0.
///
/// # Examples
///
/// ```
/// use regshare_stats::Ratio;
///
/// let mut hits = Ratio::new("l1d_hit_rate");
/// hits.record(true);
/// hits.record(true);
/// hits.record(false);
/// assert!((hits.percent() - 66.666).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Ratio {
    name: String,
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub fn new(name: impl Into<String>) -> Self {
        Ratio {
            name: name.into(),
            hits: 0,
            total: 0,
        }
    }

    /// Records one event; `hit` selects whether it counts toward the numerator.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Adds raw numerator/denominator contributions.
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ratio as a fraction in `[0, 1]`; 0 when empty.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// The ratio as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// The name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the numerator and denominator to zero, keeping the name.
    /// Used when warmed state is handed to a measurement window whose
    /// statistics must not include the warming traffic.
    pub fn reset(&mut self) {
        self.hits = 0;
        self.total = 0;
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2}% ({}/{})",
            self.name,
            self.percent(),
            self.hits,
            self.total
        )
    }
}

/// Computes the geometric mean of `values`, ignoring non-positive entries.
///
/// Returns 0.0 for an empty input. The paper reports average speedups; for
/// ratios the geometric mean is the conventional aggregate.
///
/// # Examples
///
/// ```
/// use regshare_stats::geomean;
///
/// assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positives.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positives.iter().map(|v| v.ln()).sum();
    (log_sum / positives.len() as f64).exp()
}

/// Computes the arithmetic mean of `values`; 0.0 for an empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_at_zero_and_accumulates() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.value(), 11);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn counter_reset_clears_value() {
        let mut c = Counter::new("x");
        c.add(5);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn ratio_empty_is_zero_percent() {
        let r = Ratio::new("empty");
        assert_eq!(r.percent(), 0.0);
        assert_eq!(r.fraction(), 0.0);
    }

    #[test]
    fn ratio_records_hits_and_misses() {
        let mut r = Ratio::new("r");
        for _ in 0..3 {
            r.record(true);
        }
        r.record(false);
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 4);
        assert!((r.percent() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_add_merges_raw_counts() {
        let mut r = Ratio::new("r");
        r.add(1, 2);
        r.add(1, 2);
        assert!((r.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_ignores_nonpositive() {
        assert!((geomean(&[0.0, -1.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_impls_are_nonempty() {
        let mut c = Counter::new("c");
        c.inc();
        assert!(!format!("{c}").is_empty());
        let mut r = Ratio::new("r");
        r.record(true);
        assert!(!format!("{r}").is_empty());
    }
}
