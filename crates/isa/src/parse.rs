//! Textual assembly parser: the inverse of the disassembler, so programs
//! can be written in `.s` files and run from the command line.
//!
//! Syntax (one instruction or directive per line; `;` and `#` to end of
//! line are comments — `#` only when it starts a token):
//!
//! ```text
//! ; data directives
//! .data 0x1000            ; set the data cursor
//! .u64 1, 2, 3            ; emit 64-bit words
//! .f64 1.5, -2.0          ; emit doubles
//! .zeros 64               ; reserve zeroed bytes
//!
//! ; code (.hint annotates the next instruction's destination slots:
//! ; noreuse / single / multi / unknown, optionally `, <writeback>`)
//! start:
//!     li   x1, 0x1000
//!     li   x2, 3
//! loop:
//!     ld.post x3, [x1], 8
//!     add  x4, x4, x3
//!     subi x2, x2, 1
//!     bne  x2, xzr, loop
//!     halt
//! ```
//!
//! Operand forms: registers `x0..x30`, `xzr`, `f0..f31`; immediates in
//! decimal or `0x…`; memory `[xN+imm]`, `[xN-imm]`, `[xN]` and
//! post-increment `[xN], imm`; branch targets are labels.

use crate::{reg, Asm, DataBuilder, Label, Program, ShareHint};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_reg(line: usize, token: &str) -> Result<crate::ArchReg, ParseError> {
    let t = token.trim();
    if t == "xzr" {
        return Ok(reg::zero());
    }
    if let Some(n) = t.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(reg::x(i));
            }
        }
    }
    if let Some(n) = t.strip_prefix('f') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(reg::f(i));
            }
        }
    }
    err(line, format!("expected a register, found `{t}`"))
}

fn parse_imm(line: usize, token: &str) -> Result<i64, ParseError> {
    let t = token.trim().trim_start_matches('#');
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let value = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("expected an immediate, found `{token}`")),
    }
}

fn parse_f64(line: usize, token: &str) -> Result<f64, ParseError> {
    token.trim().parse::<f64>().map_err(|_| ParseError {
        line,
        message: format!("expected a float, found `{token}`"),
    })
}

/// Memory operand: `[xN]`, `[xN+imm]`, `[xN-imm]` or the post-increment
/// pair `[xN], imm` (the caller splits on commas first, so this sees the
/// bracket part and possibly a trailing immediate operand).
fn parse_mem(line: usize, token: &str) -> Result<(crate::ArchReg, i64), ParseError> {
    let t = token.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a memory operand like [x1+8], found `{t}`"),
        })?;
    if let Some((base, off)) = inner.split_once('+') {
        return Ok((parse_reg(line, base)?, parse_imm(line, off)?));
    }
    if let Some(pos) = inner.rfind('-') {
        if pos > 0 {
            let (base, off) = inner.split_at(pos);
            return Ok((parse_reg(line, base)?, -parse_imm(line, &off[1..])?));
        }
    }
    Ok((parse_reg(line, inner)?, 0))
}

/// Splits an operand string on top-level commas (brackets protect commas
/// — not that TRISC syntax has commas inside brackets, but it keeps the
/// tokenizer honest).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

/// Parses a textual assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown
/// mnemonics, malformed operands, or undefined labels.
///
/// # Examples
///
/// ```
/// use regshare_isa::{parse_program, Machine};
///
/// let program = parse_program(r"
///     li   x1, 21
///     add  x1, x1, x1
///     halt
/// ").unwrap();
/// let mut m = Machine::new(program);
/// m.run(10).unwrap();
/// assert_eq!(m.int_reg(regshare_isa::reg::x(1)), 42);
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut asm = Asm::new();
    let mut data: Option<DataBuilder> = None;
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut label_of = |asm: &mut Asm, name: &str| -> Label {
        *labels
            .entry(name.to_string())
            .or_insert_with(|| asm.label())
    };

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Label definitions (possibly followed by an instruction).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            let label = label_of(&mut asm, name);
            asm.bind(label);
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        // Directives.
        if let Some(dir) = rest.strip_prefix('.') {
            let (name, args) = dir.split_once(char::is_whitespace).unwrap_or((dir, ""));
            // `.hint` annotates code, not data — handle it before the
            // data builder springs into existence.
            if name == "hint" {
                let ops = split_operands(args);
                if ops.is_empty() || ops.len() > 2 {
                    return err(line, ".hint expects 1 or 2 operands: primary [, writeback]");
                }
                let parse_hint = |tok: &str| {
                    ShareHint::from_name(tok.trim()).ok_or_else(|| ParseError {
                        line,
                        message: format!(
                            "expected a hint (noreuse/single/multi/unknown), found `{tok}`"
                        ),
                    })
                };
                let primary = parse_hint(&ops[0])?;
                let writeback = match ops.get(1) {
                    Some(t) => parse_hint(t)?,
                    None => ShareHint::Unknown,
                };
                asm.hint_slots(primary, writeback);
                continue;
            }
            let d = data.get_or_insert_with(|| DataBuilder::new(0x1_0000));
            match name {
                "data" => {
                    let base = parse_imm(line, args)? as u64;
                    *d = DataBuilder::new(base);
                }
                "u64" => {
                    for a in split_operands(args) {
                        let v = parse_imm(line, &a)?;
                        d.u64(v as u64);
                    }
                }
                "f64" => {
                    for a in split_operands(args) {
                        let v = parse_f64(line, &a)?;
                        d.f64(v);
                    }
                }
                "zeros" => {
                    d.zeros(parse_imm(line, args)? as u64);
                }
                other => return err(line, format!("unknown directive .{other}")),
            }
            continue;
        }
        // Instructions.
        let (mnemonic, operand_str) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        let ops = split_operands(operand_str);
        let n = ops.len();
        let r = |i: usize| parse_reg(line, &ops[i]);
        let imm = |i: usize| parse_imm(line, &ops[i]);
        let need = |want: usize| -> Result<(), ParseError> {
            if n == want {
                Ok(())
            } else {
                err(
                    line,
                    format!("{mnemonic} expects {want} operands, found {n}"),
                )
            }
        };
        match mnemonic {
            // three-register ALU
            "add" | "sub" | "mul" | "udiv" | "sdiv" | "and" | "or" | "xor" | "sll" | "srl"
            | "sra" | "slt" | "sltu" | "seq" | "fadd" | "fsub" | "fmul" | "fdiv" | "fmin"
            | "fmax" | "feq" | "flt" | "fle" => {
                need(3)?;
                let (d0, s1, s2) = (r(0)?, r(1)?, r(2)?);
                match mnemonic {
                    "add" => asm.add(d0, s1, s2),
                    "sub" => asm.sub(d0, s1, s2),
                    "mul" => asm.mul(d0, s1, s2),
                    "udiv" => asm.udiv(d0, s1, s2),
                    "sdiv" => asm.sdiv(d0, s1, s2),
                    "and" => asm.and(d0, s1, s2),
                    "or" => asm.or(d0, s1, s2),
                    "xor" => asm.xor(d0, s1, s2),
                    "sll" => asm.sll(d0, s1, s2),
                    "srl" => asm.srl(d0, s1, s2),
                    "sra" => asm.sra(d0, s1, s2),
                    "slt" => asm.slt(d0, s1, s2),
                    "sltu" => asm.sltu(d0, s1, s2),
                    "seq" => asm.seq(d0, s1, s2),
                    "fadd" => asm.fadd(d0, s1, s2),
                    "fsub" => asm.fsub(d0, s1, s2),
                    "fmul" => asm.fmul(d0, s1, s2),
                    "fdiv" => asm.fdiv(d0, s1, s2),
                    "fmin" => asm.fmin(d0, s1, s2),
                    "fmax" => asm.fmax(d0, s1, s2),
                    "feq" => asm.feq(d0, s1, s2),
                    "flt" => asm.flt(d0, s1, s2),
                    "fle" => asm.fle(d0, s1, s2),
                    _ => unreachable!(),
                };
            }
            "fma" => {
                need(4)?;
                asm.fma(r(0)?, r(1)?, r(2)?, r(3)?);
            }
            // register-immediate
            "addi" | "subi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" => {
                need(3)?;
                let (d0, s1, i2) = (r(0)?, r(1)?, imm(2)?);
                match mnemonic {
                    "addi" => asm.addi(d0, s1, i2),
                    "subi" => asm.subi(d0, s1, i2),
                    "andi" => asm.andi(d0, s1, i2),
                    "ori" => asm.ori(d0, s1, i2),
                    "xori" => asm.xori(d0, s1, i2),
                    "slli" => asm.slli(d0, s1, i2),
                    "srli" => asm.srli(d0, s1, i2),
                    "srai" => asm.srai(d0, s1, i2),
                    "slti" => asm.slti(d0, s1, i2),
                    _ => unreachable!(),
                };
            }
            "li" => {
                need(2)?;
                asm.li(r(0)?, imm(1)?);
            }
            "fli" => {
                need(2)?;
                asm.fli(r(0)?, parse_f64(line, &ops[1])?);
            }
            "mov" => {
                need(2)?;
                asm.mov(r(0)?, r(1)?);
            }
            "fmov" => {
                need(2)?;
                asm.fmov(r(0)?, r(1)?);
            }
            "fneg" => {
                need(2)?;
                asm.fneg(r(0)?, r(1)?);
            }
            "fabs" => {
                need(2)?;
                asm.fabs(r(0)?, r(1)?);
            }
            "fsqrt" => {
                need(2)?;
                asm.fsqrt(r(0)?, r(1)?);
            }
            "cvt.i.f" => {
                need(2)?;
                asm.cvt_i_f(r(0)?, r(1)?);
            }
            "cvt.f.i" => {
                need(2)?;
                asm.cvt_f_i(r(0)?, r(1)?);
            }
            // memory
            "ld" | "ldw" | "ldb" | "fld" => {
                need(2)?;
                let (base, off) = parse_mem(line, &ops[1])?;
                match mnemonic {
                    "ld" => asm.ld(r(0)?, base, off),
                    "ldw" => asm.ldw(r(0)?, base, off),
                    "ldb" => asm.ldb(r(0)?, base, off),
                    "fld" => asm.fld(r(0)?, base, off),
                    _ => unreachable!(),
                };
            }
            "st" | "stw" | "stb" | "fst" => {
                need(2)?;
                let (base, off) = parse_mem(line, &ops[1])?;
                match mnemonic {
                    "st" => asm.st(r(0)?, base, off),
                    "stw" => asm.stw(r(0)?, base, off),
                    "stb" => asm.stb(r(0)?, base, off),
                    "fst" => asm.fst(r(0)?, base, off),
                    _ => unreachable!(),
                };
            }
            "ld.post" | "fld.post" | "st.post" | "fst.post" => {
                need(3)?;
                let (base, off0) = parse_mem(line, &ops[1])?;
                if off0 != 0 {
                    return err(line, "post-increment base takes no offset: use [xN], imm");
                }
                let stride = imm(2)?;
                match mnemonic {
                    "ld.post" => asm.ld_post(r(0)?, base, stride),
                    "fld.post" => asm.fld_post(r(0)?, base, stride),
                    "st.post" => asm.st_post(r(0)?, base, stride),
                    "fst.post" => asm.fst_post(r(0)?, base, stride),
                    _ => unreachable!(),
                };
            }
            // control
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                need(3)?;
                let (s1, s2) = (r(0)?, r(1)?);
                let target = label_of(&mut asm, ops[2].trim());
                match mnemonic {
                    "beq" => asm.beq(s1, s2, target),
                    "bne" => asm.bne(s1, s2, target),
                    "blt" => asm.blt(s1, s2, target),
                    "bge" => asm.bge(s1, s2, target),
                    "bltu" => asm.bltu(s1, s2, target),
                    "bgeu" => asm.bgeu(s1, s2, target),
                    _ => unreachable!(),
                };
            }
            "jmp" => {
                need(1)?;
                let target = label_of(&mut asm, ops[0].trim());
                asm.jmp(target);
            }
            "call" => {
                need(1)?;
                let target = label_of(&mut asm, ops[0].trim());
                asm.call(target);
            }
            "ret" => {
                need(0)?;
                asm.ret();
            }
            "nop" => {
                need(0)?;
                asm.nop();
            }
            "halt" => {
                need(0)?;
                asm.halt();
            }
            other => return err(line, format!("unknown mnemonic `{other}`")),
        }
    }
    if let Some(d) = data {
        asm.set_data(d.build());
    }
    // `assemble` panics on unbound labels; give a proper error instead.
    let unbound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| asm.assemble()));
    unbound.map_err(|_| ParseError {
        line: 0,
        message: "a referenced label was never defined (or the program is empty)".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn parses_and_runs_a_loop() {
        let p = parse_program(
            r"
            ; count to five
                li x1, 5
                li x2, 0
            top:
                addi x2, x2, 1
                subi x1, x1, 1
                bne  x1, xzr, top
                halt
            ",
        )
        .expect("valid program");
        let mut m = Machine::new(p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(reg::x(2)), 5);
    }

    #[test]
    fn parses_data_directives_and_memory_ops() {
        let p = parse_program(
            r"
            .data 0x2000
            .u64 10, 20, 30
            .zeros 8
                li x1, 0x2000
                ld.post x2, [x1], 8
                ld.post x3, [x1], 8
                ld x4, [x1]
                add x5, x2, x3
                add x5, x5, x4
                st x5, [x1+8]
                halt
            ",
        )
        .expect("valid program");
        let mut m = Machine::new(p);
        m.run(100).unwrap();
        assert_eq!(m.memory().read_u64(0x2000 + 24), 60);
    }

    #[test]
    fn parses_fp_and_negative_offsets() {
        let p = parse_program(
            r"
            .data 0x3000
            .f64 1.5, 2.5
                li x1, 0x3010
                fld f1, [x1-16]
                fld f2, [x1-8]
                fadd f3, f1, f2
                fst f3, [x1]
                halt
            ",
        )
        .expect("valid program");
        let mut m = Machine::new(p);
        m.run(100).unwrap();
        assert_eq!(m.memory().read_f64(0x3010), 4.0);
    }

    #[test]
    fn call_and_ret_roundtrip() {
        let p = parse_program(
            r"
                li x1, 1
                call double
                call double
                halt
            double:
                add x1, x1, x1
                ret
            ",
        )
        .expect("valid program");
        let mut m = Machine::new(p);
        m.run(100).unwrap();
        assert_eq!(m.int_reg(reg::x(1)), 4);
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = parse_program("nop\nfrobnicate x1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
        assert!(!format!("{e}").is_empty());
    }

    #[test]
    fn reports_bad_operand_counts() {
        let e = parse_program("add x1, x2\nhalt\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn reports_undefined_label() {
        let e = parse_program("jmp nowhere\nhalt\n").unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn rejects_post_increment_with_offset() {
        let e = parse_program("ld.post x1, [x2+8], 8\nhalt\n").unwrap_err();
        assert!(e.message.contains("no offset"));
    }

    #[test]
    fn hint_directive_annotates_the_next_instruction() {
        use crate::{DefSlot, ShareHint};
        let p = parse_program(
            r"
                .hint single
                li x1, 5
                .hint noreuse, multi
                ld.post x2, [x1], 8
                add x3, x1, x1
                halt
            ",
        )
        .expect("valid program");
        let t = p.hints().expect("hint table attached");
        assert_eq!(t.get(0, DefSlot::Primary), ShareHint::SingleUse);
        assert_eq!(t.get(1, DefSlot::Primary), ShareHint::NoReuse);
        assert_eq!(t.get(1, DefSlot::Writeback), ShareHint::Multi);
        assert_eq!(t.get(2, DefSlot::Primary), ShareHint::Unknown);
    }

    #[test]
    fn reports_bad_hint_names() {
        let e = parse_program(".hint sometimes\nhalt\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("sometimes"));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_program("li x1, 0x10\nli x2, -0x10\nadd x3, x1, x2\nhalt\n").unwrap();
        let mut m = Machine::new(p);
        m.run(10).unwrap();
        assert_eq!(m.int_reg(reg::x(3)), 0);
    }
}
