//! Hardware-thread identity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware-thread (hart) identifier.
///
/// The simulator supports up to [`MAX_HARTS`] simultaneously-active
/// contexts sharing one physical register file. `HartId` tags fetched
/// and in-flight operations so the rename maps, reorder-buffer
/// partitions and squash walks of different threads never mix.
///
/// # Examples
///
/// ```
/// use regshare_isa::HartId;
///
/// let h = HartId::new(2);
/// assert_eq!(h.index(), 2);
/// assert_eq!(format!("{h}"), "t2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HartId(u8);

/// The most hardware threads a core can host.
pub const MAX_HARTS: usize = 4;

impl HartId {
    /// The hart with index `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= MAX_HARTS`.
    pub fn new(n: usize) -> Self {
        assert!(n < MAX_HARTS, "hart index {n} out of range");
        HartId(n as u8)
    }

    /// The primary (and, on a single-threaded core, only) hart.
    pub const ZERO: HartId = HartId(0);

    /// This hart's index, usable directly for per-thread array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Default for HartId {
    fn default() -> Self {
        HartId::ZERO
    }
}

impl fmt::Display for HartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for n in 0..MAX_HARTS {
            assert_eq!(HartId::new(n).index(), n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        HartId::new(MAX_HARTS);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(HartId::default(), HartId::ZERO);
        assert_eq!(HartId::ZERO.index(), 0);
    }
}
