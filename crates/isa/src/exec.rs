//! Pure instruction semantics.
//!
//! Both the functional emulator ([`crate::Machine`]) and the timing
//! simulator's execute stage call [`evaluate`] so that the two can never
//! disagree about what an instruction *does* — only about *when* it does
//! it. All register values are carried as `u64` bit patterns; floating
//! point values are `f64` bits.

use crate::{Inst, Opcode};

/// The architectural effect of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Write `0:u64` (bit pattern) to the destination register.
    Value(u64),
    /// Load `width` bytes from `ea`; the loaded bits become the destination
    /// value.
    Load {
        /// Effective address.
        ea: u64,
        /// Access size in bytes.
        width: u8,
    },
    /// Store the low `width` bytes of `value` to `ea`.
    Store {
        /// Effective address.
        ea: u64,
        /// Access size in bytes.
        width: u8,
        /// Bits to store.
        value: u64,
    },
    /// Post-increment load: load `width` bytes from `ea` into the primary
    /// destination and write `writeback` to the base register (the second
    /// destination).
    LoadPost {
        /// Effective address (the un-incremented base).
        ea: u64,
        /// Access size in bytes.
        width: u8,
        /// New base-register value (`base + imm`).
        writeback: u64,
    },
    /// Post-increment store: store `value` to `ea`, then write
    /// `writeback` to the base register.
    StorePost {
        /// Effective address (the un-incremented base).
        ea: u64,
        /// Access size in bytes.
        width: u8,
        /// Bits to store.
        value: u64,
        /// New base-register value (`base + imm`).
        writeback: u64,
    },
    /// Control transfer. `taken` is the branch outcome; `target` is the
    /// next instruction index when taken; `link` is the value written to
    /// the link register, if any.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Destination instruction index when taken.
        target: u64,
        /// Return address to write to the destination register, if linking.
        link: Option<u64>,
    },
    /// No architectural effect (`nop`).
    Nop,
    /// Stop the machine (`halt`).
    Halt,
}

impl Action {
    /// The next PC after executing at `pc`, given this action.
    pub fn next_pc(&self, pc: u64) -> u64 {
        match self {
            Action::Branch {
                taken: true,
                target,
                ..
            } => *target,
            Action::Halt => pc,
            _ => pc + 1,
        }
    }
}

#[inline]
fn f(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[inline]
fn b(value: f64) -> u64 {
    value.to_bits()
}

#[inline]
fn bool64(v: bool) -> u64 {
    v as u64
}

/// Evaluates `inst` at `pc` over positional source values.
///
/// `ops[i]` is the bit-pattern value of `inst.raw_sources()[i]` (zero for
/// absent operands and for reads of the hard-wired zero register — the
/// caller is responsible for that substitution, which [`crate::Machine`]
/// and the timing simulator's register read both perform).
///
/// Division by zero follows ARM semantics: the result is 0, no trap.
/// `cvt.f.i` saturates on overflow and maps NaN to 0 (ARM-style).
pub fn evaluate(inst: &Inst, pc: u64, ops: [u64; 3]) -> Action {
    use Opcode::*;
    let [a, bv, c] = ops;
    let imm = inst.imm;
    match inst.opcode {
        Add => Action::Value(a.wrapping_add(bv)),
        Sub => Action::Value(a.wrapping_sub(bv)),
        Mul => Action::Value(a.wrapping_mul(bv)),
        Udiv => Action::Value(a.checked_div(bv).unwrap_or(0)),
        Sdiv => Action::Value(if bv == 0 {
            0
        } else {
            (a as i64).wrapping_div(bv as i64) as u64
        }),
        And => Action::Value(a & bv),
        Or => Action::Value(a | bv),
        Xor => Action::Value(a ^ bv),
        Sll => Action::Value(a.wrapping_shl((bv & 63) as u32)),
        Srl => Action::Value(a.wrapping_shr((bv & 63) as u32)),
        Sra => Action::Value(((a as i64).wrapping_shr((bv & 63) as u32)) as u64),
        Slt => Action::Value(bool64((a as i64) < (bv as i64))),
        Sltu => Action::Value(bool64(a < bv)),
        Seq => Action::Value(bool64(a == bv)),
        Addi => Action::Value(a.wrapping_add(imm as u64)),
        Andi => Action::Value(a & imm as u64),
        Ori => Action::Value(a | imm as u64),
        Xori => Action::Value(a ^ imm as u64),
        Slli => Action::Value(a.wrapping_shl((imm & 63) as u32)),
        Srli => Action::Value(a.wrapping_shr((imm & 63) as u32)),
        Srai => Action::Value(((a as i64).wrapping_shr((imm & 63) as u32)) as u64),
        Slti => Action::Value(bool64((a as i64) < imm)),
        Li => Action::Value(imm as u64),
        Mov => Action::Value(a),
        Fadd => Action::Value(b(f(a) + f(bv))),
        Fsub => Action::Value(b(f(a) - f(bv))),
        Fmul => Action::Value(b(f(a) * f(bv))),
        Fdiv => Action::Value(b(f(a) / f(bv))),
        Fsqrt => Action::Value(b(f(a).sqrt())),
        Fma => Action::Value(b(f(a).mul_add(f(bv), f(c)))),
        Fneg => Action::Value(b(-f(a))),
        Fabs => Action::Value(b(f(a).abs())),
        Fmin => Action::Value(b(f(a).min(f(bv)))),
        Fmax => Action::Value(b(f(a).max(f(bv)))),
        Fmov => Action::Value(a),
        Fli => Action::Value(imm as u64),
        Feq => Action::Value(bool64(f(a) == f(bv))),
        Flt => Action::Value(bool64(f(a) < f(bv))),
        Fle => Action::Value(bool64(f(a) <= f(bv))),
        CvtIf => Action::Value(b(a as i64 as f64)),
        CvtFi => {
            let x = f(a);
            let v = if x.is_nan() {
                0
            } else if x >= i64::MAX as f64 {
                i64::MAX
            } else if x <= i64::MIN as f64 {
                i64::MIN
            } else {
                x as i64
            };
            Action::Value(v as u64)
        }
        Ld | Ldw | Ldb | Fld => Action::Load {
            ea: a.wrapping_add(imm as u64),
            width: inst.opcode.mem_width(),
        },
        St | Stw | Stb | Fst => Action::Store {
            ea: a.wrapping_add(imm as u64),
            width: inst.opcode.mem_width(),
            value: bv,
        },
        LdPost | FldPost => Action::LoadPost {
            ea: a,
            width: inst.opcode.mem_width(),
            writeback: a.wrapping_add(imm as u64),
        },
        StPost | FstPost => Action::StorePost {
            ea: a,
            width: inst.opcode.mem_width(),
            value: bv,
            writeback: a.wrapping_add(imm as u64),
        },
        Beq => cond(a == bv, inst),
        Bne => cond(a != bv, inst),
        Blt => cond((a as i64) < (bv as i64), inst),
        Bge => cond((a as i64) >= (bv as i64), inst),
        Bltu => cond(a < bv, inst),
        Bgeu => cond(a >= bv, inst),
        Jal => Action::Branch {
            taken: true,
            target: inst.target as u64,
            link: inst.dst().map(|_| pc + 1),
        },
        Jalr => Action::Branch {
            taken: true,
            target: a.wrapping_add(imm as u64),
            link: inst.dst().map(|_| pc + 1),
        },
        Nop => Action::Nop,
        Halt => Action::Halt,
    }
}

fn cond(taken: bool, inst: &Inst) -> Action {
    Action::Branch {
        taken,
        target: inst.target as u64,
        link: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Inst};

    fn val(action: Action) -> u64 {
        match action {
            Action::Value(v) => v,
            other => panic!("expected Value, got {other:?}"),
        }
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let i = Inst::rrr(Opcode::Add, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&i, 0, [u64::MAX, 1, 0])), 0);
        let m = Inst::rrr(Opcode::Mul, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&m, 0, [u64::MAX, 2, 0])), u64::MAX - 1);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let u = Inst::rrr(Opcode::Udiv, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&u, 0, [42, 0, 0])), 0);
        let s = Inst::rrr(Opcode::Sdiv, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&s, 0, [42, 0, 0])), 0);
    }

    #[test]
    fn signed_division_min_by_minus_one_wraps() {
        let s = Inst::rrr(Opcode::Sdiv, reg::x(0), reg::x(1), reg::x(2));
        let v = val(evaluate(&s, 0, [i64::MIN as u64, -1i64 as u64, 0]));
        assert_eq!(v, i64::MIN as u64);
    }

    #[test]
    fn comparisons() {
        let slt = Inst::rrr(Opcode::Slt, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&slt, 0, [-1i64 as u64, 0, 0])), 1);
        let sltu = Inst::rrr(Opcode::Sltu, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&sltu, 0, [-1i64 as u64, 0, 0])), 0);
        let seq = Inst::rrr(Opcode::Seq, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&seq, 0, [7, 7, 0])), 1);
    }

    #[test]
    fn shifts_mask_the_amount() {
        let sll = Inst::rrr(Opcode::Sll, reg::x(0), reg::x(1), reg::x(2));
        assert_eq!(val(evaluate(&sll, 0, [1, 64, 0])), 1); // 64 & 63 == 0
        let sra = Inst::rri(Opcode::Srai, reg::x(0), reg::x(1), 1);
        assert_eq!(val(evaluate(&sra, 0, [-4i64 as u64, 0, 0])), -2i64 as u64);
    }

    #[test]
    fn fp_arithmetic_and_fma() {
        let fadd = Inst::rrr(Opcode::Fadd, reg::f(0), reg::f(1), reg::f(2));
        let v = val(evaluate(&fadd, 0, [1.5f64.to_bits(), 2.25f64.to_bits(), 0]));
        assert_eq!(f64::from_bits(v), 3.75);
        let fma = Inst::rrrr(Opcode::Fma, reg::f(0), reg::f(1), reg::f(2), reg::f(3));
        let v = val(evaluate(
            &fma,
            0,
            [2.0f64.to_bits(), 3.0f64.to_bits(), 1.0f64.to_bits()],
        ));
        assert_eq!(f64::from_bits(v), 7.0);
    }

    #[test]
    fn fp_convert_saturates() {
        let c = Inst::rr(Opcode::CvtFi, reg::x(0), reg::f(1));
        assert_eq!(val(evaluate(&c, 0, [f64::NAN.to_bits(), 0, 0])), 0);
        assert_eq!(
            val(evaluate(&c, 0, [1e300f64.to_bits(), 0, 0])),
            i64::MAX as u64
        );
        assert_eq!(
            val(evaluate(&c, 0, [(-1e300f64).to_bits(), 0, 0])),
            i64::MIN as u64
        );
        assert_eq!(
            val(evaluate(&c, 0, [(-3.7f64).to_bits(), 0, 0])),
            -3i64 as u64
        );
    }

    #[test]
    fn loads_and_stores_compute_effective_addresses() {
        let l = Inst::load(Opcode::Ldw, reg::x(0), reg::x(1), -4);
        assert_eq!(
            evaluate(&l, 0, [100, 0, 0]),
            Action::Load { ea: 96, width: 4 }
        );
        let s = Inst::store(Opcode::St, reg::x(2), reg::x(1), 8);
        assert_eq!(
            evaluate(&s, 0, [100, 55, 0]),
            Action::Store {
                ea: 108,
                width: 8,
                value: 55
            }
        );
    }

    #[test]
    fn conditional_branch_outcomes() {
        let mut beq = Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 0);
        beq.target = 10;
        assert_eq!(
            evaluate(&beq, 3, [5, 5, 0]),
            Action::Branch {
                taken: true,
                target: 10,
                link: None
            }
        );
        assert_eq!(
            evaluate(&beq, 3, [5, 6, 0]),
            Action::Branch {
                taken: false,
                target: 10,
                link: None
            }
        );
    }

    #[test]
    fn jal_links_and_jalr_indirects() {
        let j = Inst::jal(Some(reg::lr()), 20);
        assert_eq!(
            evaluate(&j, 4, [0, 0, 0]),
            Action::Branch {
                taken: true,
                target: 20,
                link: Some(5)
            }
        );
        let r = Inst::jalr(None, reg::lr(), 0);
        assert_eq!(
            evaluate(&r, 9, [5, 0, 0]),
            Action::Branch {
                taken: true,
                target: 5,
                link: None
            }
        );
    }

    #[test]
    fn next_pc_rules() {
        assert_eq!(Action::Value(1).next_pc(7), 8);
        assert_eq!(Action::Halt.next_pc(7), 7);
        assert_eq!(
            Action::Branch {
                taken: true,
                target: 2,
                link: None
            }
            .next_pc(7),
            2
        );
        assert_eq!(
            Action::Branch {
                taken: false,
                target: 2,
                link: None
            }
            .next_pc(7),
            8
        );
    }
}
