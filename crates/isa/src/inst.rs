//! Instruction representation.

use crate::{ArchReg, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A decoded TRISC instruction.
///
/// `Inst` is the unit the renaming stage operates on: it exposes exactly the
/// operand structure renaming hardware sees — at most one destination
/// register ([`Inst::dst`]) and up to three source registers
/// ([`Inst::sources`]). Reads of the hard-wired zero register and writes to
/// it are filtered out of those accessors, mirroring hardware which neither
/// renames `xzr` nor allocates storage for it.
///
/// # Examples
///
/// ```
/// use regshare_isa::{Inst, Opcode, reg};
///
/// let add = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
/// assert_eq!(add.dst(), Some(reg::x(1)));
/// assert_eq!(add.sources().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub opcode: Opcode,
    dst: Option<ArchReg>,
    dst2: Option<ArchReg>,
    srcs: [Option<ArchReg>; 3],
    /// Immediate operand; also carries the f64 bit pattern for [`Opcode::Fli`].
    pub imm: i64,
    /// Direct-branch target as an instruction index (filled by the assembler).
    pub target: u32,
}

impl Inst {
    /// Creates an instruction from raw parts.
    ///
    /// Prefer the shape-specific constructors ([`Inst::rrr`], [`Inst::rri`],
    /// …) or the [`crate::Asm`] builder; this exists for generators and
    /// tests that need full control.
    pub fn from_parts(
        opcode: Opcode,
        dst: Option<ArchReg>,
        srcs: [Option<ArchReg>; 3],
        imm: i64,
        target: u32,
    ) -> Self {
        Inst { opcode, dst, dst2: None, srcs, imm, target }
    }

    /// Three-register instruction: `op rd, rs1, rs2`.
    pub fn rrr(opcode: Opcode, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> Self {
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [Some(rs1), Some(rs2), None], imm: 0, target: 0 }
    }

    /// Four-register instruction: `op rd, rs1, rs2, rs3` (FMA).
    pub fn rrrr(opcode: Opcode, rd: ArchReg, rs1: ArchReg, rs2: ArchReg, rs3: ArchReg) -> Self {
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [Some(rs1), Some(rs2), Some(rs3)], imm: 0, target: 0 }
    }

    /// Register-immediate instruction: `op rd, rs1, #imm`.
    pub fn rri(opcode: Opcode, rd: ArchReg, rs1: ArchReg, imm: i64) -> Self {
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [Some(rs1), None, None], imm, target: 0 }
    }

    /// Two-register instruction: `op rd, rs1`.
    pub fn rr(opcode: Opcode, rd: ArchReg, rs1: ArchReg) -> Self {
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [Some(rs1), None, None], imm: 0, target: 0 }
    }

    /// Destination-and-immediate instruction: `op rd, #imm`.
    pub fn ri(opcode: Opcode, rd: ArchReg, imm: i64) -> Self {
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [None, None, None], imm, target: 0 }
    }

    /// Load: `op rd, [rbase + #imm]`.
    pub fn load(opcode: Opcode, rd: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_load());
        Inst { opcode, dst: Some(rd), dst2: None, srcs: [Some(base), None, None], imm, target: 0 }
    }

    /// Store: `op rval, [rbase + #imm]`. Sources are `[base, value]`.
    pub fn store(opcode: Opcode, value: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_store());
        Inst { opcode, dst: None, dst2: None, srcs: [Some(base), Some(value), None], imm, target: 0 }
    }

    /// Post-increment load: `op rd, [rbase], #imm` — writes `rd` and
    /// writes back `rbase + imm` into `rbase` (second destination).
    /// # Panics
    ///
    /// Panics (debug) if `rd == base` — like ARM, writeback with
    /// `rd == rn` is not allowed.
    pub fn load_post(opcode: Opcode, rd: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_load() && opcode.is_post_increment());
        debug_assert!(rd != base, "post-increment load with rd == base");
        Inst {
            opcode,
            dst: Some(rd),
            dst2: Some(base),
            srcs: [Some(base), None, None],
            imm,
            target: 0,
        }
    }

    /// Post-increment store: `op rval, [rbase], #imm`. Sources are
    /// `[base, value]`; the base writeback is the only destination.
    pub fn store_post(opcode: Opcode, value: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_store() && opcode.is_post_increment());
        Inst {
            opcode,
            dst: None,
            dst2: Some(base),
            srcs: [Some(base), Some(value), None],
            imm,
            target: 0,
        }
    }

    /// Conditional branch: `op rs1, rs2, target`.
    pub fn branch(opcode: Opcode, rs1: ArchReg, rs2: ArchReg, target: u32) -> Self {
        debug_assert!(opcode.is_cond_branch());
        Inst { opcode, dst: None, dst2: None, srcs: [Some(rs1), Some(rs2), None], imm: 0, target }
    }

    /// Unconditional direct jump, optionally linking.
    pub fn jal(link: Option<ArchReg>, target: u32) -> Self {
        Inst { opcode: Opcode::Jal, dst: link, dst2: None, srcs: [None, None, None], imm: 0, target }
    }

    /// Indirect jump to `rs1 + imm`, optionally linking.
    pub fn jalr(link: Option<ArchReg>, rs1: ArchReg, imm: i64) -> Self {
        Inst { opcode: Opcode::Jalr, dst: link, dst2: None, srcs: [Some(rs1), None, None], imm, target: 0 }
    }

    /// A no-operand instruction (`nop`, `halt`).
    pub fn bare(opcode: Opcode) -> Self {
        Inst { opcode, dst: None, dst2: None, srcs: [None, None, None], imm: 0, target: 0 }
    }

    /// The destination register the renamer must allocate storage for.
    ///
    /// `None` for instructions without a destination (stores, branches,
    /// `nop`, …) and for writes to the hard-wired zero register.
    pub fn dst(&self) -> Option<ArchReg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// The raw destination, including the zero register (used by the
    /// functional emulator, which must still discard the write).
    pub fn raw_dst(&self) -> Option<ArchReg> {
        self.dst
    }

    /// The second destination: the written-back base register of a
    /// post-increment memory operation. `None` otherwise (and for the
    /// zero register).
    pub fn dst2(&self) -> Option<ArchReg> {
        self.dst2.filter(|r| !r.is_zero())
    }

    /// Source registers the renamer must map, in operand order.
    ///
    /// Reads of the hard-wired zero register are excluded (hardware reads a
    /// constant zero; no dependence is created).
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// All source operands in positional form, including `xzr` reads.
    pub fn raw_sources(&self) -> &[Option<ArchReg>; 3] {
        &self.srcs
    }

    /// True when this instruction writes a destination register.
    pub fn has_dst(&self) -> bool {
        self.dst().is_some()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if self.opcode.is_mem() {
            if let Some(d) = self.dst {
                sep(f)?;
                write!(f, "{d}")?;
            }
            if self.opcode.is_store() {
                if let Some(v) = self.srcs[1] {
                    sep(f)?;
                    write!(f, "{v}")?;
                }
            }
            if let Some(base) = self.srcs[0] {
                sep(f)?;
                if self.opcode.is_post_increment() {
                    write!(f, "[{base}], #{}", self.imm)?;
                } else {
                    write!(f, "[{base}{:+}]", self.imm)?;
                }
            }
            return Ok(());
        }
        if let Some(d) = self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        for s in self.srcs.iter().flatten() {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if matches!(self.opcode, Opcode::Fli) {
            sep(f)?;
            write!(f, "#{}", f64::from_bits(self.imm as u64))?;
        } else if self.imm != 0 || matches!(self.opcode, Opcode::Li | Opcode::Addi) {
            sep(f)?;
            write!(f, "#{}", self.imm)?;
        }
        if self.opcode.is_branch() && !matches!(self.opcode, Opcode::Jalr) {
            sep(f)?;
            write!(f, "@{}", self.target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn dst_filters_zero_register() {
        let i = Inst::rrr(Opcode::Add, reg::zero(), reg::x(1), reg::x(2));
        assert_eq!(i.dst(), None);
        assert_eq!(i.raw_dst(), Some(reg::zero()));
        assert!(!i.has_dst());
    }

    #[test]
    fn sources_filter_zero_register() {
        let i = Inst::rrr(Opcode::Add, reg::x(0), reg::zero(), reg::x(2));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![reg::x(2)]);
    }

    #[test]
    fn store_operand_shape() {
        let s = Inst::store(Opcode::St, reg::x(5), reg::x(6), 16);
        assert_eq!(s.dst(), None);
        let srcs: Vec<_> = s.sources().collect();
        assert_eq!(srcs, vec![reg::x(6), reg::x(5)]);
    }

    #[test]
    fn fma_has_three_sources() {
        let i = Inst::rrrr(Opcode::Fma, reg::f(0), reg::f(1), reg::f(2), reg::f(3));
        assert_eq!(i.sources().count(), 3);
        assert_eq!(i.dst(), Some(reg::f(0)));
    }

    #[test]
    fn display_load_store_and_alu() {
        let l = Inst::load(Opcode::Ld, reg::x(1), reg::x(2), 8);
        assert_eq!(format!("{l}"), "ld x1, [x2+8]");
        let s = Inst::store(Opcode::St, reg::x(3), reg::x(4), -8);
        assert_eq!(format!("{s}"), "st x3, [x4-8]");
        let a = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        assert_eq!(format!("{a}"), "add x1, x2, x3");
        let b = Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 42);
        assert_eq!(format!("{b}"), "beq x1, x2, @42");
    }

    #[test]
    fn display_immediates() {
        let li = Inst::ri(Opcode::Li, reg::x(1), 0);
        assert_eq!(format!("{li}"), "li x1, #0");
        let fli = Inst::ri(Opcode::Fli, reg::f(1), 1.5f64.to_bits() as i64);
        assert_eq!(format!("{fli}"), "fli f1, #1.5");
    }

    #[test]
    fn jal_and_jalr_links() {
        let j = Inst::jal(Some(reg::lr()), 7);
        assert_eq!(j.dst(), Some(reg::lr()));
        assert_eq!(j.target, 7);
        let r = Inst::jalr(None, reg::lr(), 0);
        assert_eq!(r.dst(), None);
        assert_eq!(r.sources().count(), 1);
    }
}
