//! Instruction representation.

use crate::{ArchReg, Opcode};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which destination slot of an instruction a register write comes from.
///
/// Most instructions write at most the [`DefSlot::Primary`] slot;
/// post-increment memory operations additionally (or, for stores, only)
/// write their base register back through [`DefSlot::Writeback`]. Consumers
/// that key state per-definition (the dataflow profiler, the static
/// analyzer) use `(pc, DefSlot)` pairs so the two writes of one
/// instruction stay distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefSlot {
    /// The ordinary destination register (`rd` / `fd`, or the link
    /// register of a jump).
    Primary,
    /// The written-back base register of a post-increment memory op.
    Writeback,
}

/// A decoded TRISC instruction.
///
/// `Inst` is the unit the renaming stage operates on: it exposes exactly the
/// operand structure renaming hardware sees — at most one destination
/// register ([`Inst::dst`]) and up to three source registers
/// ([`Inst::sources`]). Reads of the hard-wired zero register and writes to
/// it are filtered out of those accessors, mirroring hardware which neither
/// renames `xzr` nor allocates storage for it.
///
/// # Examples
///
/// ```
/// use regshare_isa::{Inst, Opcode, reg};
///
/// let add = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
/// assert_eq!(add.dst(), Some(reg::x(1)));
/// assert_eq!(add.sources().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub opcode: Opcode,
    dst: Option<ArchReg>,
    dst2: Option<ArchReg>,
    srcs: [Option<ArchReg>; 3],
    /// Immediate operand; also carries the f64 bit pattern for [`Opcode::Fli`].
    pub imm: i64,
    /// Direct-branch target as an instruction index (filled by the assembler).
    pub target: u32,
}

impl Inst {
    /// Creates an instruction from raw parts.
    ///
    /// Prefer the shape-specific constructors ([`Inst::rrr`], [`Inst::rri`],
    /// …) or the [`crate::Asm`] builder; this exists for generators and
    /// tests that need full control.
    pub fn from_parts(
        opcode: Opcode,
        dst: Option<ArchReg>,
        srcs: [Option<ArchReg>; 3],
        imm: i64,
        target: u32,
    ) -> Self {
        Inst {
            opcode,
            dst,
            dst2: None,
            srcs,
            imm,
            target,
        }
    }

    /// Three-register instruction: `op rd, rs1, rs2`.
    pub fn rrr(opcode: Opcode, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> Self {
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [Some(rs1), Some(rs2), None],
            imm: 0,
            target: 0,
        }
    }

    /// Four-register instruction: `op rd, rs1, rs2, rs3` (FMA).
    pub fn rrrr(opcode: Opcode, rd: ArchReg, rs1: ArchReg, rs2: ArchReg, rs3: ArchReg) -> Self {
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [Some(rs1), Some(rs2), Some(rs3)],
            imm: 0,
            target: 0,
        }
    }

    /// Register-immediate instruction: `op rd, rs1, #imm`.
    pub fn rri(opcode: Opcode, rd: ArchReg, rs1: ArchReg, imm: i64) -> Self {
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [Some(rs1), None, None],
            imm,
            target: 0,
        }
    }

    /// Two-register instruction: `op rd, rs1`.
    pub fn rr(opcode: Opcode, rd: ArchReg, rs1: ArchReg) -> Self {
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [Some(rs1), None, None],
            imm: 0,
            target: 0,
        }
    }

    /// Destination-and-immediate instruction: `op rd, #imm`.
    pub fn ri(opcode: Opcode, rd: ArchReg, imm: i64) -> Self {
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [None, None, None],
            imm,
            target: 0,
        }
    }

    /// Load: `op rd, [rbase + #imm]`.
    pub fn load(opcode: Opcode, rd: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_load());
        Inst {
            opcode,
            dst: Some(rd),
            dst2: None,
            srcs: [Some(base), None, None],
            imm,
            target: 0,
        }
    }

    /// Store: `op rval, [rbase + #imm]`. Sources are `[base, value]`.
    pub fn store(opcode: Opcode, value: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_store());
        Inst {
            opcode,
            dst: None,
            dst2: None,
            srcs: [Some(base), Some(value), None],
            imm,
            target: 0,
        }
    }

    /// Post-increment load: `op rd, [rbase], #imm` — writes `rd` and
    /// writes back `rbase + imm` into `rbase` (second destination).
    /// # Panics
    ///
    /// Panics (debug) if `rd == base` — like ARM, writeback with
    /// `rd == rn` is not allowed.
    pub fn load_post(opcode: Opcode, rd: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_load() && opcode.is_post_increment());
        debug_assert!(rd != base, "post-increment load with rd == base");
        Inst {
            opcode,
            dst: Some(rd),
            dst2: Some(base),
            srcs: [Some(base), None, None],
            imm,
            target: 0,
        }
    }

    /// Post-increment store: `op rval, [rbase], #imm`. Sources are
    /// `[base, value]`; the base writeback is the only destination.
    pub fn store_post(opcode: Opcode, value: ArchReg, base: ArchReg, imm: i64) -> Self {
        debug_assert!(opcode.is_store() && opcode.is_post_increment());
        Inst {
            opcode,
            dst: None,
            dst2: Some(base),
            srcs: [Some(base), Some(value), None],
            imm,
            target: 0,
        }
    }

    /// Conditional branch: `op rs1, rs2, target`.
    pub fn branch(opcode: Opcode, rs1: ArchReg, rs2: ArchReg, target: u32) -> Self {
        debug_assert!(opcode.is_cond_branch());
        Inst {
            opcode,
            dst: None,
            dst2: None,
            srcs: [Some(rs1), Some(rs2), None],
            imm: 0,
            target,
        }
    }

    /// Unconditional direct jump, optionally linking.
    pub fn jal(link: Option<ArchReg>, target: u32) -> Self {
        Inst {
            opcode: Opcode::Jal,
            dst: link,
            dst2: None,
            srcs: [None, None, None],
            imm: 0,
            target,
        }
    }

    /// Indirect jump to `rs1 + imm`, optionally linking.
    pub fn jalr(link: Option<ArchReg>, rs1: ArchReg, imm: i64) -> Self {
        Inst {
            opcode: Opcode::Jalr,
            dst: link,
            dst2: None,
            srcs: [Some(rs1), None, None],
            imm,
            target: 0,
        }
    }

    /// A no-operand instruction (`nop`, `halt`).
    pub fn bare(opcode: Opcode) -> Self {
        Inst {
            opcode,
            dst: None,
            dst2: None,
            srcs: [None, None, None],
            imm: 0,
            target: 0,
        }
    }

    /// The destination register the renamer must allocate storage for.
    ///
    /// `None` for instructions without a destination (stores, branches,
    /// `nop`, …) and for writes to the hard-wired zero register.
    pub fn dst(&self) -> Option<ArchReg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// The raw destination, including the zero register (used by the
    /// functional emulator, which must still discard the write).
    pub fn raw_dst(&self) -> Option<ArchReg> {
        self.dst
    }

    /// The second destination: the written-back base register of a
    /// post-increment memory operation. `None` otherwise (and for the
    /// zero register).
    pub fn dst2(&self) -> Option<ArchReg> {
        self.dst2.filter(|r| !r.is_zero())
    }

    /// Source registers the renamer must map, in operand order.
    ///
    /// Reads of the hard-wired zero register are excluded (hardware reads a
    /// constant zero; no dependence is created).
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied().filter(|r| !r.is_zero())
    }

    /// All source operands in positional form, including `xzr` reads.
    pub fn raw_sources(&self) -> &[Option<ArchReg>; 3] {
        &self.srcs
    }

    /// True when this instruction writes a destination register.
    pub fn has_dst(&self) -> bool {
        self.dst().is_some()
    }

    /// Every register this instruction defines, tagged with the slot the
    /// write comes from, in slot order (primary before writeback).
    ///
    /// Writes to the hard-wired zero register are excluded, matching
    /// [`Inst::dst`] / [`Inst::dst2`]: the renamer allocates nothing for
    /// them and no later instruction can observe them. This is the single
    /// accessor operand-bookkeeping code should use instead of pairing
    /// `dst()` and `dst2()` by hand.
    pub fn defs(&self) -> impl Iterator<Item = (DefSlot, ArchReg)> + '_ {
        self.dst()
            .map(|r| (DefSlot::Primary, r))
            .into_iter()
            .chain(self.dst2().map(|r| (DefSlot::Writeback, r)))
    }

    /// The architectural registers this instruction reads, deduplicated,
    /// in first-occurrence operand order.
    ///
    /// Unlike [`Inst::sources`] (which is positional and may repeat a
    /// register, e.g. `add x1, x2, x2`), each register appears at most
    /// once — the granularity at which consumer counting and liveness
    /// operate: an instruction consumes a producer's value once no matter
    /// how many operand slots carry it. Zero-register reads are excluded.
    pub fn uses(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().enumerate().filter_map(move |(i, r)| {
            let r = (*r)?;
            if r.is_zero() {
                return None;
            }
            if self.srcs[..i].iter().flatten().any(|p| *p == r) {
                return None;
            }
            Some(r)
        })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if self.opcode.is_mem() {
            if let Some(d) = self.dst {
                sep(f)?;
                write!(f, "{d}")?;
            }
            if self.opcode.is_store() {
                if let Some(v) = self.srcs[1] {
                    sep(f)?;
                    write!(f, "{v}")?;
                }
            }
            if let Some(base) = self.srcs[0] {
                sep(f)?;
                if self.opcode.is_post_increment() {
                    write!(f, "[{base}], #{}", self.imm)?;
                } else {
                    write!(f, "[{base}{:+}]", self.imm)?;
                }
            }
            return Ok(());
        }
        if let Some(d) = self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        for s in self.srcs.iter().flatten() {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if matches!(self.opcode, Opcode::Fli) {
            sep(f)?;
            write!(f, "#{}", f64::from_bits(self.imm as u64))?;
        } else if self.imm != 0 || matches!(self.opcode, Opcode::Li | Opcode::Addi) {
            sep(f)?;
            write!(f, "#{}", self.imm)?;
        }
        if self.opcode.is_branch() && !matches!(self.opcode, Opcode::Jalr) {
            sep(f)?;
            write!(f, "@{}", self.target)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn dst_filters_zero_register() {
        let i = Inst::rrr(Opcode::Add, reg::zero(), reg::x(1), reg::x(2));
        assert_eq!(i.dst(), None);
        assert_eq!(i.raw_dst(), Some(reg::zero()));
        assert!(!i.has_dst());
    }

    #[test]
    fn sources_filter_zero_register() {
        let i = Inst::rrr(Opcode::Add, reg::x(0), reg::zero(), reg::x(2));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![reg::x(2)]);
    }

    #[test]
    fn store_operand_shape() {
        let s = Inst::store(Opcode::St, reg::x(5), reg::x(6), 16);
        assert_eq!(s.dst(), None);
        let srcs: Vec<_> = s.sources().collect();
        assert_eq!(srcs, vec![reg::x(6), reg::x(5)]);
    }

    #[test]
    fn fma_has_three_sources() {
        let i = Inst::rrrr(Opcode::Fma, reg::f(0), reg::f(1), reg::f(2), reg::f(3));
        assert_eq!(i.sources().count(), 3);
        assert_eq!(i.dst(), Some(reg::f(0)));
    }

    #[test]
    fn display_load_store_and_alu() {
        let l = Inst::load(Opcode::Ld, reg::x(1), reg::x(2), 8);
        assert_eq!(format!("{l}"), "ld x1, [x2+8]");
        let s = Inst::store(Opcode::St, reg::x(3), reg::x(4), -8);
        assert_eq!(format!("{s}"), "st x3, [x4-8]");
        let a = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        assert_eq!(format!("{a}"), "add x1, x2, x3");
        let b = Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 42);
        assert_eq!(format!("{b}"), "beq x1, x2, @42");
    }

    #[test]
    fn display_immediates() {
        let li = Inst::ri(Opcode::Li, reg::x(1), 0);
        assert_eq!(format!("{li}"), "li x1, #0");
        let fli = Inst::ri(Opcode::Fli, reg::f(1), 1.5f64.to_bits() as i64);
        assert_eq!(format!("{fli}"), "fli f1, #1.5");
    }

    /// Builds a representative instruction for an opcode from its declared
    /// operand shape, using distinct non-zero registers in every slot.
    fn representative(op: Opcode) -> Inst {
        let shape = op.operand_shape();
        let fp = op.class() == crate::OpClass::FpAlu
            || op.class() == crate::OpClass::FpMul
            || op.class() == crate::OpClass::FpDiv;
        let d = if fp { reg::f(1) } else { reg::x(1) };
        match op {
            Opcode::Jal => Inst::jal(Some(reg::lr()), 0),
            Opcode::Jalr => Inst::jalr(Some(reg::lr()), reg::x(2), 0),
            _ if op.is_post_increment() && op.is_load() => {
                let rd = if matches!(op, Opcode::FldPost) {
                    reg::f(1)
                } else {
                    reg::x(1)
                };
                Inst::load_post(op, rd, reg::x(2), 8)
            }
            _ if op.is_post_increment() => {
                let v = if matches!(op, Opcode::FstPost) {
                    reg::f(3)
                } else {
                    reg::x(3)
                };
                Inst::store_post(op, v, reg::x(2), 8)
            }
            _ if op.is_store() => {
                let v = if matches!(op, Opcode::Fst) {
                    reg::f(3)
                } else {
                    reg::x(3)
                };
                Inst::store(op, v, reg::x(2), 0)
            }
            _ if op.is_load() => {
                let rd = if matches!(op, Opcode::Fld) {
                    reg::f(1)
                } else {
                    reg::x(1)
                };
                Inst::load(op, rd, reg::x(2), 0)
            }
            _ if op.is_cond_branch() => Inst::branch(op, reg::x(2), reg::x(3), 0),
            _ => match shape.num_srcs {
                0 if shape.has_dst => Inst::ri(op, d, 0),
                1 if shape.has_dst => Inst::rr(op, d, reg::f(2)),
                2 if shape.has_dst => Inst::rrr(op, d, reg::f(2), reg::f(3)),
                3 if shape.has_dst => Inst::rrrr(op, d, reg::f(2), reg::f(3), reg::f(4)),
                _ => Inst::bare(op),
            },
        }
    }

    #[test]
    fn all_table_is_complete_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<Opcode> = Opcode::ALL.iter().copied().collect();
        assert_eq!(
            set.len(),
            Opcode::ALL.len(),
            "duplicate entry in Opcode::ALL"
        );
        // Mnemonics must be pairwise distinct too (disassembler round-trip).
        let names: HashSet<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(names.len(), Opcode::ALL.len());
    }

    #[test]
    fn defs_and_uses_match_operand_shape_for_every_opcode() {
        for op in Opcode::ALL {
            let shape = op.operand_shape();
            let inst = representative(op);
            let defs: Vec<_> = inst.defs().collect();
            let uses: Vec<_> = inst.uses().collect();
            let want_defs = shape.has_dst as usize + shape.has_base_writeback as usize;
            assert_eq!(
                defs.len(),
                want_defs,
                "{op}: defs() disagrees with operand_shape()"
            );
            assert_eq!(
                uses.len(),
                shape.num_srcs as usize,
                "{op}: uses() disagrees with operand_shape()"
            );
            // Slot tagging: the writeback def, when present, is the base
            // register (positional source 0) tagged DefSlot::Writeback.
            if shape.has_base_writeback {
                let wb = defs.iter().find(|(s, _)| *s == DefSlot::Writeback);
                assert_eq!(
                    wb.map(|&(_, r)| r),
                    inst.raw_sources()[0],
                    "{op}: writeback def"
                );
            }
            if shape.has_dst && !shape.has_base_writeback {
                assert!(defs.iter().all(|(s, _)| *s == DefSlot::Primary), "{op}");
            }
            // defs() and sources() must agree with the legacy accessors.
            assert_eq!(
                inst.dst(),
                defs.iter()
                    .find(|(s, _)| *s == DefSlot::Primary)
                    .map(|&(_, r)| r)
            );
            assert_eq!(
                inst.dst2(),
                defs.iter()
                    .find(|(s, _)| *s == DefSlot::Writeback)
                    .map(|&(_, r)| r)
            );
            // The shape's target flag matches the branch predicate for
            // direct-target instructions.
            assert_eq!(
                shape.has_target,
                op.is_cond_branch() || op == Opcode::Jal,
                "{op}"
            );
        }
    }

    #[test]
    fn uses_deduplicates_repeated_operands() {
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(2));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![reg::x(2)]);
        assert_eq!(i.sources().count(), 2, "sources() stays positional");
        let fma = Inst::rrrr(Opcode::Fma, reg::f(1), reg::f(2), reg::f(2), reg::f(2));
        assert_eq!(fma.uses().count(), 1);
    }

    #[test]
    fn defs_filter_zero_register() {
        let i = Inst::rrr(Opcode::Add, reg::zero(), reg::x(1), reg::x(2));
        assert_eq!(i.defs().count(), 0);
        let j = Inst::jal(None, 3);
        assert_eq!(j.defs().count(), 0);
    }

    #[test]
    fn post_increment_defs_both_slots() {
        let l = Inst::load_post(Opcode::LdPost, reg::x(1), reg::x(2), 8);
        let defs: Vec<_> = l.defs().collect();
        assert_eq!(
            defs,
            vec![
                (DefSlot::Primary, reg::x(1)),
                (DefSlot::Writeback, reg::x(2))
            ]
        );
        let s = Inst::store_post(Opcode::StPost, reg::x(3), reg::x(2), 8);
        let defs: Vec<_> = s.defs().collect();
        assert_eq!(defs, vec![(DefSlot::Writeback, reg::x(2))]);
        assert_eq!(s.uses().collect::<Vec<_>>(), vec![reg::x(2), reg::x(3)]);
    }

    #[test]
    fn jal_and_jalr_links() {
        let j = Inst::jal(Some(reg::lr()), 7);
        assert_eq!(j.dst(), Some(reg::lr()));
        assert_eq!(j.target, 7);
        let r = Inst::jalr(None, reg::lr(), 0);
        assert_eq!(r.dst(), None);
        assert_eq!(r.sources().count(), 1);
    }
}
