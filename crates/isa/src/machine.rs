//! The functional reference emulator.

use crate::exec::{self, Action};
use crate::{ArchReg, Inst, Memory, Program, RegClass, NUM_FP_REGS, NUM_INT_REGS};
use std::fmt;

/// A record of one retired instruction, emitted by [`Machine::step`].
///
/// The timing simulator's tests compare their committed stream against this
/// record-for-record; the workload analysis passes (Figs. 1–3 of the paper)
/// consume it as the dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// Instruction index of the retired instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// The PC of the next instruction.
    pub next_pc: u64,
    /// Branch outcome, for control instructions.
    pub taken: Option<bool>,
    /// Effective address, for memory instructions.
    pub ea: Option<u64>,
    /// Bit-pattern value written to the destination register, if any.
    pub wvalue: Option<u64>,
    /// Bit-pattern value written to the second destination (the written-
    /// back base register of post-increment memory operations).
    pub wvalue2: Option<u64>,
}

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction retired.
    Halted,
    /// The instruction budget was exhausted first.
    MaxInstructions,
}

/// Errors produced by the functional emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The PC left the program (a wild indirect jump or a fall-through off
    /// the end).
    PcOutOfRange {
        /// The offending PC.
        pc: u64,
        /// Program length in instructions.
        len: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::PcOutOfRange { pc, len } => {
                write!(f, "pc {pc} out of range for program of {len} instructions")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// A snapshot of the architectural register state, for oracle comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Integer registers `x0..x31` (x31 always 0).
    pub int: [u64; NUM_INT_REGS],
    /// Floating-point registers as bit patterns.
    pub fp: [u64; NUM_FP_REGS],
}

/// The functional reference emulator: executes a [`Program`] one
/// instruction at a time, in program order, with no timing model.
///
/// `Machine` is the correctness oracle for the out-of-order timing
/// simulator: every timing configuration must commit exactly the stream of
/// [`Retired`] records the machine produces and end with the same
/// architectural state and memory.
///
/// # Examples
///
/// ```
/// use regshare_isa::{Asm, Machine, StopReason, reg};
///
/// let mut a = Asm::new();
/// a.li(reg::x(1), 2);
/// a.mul(reg::x(1), reg::x(1), reg::x(1));
/// a.halt();
/// let mut m = Machine::new(a.assemble());
/// assert_eq!(m.run(10).unwrap(), StopReason::Halted);
/// assert_eq!(m.int_reg(reg::x(1)), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    program: Program,
    mem: Memory,
    int: [u64; NUM_INT_REGS],
    fp: [u64; NUM_FP_REGS],
    pc: u64,
    halted: bool,
    retired: u64,
}

impl Machine {
    /// Creates a machine at the program entry with the program's data image.
    pub fn new(program: Program) -> Self {
        let mem = program.data().clone();
        let pc = program.entry() as u64;
        Machine {
            program,
            mem,
            int: [0; NUM_INT_REGS],
            fp: [0; NUM_FP_REGS],
            pc,
            halted: false,
            retired: 0,
        }
    }

    /// Reads a register as a bit pattern. Reads of `xzr` return 0.
    pub fn reg_bits(&self, r: ArchReg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        match r.class() {
            RegClass::Int => self.int[r.index() as usize],
            RegClass::Fp => self.fp[r.index() as usize],
        }
    }

    /// Reads an integer register.
    pub fn int_reg(&self, r: ArchReg) -> u64 {
        assert_eq!(r.class(), RegClass::Int, "int_reg on fp register");
        self.reg_bits(r)
    }

    /// Reads a floating-point register.
    pub fn fp_reg(&self, r: ArchReg) -> f64 {
        assert_eq!(r.class(), RegClass::Fp, "fp_reg on int register");
        f64::from_bits(self.reg_bits(r))
    }

    /// Writes a register; writes to `xzr` are discarded.
    pub fn write_reg(&mut self, r: ArchReg, bits: u64) {
        if r.is_zero() {
            return;
        }
        match r.class() {
            RegClass::Int => self.int[r.index() as usize] = bits,
            RegClass::Fp => self.fp[r.index() as usize] = bits,
        }
    }

    /// The current PC (instruction index).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// True once a `halt` has retired.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The data memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to data memory (for tests and fault handlers).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Snapshot of the architectural register state.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            int: self.int,
            fp: self.fp,
        }
    }

    /// Executes one instruction.
    ///
    /// Returns the retired-instruction record, or `None` if the machine has
    /// already halted.
    ///
    /// # Errors
    ///
    /// [`MachineError::PcOutOfRange`] when control flow leaves the program.
    pub fn step(&mut self) -> Result<Option<Retired>, MachineError> {
        if self.halted {
            return Ok(None);
        }
        let inst = *self
            .program
            .fetch(self.pc)
            .ok_or(MachineError::PcOutOfRange {
                pc: self.pc,
                len: self.program.len(),
            })?;

        let mut ops = [0u64; 3];
        for (slot, src) in ops.iter_mut().zip(inst.raw_sources()) {
            if let Some(r) = src {
                *slot = self.reg_bits(*r);
            }
        }

        let action = exec::evaluate(&inst, self.pc, ops);
        let mut record = Retired {
            pc: self.pc,
            inst,
            next_pc: action.next_pc(self.pc),
            taken: None,
            ea: None,
            wvalue: None,
            wvalue2: None,
        };

        match action {
            Action::Value(bits) => {
                if let Some(d) = inst.raw_dst() {
                    self.write_reg(d, bits);
                }
                if inst.dst().is_some() {
                    record.wvalue = Some(bits);
                }
            }
            Action::Load { ea, width } => {
                let bits = self.mem.read(ea, width);
                record.ea = Some(ea);
                if let Some(d) = inst.raw_dst() {
                    self.write_reg(d, bits);
                }
                if inst.dst().is_some() {
                    record.wvalue = Some(bits);
                }
            }
            Action::Store { ea, width, value } => {
                self.mem.write(ea, value, width);
                record.ea = Some(ea);
            }
            Action::LoadPost {
                ea,
                width,
                writeback,
            } => {
                let bits = self.mem.read(ea, width);
                record.ea = Some(ea);
                if let Some(d) = inst.raw_dst() {
                    self.write_reg(d, bits);
                }
                if inst.dst().is_some() {
                    record.wvalue = Some(bits);
                }
                if let Some(d2) = inst.dst2() {
                    self.write_reg(d2, writeback);
                    record.wvalue2 = Some(writeback);
                }
            }
            Action::StorePost {
                ea,
                width,
                value,
                writeback,
            } => {
                self.mem.write(ea, value, width);
                record.ea = Some(ea);
                if let Some(d2) = inst.dst2() {
                    self.write_reg(d2, writeback);
                    record.wvalue2 = Some(writeback);
                }
            }
            Action::Branch { taken, link, .. } => {
                record.taken = Some(taken);
                if let (Some(d), Some(ret)) = (inst.raw_dst(), link) {
                    self.write_reg(d, ret);
                    if inst.dst().is_some() {
                        record.wvalue = Some(ret);
                    }
                }
            }
            Action::Nop => {}
            Action::Halt => {
                self.halted = true;
            }
        }

        self.pc = record.next_pc;
        self.retired += 1;
        Ok(Some(record))
    }

    /// Runs until `halt` or until `max_instructions` have retired.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from [`Machine::step`].
    pub fn run(&mut self, max_instructions: u64) -> Result<StopReason, MachineError> {
        while self.retired < max_instructions {
            if self.step()?.is_none() {
                return Ok(StopReason::Halted);
            }
            if self.halted {
                return Ok(StopReason::Halted);
            }
        }
        Ok(StopReason::MaxInstructions)
    }

    /// Runs like [`Machine::run`], handing each retired record to
    /// `observe` instead of collecting a trace.
    ///
    /// This is the functional-warming fast path: the observer updates
    /// warmable microarchitectural state (caches, TLB, predictors) while
    /// the emulator advances architectural state, with no per-record
    /// allocation and a single fused loop.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from [`Machine::step`].
    pub fn run_observe(
        &mut self,
        max_instructions: u64,
        mut observe: impl FnMut(&Retired),
    ) -> Result<StopReason, MachineError> {
        while self.retired < max_instructions {
            match self.step()? {
                Some(r) => observe(&r),
                None => return Ok(StopReason::Halted),
            }
            if self.halted {
                return Ok(StopReason::Halted);
            }
        }
        Ok(StopReason::MaxInstructions)
    }

    /// Runs like [`Machine::run`] but collects the retired-instruction
    /// trace.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from [`Machine::step`].
    pub fn run_trace(
        &mut self,
        max_instructions: u64,
    ) -> Result<(Vec<Retired>, StopReason), MachineError> {
        let mut trace = Vec::new();
        while self.retired < max_instructions {
            match self.step()? {
                Some(r) => trace.push(r),
                None => return Ok((trace, StopReason::Halted)),
            }
            if self.halted {
                return Ok((trace, StopReason::Halted));
            }
        }
        Ok((trace, StopReason::MaxInstructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Asm, DataBuilder};

    #[test]
    fn writes_to_zero_register_are_discarded() {
        let mut a = Asm::new();
        a.li(reg::zero(), 99);
        a.halt();
        let mut m = Machine::new(a.assemble());
        m.run(10).unwrap();
        assert_eq!(m.reg_bits(reg::zero()), 0);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut d = DataBuilder::new(0x1000);
        let src = d.u64(1234);
        let mut a = Asm::with_data(d);
        a.li(reg::x(1), src as i64);
        a.ld(reg::x(2), reg::x(1), 0);
        a.addi(reg::x(2), reg::x(2), 1);
        a.st(reg::x(2), reg::x(1), 8);
        a.halt();
        let mut m = Machine::new(a.assemble());
        m.run(10).unwrap();
        assert_eq!(m.memory().read_u64(src + 8), 1235);
    }

    #[test]
    fn fp_pipeline_through_memory() {
        let mut d = DataBuilder::new(0x2000);
        let xs = d.f64_array(&[1.0, 2.0, 3.0]);
        let out = d.zeros(8);
        let mut a = Asm::with_data(d);
        a.li(reg::x(1), xs as i64);
        a.fld(reg::f(0), reg::x(1), 0);
        a.fld(reg::f(1), reg::x(1), 8);
        a.fld(reg::f(2), reg::x(1), 16);
        a.fma(reg::f(3), reg::f(0), reg::f(1), reg::f(2)); // 1*2+3 = 5
        a.li(reg::x(2), out as i64);
        a.fst(reg::f(3), reg::x(2), 0);
        a.halt();
        let mut m = Machine::new(a.assemble());
        m.run(20).unwrap();
        assert_eq!(m.memory().read_f64(out), 5.0);
    }

    #[test]
    fn loop_retires_expected_count() {
        let mut a = Asm::new();
        a.li(reg::x(0), 10);
        let top = a.label();
        a.bind(top);
        a.subi(reg::x(0), reg::x(0), 1);
        a.bne(reg::x(0), reg::zero(), top);
        a.halt();
        let mut m = Machine::new(a.assemble());
        let (trace, stop) = m.run_trace(1_000).unwrap();
        assert_eq!(stop, StopReason::Halted);
        // 1 li + 10*(sub+bne) + 1 halt
        assert_eq!(trace.len(), 22);
        let taken: usize = trace.iter().filter(|r| r.taken == Some(true)).count();
        assert_eq!(taken, 9); // final bne falls through
    }

    #[test]
    fn call_and_return() {
        let mut a = Asm::new();
        let func = a.label();
        a.li(reg::x(1), 5);
        a.call(func);
        a.addi(reg::x(1), reg::x(1), 100);
        a.halt();
        a.bind(func);
        a.addi(reg::x(1), reg::x(1), 1);
        a.ret();
        let mut m = Machine::new(a.assemble());
        m.run(100).unwrap();
        assert_eq!(m.int_reg(reg::x(1)), 106);
    }

    #[test]
    fn max_instructions_stops_infinite_loop() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.jmp(top);
        let mut m = Machine::new(a.assemble());
        assert_eq!(m.run(100).unwrap(), StopReason::MaxInstructions);
        assert_eq!(m.retired(), 100);
    }

    #[test]
    fn wild_jalr_reports_pc_out_of_range() {
        let mut a = Asm::new();
        a.li(reg::x(1), 1_000_000);
        a.jalr(None, reg::x(1), 0);
        a.halt();
        let mut m = Machine::new(a.assemble());
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, MachineError::PcOutOfRange { .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn step_after_halt_returns_none() {
        let mut a = Asm::new();
        a.halt();
        let mut m = Machine::new(a.assemble());
        m.run(10).unwrap();
        assert!(m.step().unwrap().is_none());
        assert!(m.is_halted());
    }

    #[test]
    fn arch_state_snapshot_reflects_registers() {
        let mut a = Asm::new();
        a.li(reg::x(3), 7);
        a.fli(reg::f(2), 2.5);
        a.halt();
        let mut m = Machine::new(a.assemble());
        m.run(10).unwrap();
        let s = m.arch_state();
        assert_eq!(s.int[3], 7);
        assert_eq!(f64::from_bits(s.fp[2]), 2.5);
    }

    #[test]
    fn retired_records_carry_effective_addresses() {
        let mut a = Asm::new();
        a.li(reg::x(1), 0x100);
        a.st(reg::x(1), reg::x(1), 8);
        a.halt();
        let mut m = Machine::new(a.assemble());
        let (trace, _) = m.run_trace(10).unwrap();
        assert_eq!(trace[1].ea, Some(0x108));
        assert_eq!(trace[1].wvalue, None);
    }
}
