//! Programs: code plus an initial data image.

use crate::{DecodedImage, Inst, Memory, ShareHintTable};
use std::sync::Arc;

/// A complete TRISC program: instructions, an entry point and the initial
/// contents of data memory.
///
/// Instruction addresses are instruction indices; the convention `pc_bytes =
/// index * 4` is used wherever a byte PC is needed (I-cache, BTB, predictor
/// hashes).
///
/// # Examples
///
/// ```
/// use regshare_isa::{Asm, reg};
///
/// let mut a = Asm::new();
/// a.halt();
/// let p = a.assemble();
/// assert_eq!(p.len(), 1);
/// ```
/// A program is a cheap handle: the instruction list, data image, hint
/// table and predecoded sidecar live behind one shared allocation, so
/// `Program::clone` (window checkpoints, time-parallel slices, the
/// lockstep oracle, `par_map` fan-out) copies a pointer instead of the
/// whole image. The contents are immutable after construction, which is
/// what makes the sharing sound.
#[derive(Debug, Clone)]
pub struct Program {
    inner: Arc<ProgramInner>,
}

#[derive(Debug)]
struct ProgramInner {
    insts: Vec<Inst>,
    entry: u32,
    data: Memory,
    hints: Option<ShareHintTable>,
    decoded: DecodedImage,
}

impl Program {
    /// Creates a program from parts.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range or any branch target points past
    /// the end of the instruction list.
    pub fn new(insts: Vec<Inst>, entry: u32, data: Memory) -> Self {
        assert!(
            (entry as usize) < insts.len().max(1),
            "entry point {entry} out of range for {} instructions",
            insts.len()
        );
        for (idx, inst) in insts.iter().enumerate() {
            if inst.opcode.is_branch() && inst.opcode != crate::Opcode::Jalr {
                assert!(
                    (inst.target as usize) < insts.len(),
                    "instruction {idx} branches to {} but program has {} instructions",
                    inst.target,
                    insts.len()
                );
            }
        }
        let decoded = DecodedImage::build(&insts, None);
        Program {
            inner: Arc::new(ProgramInner {
                insts,
                entry,
                data,
                hints: None,
                decoded,
            }),
        }
    }

    /// Attaches a static sharing-hint sidecar table (rebuilding the
    /// predecoded image so it carries the hint nibbles).
    ///
    /// # Panics
    ///
    /// Panics if the table does not cover exactly this program's
    /// instructions.
    pub fn with_hints(self, hints: ShareHintTable) -> Self {
        assert!(
            hints.len() == self.inner.insts.len(),
            "hint table covers {} instructions but program has {}",
            hints.len(),
            self.inner.insts.len()
        );
        // Setup-time path: unshare (or copy) the inner image to attach
        // the table, then re-predecode with the nibbles folded in.
        let mut inner = match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner,
            Err(shared) => ProgramInner {
                insts: shared.insts.clone(),
                entry: shared.entry,
                data: shared.data.clone(),
                hints: shared.hints.clone(),
                decoded: shared.decoded.clone(),
            },
        };
        inner.decoded = DecodedImage::build(&inner.insts, Some(&hints));
        inner.hints = Some(hints);
        Program {
            inner: Arc::new(inner),
        }
    }

    /// The attached sharing-hint table, if any.
    pub fn hints(&self) -> Option<&ShareHintTable> {
        self.inner.hints.as_ref()
    }

    /// The predecoded per-PC sidecar (built once at construction).
    #[inline(always)]
    pub fn decoded(&self) -> &DecodedImage {
        &self.inner.decoded
    }

    /// The instruction at `index`, if in range.
    #[inline(always)]
    pub fn fetch(&self, index: u64) -> Option<&Inst> {
        self.inner.insts.get(index as usize)
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.inner.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.inner.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.inner.insts.is_empty()
    }

    /// The entry instruction index.
    pub fn entry(&self) -> u32 {
        self.inner.entry
    }

    /// The initial data image.
    pub fn data(&self) -> &Memory {
        &self.inner.data
    }

    /// Converts an instruction index into a byte PC (index × 4).
    pub fn byte_pc(index: u64) -> u64 {
        index * 4
    }

    /// Disassembles the whole program, one instruction per line.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, inst) in self.inner.insts.iter().enumerate() {
            out.push_str(&format!("{i:5}: {inst}\n"));
        }
        out
    }
}

/// Builds an initial data image at increasing addresses.
///
/// # Examples
///
/// ```
/// use regshare_isa::DataBuilder;
///
/// let mut d = DataBuilder::new(0x1000);
/// let xs = d.f64_array(&[1.0, 2.0]);
/// let n = d.u64(7);
/// assert_eq!(xs, 0x1000);
/// assert_eq!(n, 0x1010);
/// let mem = d.build();
/// assert_eq!(mem.read_u64(n), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DataBuilder {
    mem: Memory,
    cursor: u64,
}

impl DataBuilder {
    /// Starts laying out data at `base`.
    pub fn new(base: u64) -> Self {
        DataBuilder {
            mem: Memory::new(),
            cursor: base,
        }
    }

    /// Aligns the cursor up to `align` bytes (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align(&mut self, align: u64) -> &mut Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.cursor = (self.cursor + align - 1) & !(align - 1);
        self
    }

    /// Current cursor address.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Reserves `bytes` zeroed bytes; returns their base address.
    pub fn zeros(&mut self, bytes: u64) -> u64 {
        let base = self.cursor;
        self.cursor += bytes;
        base
    }

    /// Appends one u64; returns its address.
    pub fn u64(&mut self, value: u64) -> u64 {
        let addr = self.cursor;
        self.mem.write_u64(addr, value);
        self.cursor += 8;
        addr
    }

    /// Appends a u64 array; returns its base address.
    pub fn u64_array(&mut self, values: &[u64]) -> u64 {
        let base = self.cursor;
        for v in values {
            self.u64(*v);
        }
        base
    }

    /// Appends one f64; returns its address.
    pub fn f64(&mut self, value: f64) -> u64 {
        let addr = self.cursor;
        self.mem.write_f64(addr, value);
        self.cursor += 8;
        addr
    }

    /// Appends an f64 array; returns its base address.
    pub fn f64_array(&mut self, values: &[f64]) -> u64 {
        let base = self.cursor;
        for v in values {
            self.f64(*v);
        }
        base
    }

    /// Appends raw bytes; returns their base address.
    pub fn bytes(&mut self, values: &[u8]) -> u64 {
        let base = self.cursor;
        for (i, b) in values.iter().enumerate() {
            self.mem.write_u8(base + i as u64, *b);
        }
        self.cursor += values.len() as u64;
        base
    }

    /// Finishes and returns the memory image.
    pub fn build(self) -> Memory {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Opcode};

    #[test]
    fn program_validates_entry() {
        let insts = vec![Inst::bare(Opcode::Halt)];
        let p = Program::new(insts, 0, Memory::new());
        assert_eq!(p.entry(), 0);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn program_rejects_bad_entry() {
        Program::new(vec![Inst::bare(Opcode::Halt)], 5, Memory::new());
    }

    #[test]
    #[should_panic(expected = "branches to")]
    fn program_rejects_dangling_branch() {
        let insts = vec![Inst::branch(Opcode::Beq, reg::x(0), reg::x(1), 99)];
        Program::new(insts, 0, Memory::new());
    }

    #[test]
    fn byte_pc_is_index_times_four() {
        assert_eq!(Program::byte_pc(3), 12);
    }

    #[test]
    fn data_builder_layout_and_alignment() {
        let mut d = DataBuilder::new(10);
        d.align(8);
        assert_eq!(d.cursor(), 16);
        let a = d.u64_array(&[1, 2, 3]);
        assert_eq!(a, 16);
        let z = d.zeros(5);
        assert_eq!(z, 40);
        d.align(8);
        let b = d.bytes(&[9, 8]);
        assert_eq!(b, 48);
        let mem = d.build();
        assert_eq!(mem.read_u64(24), 2);
        assert_eq!(mem.read_u8(49), 8);
    }

    #[test]
    fn disassemble_lists_every_instruction() {
        let insts = vec![Inst::bare(Opcode::Nop), Inst::bare(Opcode::Halt)];
        let p = Program::new(insts, 0, Memory::new());
        let d = p.disassemble();
        assert!(d.contains("nop"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 2);
    }
}
