#![warn(missing_docs)]

//! TRISC: the tiny RISC instruction set used by the `regshare` simulator.
//!
//! TRISC is a 64-bit load/store architecture in the spirit of ARMv8 /
//! RISC-V, designed so that register-renaming research can be carried out
//! without carrying a full commercial ISA:
//!
//! * 32 integer logical registers (`x0..x31`, with `x31` hard-wired to
//!   zero) and 32 floating-point logical registers (`f0..f31`) — decoupled
//!   register files, as in the paper's evaluation.
//! * Three-operand register arithmetic, immediate forms, compare-into-
//!   register, fused multiply-add, compare-and-branch (no condition flags —
//!   flags would complicate renaming without adding anything to the study).
//! * Byte-addressable little-endian memory with 1/4/8-byte integer accesses
//!   and 8-byte floating-point accesses.
//!
//! The crate provides:
//!
//! * [`Inst`]/[`Opcode`]/[`ArchReg`] — the instruction representation,
//!   with the operand accessors renaming hardware needs ([`Inst::dst`],
//!   [`Inst::sources`]).
//! * [`Asm`] — an assembler-style program builder with labels.
//! * [`Program`] and [`Memory`] — code plus an initial data image.
//! * [`exec`] — pure instruction semantics shared by the functional
//!   emulator and the timing simulator's execute stage.
//! * [`Machine`] — the functional reference emulator, the correctness
//!   oracle for every timing-simulator configuration.
//!
//! # Examples
//!
//! ```
//! use regshare_isa::{Asm, Machine, reg};
//!
//! // sum = 10 + 32
//! let mut a = Asm::new();
//! a.li(reg::x(1), 10);
//! a.li(reg::x(2), 32);
//! a.add(reg::x(0), reg::x(1), reg::x(2));
//! a.halt();
//!
//! let mut m = Machine::new(a.assemble());
//! m.run(1_000).unwrap();
//! assert_eq!(m.int_reg(reg::x(0)), 42);
//! ```

mod asm;
mod decoded;
pub mod exec;
mod hart;
mod hints;
mod inst;
mod machine;
mod memory;
mod op;
mod parse;
mod program;
mod reg_impl;

pub use asm::{Asm, Label};
pub use decoded::{DecodedImage, DecodedOp};
pub use hart::{HartId, MAX_HARTS};
pub use hints::{ShareHint, ShareHintTable};
pub use inst::{DefSlot, Inst};
pub use machine::{Machine, MachineError, Retired, StopReason};
pub use memory::Memory;
pub use op::{OpClass, Opcode, OperandShape};
pub use parse::{parse_program, ParseError};
pub use program::{DataBuilder, Program};
pub use reg_impl::{ArchReg, RegClass, NUM_FP_REGS, NUM_INT_REGS};

/// Convenience constructors for architectural registers.
///
/// # Examples
///
/// ```
/// use regshare_isa::{reg, RegClass};
///
/// assert_eq!(reg::x(3).class(), RegClass::Int);
/// assert_eq!(reg::f(3).class(), RegClass::Fp);
/// ```
pub mod reg {
    use super::{ArchReg, RegClass};

    /// The integer register `x<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn x(n: u8) -> ArchReg {
        ArchReg::new(RegClass::Int, n)
    }

    /// The floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn f(n: u8) -> ArchReg {
        ArchReg::new(RegClass::Fp, n)
    }

    /// The always-zero integer register (`x31`).
    pub fn zero() -> ArchReg {
        x(super::reg_impl::ZERO_REG)
    }

    /// The conventional stack-pointer register (`x29`).
    pub fn sp() -> ArchReg {
        x(29)
    }

    /// The conventional link register (`x30`).
    pub fn lr() -> ArchReg {
        x(30)
    }
}
