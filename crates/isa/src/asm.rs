//! Assembler-style program builder with labels.

use crate::{
    ArchReg, DataBuilder, DefSlot, Inst, Memory, Opcode, Program, ShareHint, ShareHintTable,
};

/// A forward-referenceable code label.
///
/// Create with [`Asm::label`], place with [`Asm::bind`], and use as a branch
/// target before or after binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builds TRISC programs instruction by instruction.
///
/// The builder follows assembler conventions: emit instructions in order,
/// create labels with [`Asm::label`], bind them with [`Asm::bind`], and
/// resolve everything with [`Asm::assemble`].
///
/// # Examples
///
/// A count-down loop:
///
/// ```
/// use regshare_isa::{Asm, Machine, reg};
///
/// let mut a = Asm::new();
/// a.li(reg::x(0), 5);
/// a.li(reg::x(1), 0);
/// let top = a.label();
/// a.bind(top);
/// a.addi(reg::x(1), reg::x(1), 1); // count iterations
/// a.subi(reg::x(0), reg::x(0), 1);
/// a.bne(reg::x(0), reg::zero(), top);
/// a.halt();
///
/// let mut m = Machine::new(a.assemble());
/// m.run(100).unwrap();
/// assert_eq!(m.int_reg(reg::x(1)), 5);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
    data: Option<Memory>,
    pending_hint: Option<[ShareHint; 2]>,
    hint_records: Vec<(usize, [ShareHint; 2])>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Creates a builder whose program will carry `data` as its initial
    /// memory image.
    pub fn with_data(data: DataBuilder) -> Self {
        Asm {
            data: Some(data.build()),
            ..Asm::default()
        }
    }

    /// Attaches a data image (replacing any previous one).
    pub fn set_data(&mut self, data: Memory) -> &mut Self {
        self.data = Some(data);
        self
    }

    /// Creates a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.insts.len() as u32);
        self
    }

    /// Index the next emitted instruction will occupy.
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Attaches a sharing hint to the *next* emitted instruction's
    /// primary destination (the writeback slot stays
    /// [`ShareHint::Unknown`]). Mirrors the `.hint` assembly directive.
    pub fn hint(&mut self, primary: ShareHint) -> &mut Self {
        self.hint_slots(primary, ShareHint::Unknown)
    }

    /// Attaches sharing hints to both destination slots of the *next*
    /// emitted instruction.
    pub fn hint_slots(&mut self, primary: ShareHint, writeback: ShareHint) -> &mut Self {
        self.pending_hint = Some([primary, writeback]);
        self
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        if let Some(h) = self.pending_hint.take() {
            self.hint_records.push((self.insts.len(), h));
        }
        self.insts.push(inst);
        self
    }

    fn push_branch(&mut self, inst: Inst, target: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), target));
        self.insts.push(inst);
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound, if the program is
    /// empty, or if a hint was requested but no instruction followed it.
    pub fn assemble(mut self) -> Program {
        assert!(
            self.pending_hint.is_none(),
            "hint requested but no instruction follows it"
        );
        for (idx, label) in &self.fixups {
            let target = self.labels[label.0]
                .unwrap_or_else(|| panic!("label {} referenced but never bound", label.0));
            self.insts[*idx].target = target;
        }
        assert!(!self.insts.is_empty(), "cannot assemble an empty program");
        let mut program = Program::new(self.insts, 0, self.data.unwrap_or_default());
        if !self.hint_records.is_empty() {
            let mut table = ShareHintTable::new(program.len());
            for (pc, [primary, writeback]) in self.hint_records {
                table.set(pc, DefSlot::Primary, primary);
                table.set(pc, DefSlot::Writeback, writeback);
            }
            program = program.with_hints(table);
        }
        program
    }

    // ---- integer register-register ----

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Add, rd, rs1, rs2))
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Sub, rd, rs1, rs2))
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Mul, rd, rs1, rs2))
    }
    /// `rd = rs1 /u rs2`
    pub fn udiv(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Udiv, rd, rs1, rs2))
    }
    /// `rd = rs1 /s rs2`
    pub fn sdiv(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Sdiv, rd, rs1, rs2))
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::And, rd, rs1, rs2))
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Or, rd, rs1, rs2))
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Xor, rd, rs1, rs2))
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Sll, rd, rs1, rs2))
    }
    /// `rd = rs1 >>u rs2`
    pub fn srl(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Srl, rd, rs1, rs2))
    }
    /// `rd = rs1 >>s rs2`
    pub fn sra(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Sra, rd, rs1, rs2))
    }
    /// `rd = rs1 <s rs2`
    pub fn slt(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Slt, rd, rs1, rs2))
    }
    /// `rd = rs1 <u rs2`
    pub fn sltu(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Sltu, rd, rs1, rs2))
    }
    /// `rd = rs1 == rs2`
    pub fn seq(&mut self, rd: ArchReg, rs1: ArchReg, rs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Seq, rd, rs1, rs2))
    }

    // ---- integer immediates ----

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Addi, rd, rs1, imm))
    }
    /// `rd = rs1 - imm` (sugar for `addi` with a negated immediate)
    pub fn subi(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Addi, rd, rs1, -imm))
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Andi, rd, rs1, imm))
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Ori, rd, rs1, imm))
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Xori, rd, rs1, imm))
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Slli, rd, rs1, imm))
    }
    /// `rd = rs1 >>u imm`
    pub fn srli(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Srli, rd, rs1, imm))
    }
    /// `rd = rs1 >>s imm`
    pub fn srai(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Srai, rd, rs1, imm))
    }
    /// `rd = rs1 <s imm`
    pub fn slti(&mut self, rd: ArchReg, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::rri(Opcode::Slti, rd, rs1, imm))
    }
    /// `rd = imm`
    pub fn li(&mut self, rd: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::ri(Opcode::Li, rd, imm))
    }
    /// `rd = rs1`
    pub fn mov(&mut self, rd: ArchReg, rs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::Mov, rd, rs1))
    }

    // ---- floating point ----

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fadd, fd, fs1, fs2))
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fsub, fd, fs1, fs2))
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fmul, fd, fs1, fs2))
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fdiv, fd, fs1, fs2))
    }
    /// `fd = sqrt(fs1)`
    pub fn fsqrt(&mut self, fd: ArchReg, fs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::Fsqrt, fd, fs1))
    }
    /// `fd = fs1 * fs2 + fs3`
    pub fn fma(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg, fs3: ArchReg) -> &mut Self {
        self.push(Inst::rrrr(Opcode::Fma, fd, fs1, fs2, fs3))
    }
    /// `fd = -fs1`
    pub fn fneg(&mut self, fd: ArchReg, fs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::Fneg, fd, fs1))
    }
    /// `fd = |fs1|`
    pub fn fabs(&mut self, fd: ArchReg, fs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::Fabs, fd, fs1))
    }
    /// `fd = min(fs1, fs2)`
    pub fn fmin(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fmin, fd, fs1, fs2))
    }
    /// `fd = max(fs1, fs2)`
    pub fn fmax(&mut self, fd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fmax, fd, fs1, fs2))
    }
    /// `fd = fs1`
    pub fn fmov(&mut self, fd: ArchReg, fs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::Fmov, fd, fs1))
    }
    /// `fd = value`
    pub fn fli(&mut self, fd: ArchReg, value: f64) -> &mut Self {
        self.push(Inst::ri(Opcode::Fli, fd, value.to_bits() as i64))
    }
    /// `fd = (f64) rs1`
    pub fn cvt_i_f(&mut self, fd: ArchReg, rs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::CvtIf, fd, rs1))
    }
    /// `rd = (i64) fs1`
    pub fn cvt_f_i(&mut self, rd: ArchReg, fs1: ArchReg) -> &mut Self {
        self.push(Inst::rr(Opcode::CvtFi, rd, fs1))
    }
    /// `rd = fs1 == fs2`
    pub fn feq(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Feq, rd, fs1, fs2))
    }
    /// `rd = fs1 < fs2`
    pub fn flt(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Flt, rd, fs1, fs2))
    }
    /// `rd = fs1 <= fs2`
    pub fn fle(&mut self, rd: ArchReg, fs1: ArchReg, fs2: ArchReg) -> &mut Self {
        self.push(Inst::rrr(Opcode::Fle, rd, fs1, fs2))
    }

    // ---- memory ----

    /// `rd = mem64[base + imm]`
    pub fn ld(&mut self, rd: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::load(Opcode::Ld, rd, base, imm))
    }
    /// `rd = zext(mem32[base + imm])`
    pub fn ldw(&mut self, rd: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::load(Opcode::Ldw, rd, base, imm))
    }
    /// `rd = zext(mem8[base + imm])`
    pub fn ldb(&mut self, rd: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::load(Opcode::Ldb, rd, base, imm))
    }
    /// `mem64[base + imm] = rv`
    pub fn st(&mut self, rv: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::store(Opcode::St, rv, base, imm))
    }
    /// `mem32[base + imm] = rv`
    pub fn stw(&mut self, rv: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::store(Opcode::Stw, rv, base, imm))
    }
    /// `mem8[base + imm] = rv`
    pub fn stb(&mut self, rv: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::store(Opcode::Stb, rv, base, imm))
    }
    /// `fd = mem64[base + imm]`
    pub fn fld(&mut self, fd: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::load(Opcode::Fld, fd, base, imm))
    }
    /// `mem64[base + imm] = fv`
    pub fn fst(&mut self, fv: ArchReg, base: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::store(Opcode::Fst, fv, base, imm))
    }
    /// `rd = mem64[base]; base += stride` (post-increment load)
    pub fn ld_post(&mut self, rd: ArchReg, base: ArchReg, stride: i64) -> &mut Self {
        self.push(Inst::load_post(Opcode::LdPost, rd, base, stride))
    }
    /// `fd = mem64[base]; base += stride` (post-increment fp load)
    pub fn fld_post(&mut self, fd: ArchReg, base: ArchReg, stride: i64) -> &mut Self {
        self.push(Inst::load_post(Opcode::FldPost, fd, base, stride))
    }
    /// `mem64[base] = rv; base += stride` (post-increment store)
    pub fn st_post(&mut self, rv: ArchReg, base: ArchReg, stride: i64) -> &mut Self {
        self.push(Inst::store_post(Opcode::StPost, rv, base, stride))
    }
    /// `mem64[base] = fv; base += stride` (post-increment fp store)
    pub fn fst_post(&mut self, fv: ArchReg, base: ArchReg, stride: i64) -> &mut Self {
        self.push(Inst::store_post(Opcode::FstPost, fv, base, stride))
    }

    // ---- control ----

    /// branch if `rs1 == rs2`
    pub fn beq(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Beq, rs1, rs2, 0), target)
    }
    /// branch if `rs1 != rs2`
    pub fn bne(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Bne, rs1, rs2, 0), target)
    }
    /// branch if `rs1 <s rs2`
    pub fn blt(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Blt, rs1, rs2, 0), target)
    }
    /// branch if `rs1 >=s rs2`
    pub fn bge(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Bge, rs1, rs2, 0), target)
    }
    /// branch if `rs1 <u rs2`
    pub fn bltu(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Bltu, rs1, rs2, 0), target)
    }
    /// branch if `rs1 >=u rs2`
    pub fn bgeu(&mut self, rs1: ArchReg, rs2: ArchReg, target: Label) -> &mut Self {
        self.push_branch(Inst::branch(Opcode::Bgeu, rs1, rs2, 0), target)
    }
    /// unconditional jump
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.push_branch(Inst::jal(None, 0), target)
    }
    /// call: jump and link the return address into `lr`
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.push_branch(Inst::jal(Some(crate::reg::lr()), 0), target)
    }
    /// return: indirect jump through `lr`
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::jalr(None, crate::reg::lr(), 0))
    }
    /// indirect jump through `rs1 + imm`, optionally linking
    pub fn jalr(&mut self, link: Option<ArchReg>, rs1: ArchReg, imm: i64) -> &mut Self {
        self.push(Inst::jalr(link, rs1, imm))
    }
    /// no operation
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::bare(Opcode::Nop))
    }
    /// stop the machine
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::bare(Opcode::Halt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn forward_label_resolution() {
        let mut a = Asm::new();
        let end = a.label();
        a.beq(reg::x(0), reg::x(0), end);
        a.nop();
        a.bind(end);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.insts()[0].target, 2);
    }

    #[test]
    fn backward_label_resolution() {
        let mut a = Asm::new();
        let top = a.label();
        a.bind(top);
        a.nop();
        a.bne(reg::x(1), reg::x(2), top);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.insts()[1].target, 0);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.jmp(l);
        a.assemble();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_program_panics() {
        Asm::new().assemble();
    }

    #[test]
    fn subi_negates_immediate() {
        let mut a = Asm::new();
        a.subi(reg::x(0), reg::x(0), 4);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.insts()[0].imm, -4);
        assert_eq!(p.insts()[0].opcode, Opcode::Addi);
    }

    #[test]
    fn with_data_carries_image() {
        let mut d = DataBuilder::new(0x100);
        d.u64(99);
        let mut a = Asm::with_data(d);
        a.halt();
        let p = a.assemble();
        assert_eq!(p.data().read_u64(0x100), 99);
    }

    #[test]
    fn hints_attach_to_the_next_instruction() {
        let mut a = Asm::new();
        a.hint(ShareHint::SingleUse);
        a.li(reg::x(1), 1);
        a.add(reg::x(0), reg::x(1), reg::x(1));
        a.hint_slots(ShareHint::NoReuse, ShareHint::Multi);
        a.ld_post(reg::x(2), reg::x(0), 8);
        a.halt();
        let p = a.assemble();
        let t = p.hints().expect("hint table attached");
        assert_eq!(t.get(0, DefSlot::Primary), ShareHint::SingleUse);
        assert_eq!(t.get(0, DefSlot::Writeback), ShareHint::Unknown);
        assert_eq!(t.get(1, DefSlot::Primary), ShareHint::Unknown);
        assert_eq!(t.get(2, DefSlot::Primary), ShareHint::NoReuse);
        assert_eq!(t.get(2, DefSlot::Writeback), ShareHint::Multi);
    }

    #[test]
    fn unhinted_programs_carry_no_table() {
        let mut a = Asm::new();
        a.halt();
        assert!(a.assemble().hints().is_none());
    }

    #[test]
    #[should_panic(expected = "no instruction follows")]
    fn trailing_hint_panics() {
        let mut a = Asm::new();
        a.halt();
        a.hint(ShareHint::Multi);
        a.assemble();
    }

    #[test]
    fn call_links_lr() {
        let mut a = Asm::new();
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f);
        a.ret();
        let p = a.assemble();
        assert_eq!(p.insts()[0].dst(), Some(reg::lr()));
        assert_eq!(p.insts()[0].target, 2);
    }
}
