//! Predecoded program image: per-PC static facts, packed once.
//!
//! The timing pipeline asks the same questions about the same static
//! instruction on every dynamic fetch of its PC — is it a branch, which
//! functional-unit class does it use, does it write back a base
//! register, what sharing hint does it carry. Each answer is an
//! exhaustive `match` over [`Opcode`]; cheap once, but the hot loop
//! re-derives them millions of times. [`DecodedImage`] folds every
//! static fact into one dense per-PC record ([`DecodedOp`], 4 bytes) at
//! program-construction time, so the per-cycle stages index a table
//! instead of re-decoding.
//!
//! The image is built from the same opcode predicates the stages used to
//! call, so its answers are identical by construction — timing cannot
//! change, only the cost of asking.

use crate::{DefSlot, Inst, OpClass, ShareHintTable};

/// Packed static facts about one instruction. Copied into the fetch
/// bundle once per dynamic instruction; every later stage reads the
/// copy instead of re-matching on the opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedOp {
    flags: u16,
    /// The functional-unit class ([`crate::Opcode::class`]).
    pub class: OpClass,
    /// The sharing-hint nibble (primary hint in the low two bits,
    /// writeback hint in the high two), 0 when the program carries no
    /// hint table.
    pub hint_nibble: u8,
}

impl DecodedOp {
    const IS_BRANCH: u16 = 1 << 0;
    const IS_COND_BRANCH: u16 = 1 << 1;
    const IS_LOAD: u16 = 1 << 2;
    const IS_STORE: u16 = 1 << 3;
    const IS_POST_INCREMENT: u16 = 1 << 4;
    const IS_HALT: u16 = 1 << 5;
    const HAS_DST: u16 = 1 << 6;
    const HAS_DST2: u16 = 1 << 7;

    /// Decodes one instruction (the slow path the image amortizes).
    pub fn decode(inst: &Inst, hint_nibble: u8) -> Self {
        let op = inst.opcode;
        let mut flags = 0;
        let mut set = |cond: bool, bit: u16| {
            if cond {
                flags |= bit;
            }
        };
        set(op.is_branch(), Self::IS_BRANCH);
        set(op.is_cond_branch(), Self::IS_COND_BRANCH);
        set(op.is_load(), Self::IS_LOAD);
        set(op.is_store(), Self::IS_STORE);
        set(op.is_post_increment(), Self::IS_POST_INCREMENT);
        set(op == crate::Opcode::Halt, Self::IS_HALT);
        set(inst.dst().is_some(), Self::HAS_DST);
        set(inst.dst2().is_some(), Self::HAS_DST2);
        DecodedOp {
            flags,
            class: op.class(),
            hint_nibble,
        }
    }

    /// True for any control-transfer instruction
    /// ([`crate::Opcode::is_branch`]).
    #[inline(always)]
    pub fn is_branch(self) -> bool {
        self.flags & Self::IS_BRANCH != 0
    }

    /// True for conditional branches ([`crate::Opcode::is_cond_branch`]).
    #[inline(always)]
    pub fn is_cond_branch(self) -> bool {
        self.flags & Self::IS_COND_BRANCH != 0
    }

    /// True for loads ([`crate::Opcode::is_load`]).
    #[inline(always)]
    pub fn is_load(self) -> bool {
        self.flags & Self::IS_LOAD != 0
    }

    /// True for stores ([`crate::Opcode::is_store`]).
    #[inline(always)]
    pub fn is_store(self) -> bool {
        self.flags & Self::IS_STORE != 0
    }

    /// True for any memory access ([`crate::Opcode::is_mem`]).
    #[inline(always)]
    pub fn is_mem(self) -> bool {
        self.flags & (Self::IS_LOAD | Self::IS_STORE) != 0
    }

    /// True for post-increment memory operations
    /// ([`crate::Opcode::is_post_increment`]).
    #[inline(always)]
    pub fn is_post_increment(self) -> bool {
        self.flags & Self::IS_POST_INCREMENT != 0
    }

    /// True for `halt`.
    #[inline(always)]
    pub fn is_halt(self) -> bool {
        self.flags & Self::IS_HALT != 0
    }

    /// True when the instruction renames a primary destination
    /// ([`Inst::dst`] is `Some`).
    #[inline(always)]
    pub fn has_dst(self) -> bool {
        self.flags & Self::HAS_DST != 0
    }

    /// True when the instruction writes back a base register
    /// ([`Inst::dst2`] is `Some`).
    #[inline(always)]
    pub fn has_dst2(self) -> bool {
        self.flags & Self::HAS_DST2 != 0
    }
}

/// A dense per-PC sidecar of [`DecodedOp`] records, built once per
/// [`crate::Program`] and shared read-only (via the program's `Arc`'d
/// internals) across sampling windows, time-parallel slices and
/// `par_map` workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedImage {
    ops: Box<[DecodedOp]>,
}

impl DecodedImage {
    /// Predecodes a whole instruction list, folding in the hint table's
    /// nibble per PC when one is attached.
    pub fn build(insts: &[Inst], hints: Option<&ShareHintTable>) -> Self {
        let ops = insts
            .iter()
            .enumerate()
            .map(|(pc, inst)| {
                let nibble = hints.map_or(0, |h| {
                    h.get(pc, DefSlot::Primary).to_bits()
                        | (h.get(pc, DefSlot::Writeback).to_bits() << 2)
                });
                DecodedOp::decode(inst, nibble)
            })
            .collect();
        DecodedImage { ops }
    }

    /// The record for `pc`, if in range (mirrors
    /// [`crate::Program::fetch`]).
    #[inline(always)]
    pub fn get(&self, pc: u64) -> Option<DecodedOp> {
        self.ops.get(pc as usize).copied()
    }

    /// The record for `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range — callers index PCs that came from
    /// a successful fetch.
    #[inline(always)]
    pub fn op(&self, pc: u64) -> DecodedOp {
        self.ops[pc as usize]
    }

    /// Number of predecoded instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the image covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reg, Opcode, ShareHint};

    /// Every predicate in the image must agree with the opcode-derived
    /// answer for a representative of every opcode.
    #[test]
    fn image_agrees_with_opcode_predicates() {
        for op in Opcode::ALL {
            let inst = match () {
                _ if op.is_cond_branch() => Inst::branch(op, reg::x(1), reg::x(2), 0),
                _ if op == Opcode::Jal => Inst::jal(Some(reg::lr()), 0),
                _ if op == Opcode::Jalr => Inst::jalr(Some(reg::lr()), reg::x(2), 0),
                _ if op.is_post_increment() && op.is_load() => {
                    Inst::load_post(op, reg::x(1), reg::x(2), 8)
                }
                _ if op.is_post_increment() => Inst::store_post(op, reg::x(3), reg::x(2), 8),
                _ if op.is_store() => Inst::store(op, reg::x(3), reg::x(2), 0),
                _ if op.is_load() => Inst::load(op, reg::x(1), reg::x(2), 0),
                _ => Inst::from_parts(op, Some(reg::x(1)), [Some(reg::x(2)), None, None], 0, 0),
            };
            let d = DecodedOp::decode(&inst, 0);
            assert_eq!(d.is_branch(), op.is_branch(), "{op}");
            assert_eq!(d.is_cond_branch(), op.is_cond_branch(), "{op}");
            assert_eq!(d.is_load(), op.is_load(), "{op}");
            assert_eq!(d.is_store(), op.is_store(), "{op}");
            assert_eq!(d.is_mem(), op.is_mem(), "{op}");
            assert_eq!(d.is_post_increment(), op.is_post_increment(), "{op}");
            assert_eq!(d.is_halt(), op == Opcode::Halt, "{op}");
            assert_eq!(d.class, op.class(), "{op}");
            assert_eq!(d.has_dst(), inst.dst().is_some(), "{op}");
            assert_eq!(d.has_dst2(), inst.dst2().is_some(), "{op}");
        }
    }

    #[test]
    fn image_indexes_per_pc_and_carries_hints() {
        let insts = vec![
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3)),
            Inst::load_post(Opcode::LdPost, reg::x(4), reg::x(5), 8),
            Inst::bare(Opcode::Halt),
        ];
        let mut hints = ShareHintTable::new(3);
        hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
        hints.set(1, DefSlot::Writeback, ShareHint::Multi);
        let img = DecodedImage::build(&insts, Some(&hints));
        assert_eq!(img.len(), 3);
        assert_eq!(img.op(0).hint_nibble, ShareHint::SingleUse.to_bits());
        assert_eq!(img.op(1).hint_nibble, ShareHint::Multi.to_bits() << 2);
        assert!(img.op(1).is_post_increment() && img.op(1).has_dst2());
        assert!(img.op(2).is_halt());
        assert_eq!(img.get(3), None);
    }
}
