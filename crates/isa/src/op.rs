//! Opcodes and functional-unit classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Functional-unit class an opcode executes on.
///
/// The timing simulator maps each class to a pool of functional units with
/// configurable latency and pipelining (see `regshare-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU operations (also `nop` and `halt`).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined in the default configuration).
    IntDiv,
    /// Floating-point add/sub/compare/convert/move.
    FpAlu,
    /// Floating-point multiply and fused multiply-add.
    FpMul,
    /// Floating-point divide and square root.
    FpDiv,
    /// Memory load (int or fp).
    Load,
    /// Memory store (int or fp).
    Store,
    /// Control transfer (conditional branches, jumps, calls, returns).
    Branch,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// All TRISC opcodes.
///
/// Operand shapes (destination, sources, immediate, branch target) are
/// carried by [`crate::Inst`]; the opcode only selects the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // ---- integer register-register ----
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 * rs2` (low 64 bits)
    Mul,
    /// `rd = rs1 / rs2` unsigned; division by zero yields 0 (ARM semantics)
    Udiv,
    /// `rd = rs1 / rs2` signed; division by zero yields 0
    Sdiv,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = rs1 << (rs2 & 63)`
    Sll,
    /// `rd = rs1 >> (rs2 & 63)` logical
    Srl,
    /// `rd = rs1 >> (rs2 & 63)` arithmetic
    Sra,
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    Slt,
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    Sltu,
    /// `rd = (rs1 == rs2) ? 1 : 0`
    Seq,
    // ---- integer register-immediate ----
    /// `rd = rs1 + imm`
    Addi,
    /// `rd = rs1 & imm`
    Andi,
    /// `rd = rs1 | imm`
    Ori,
    /// `rd = rs1 ^ imm`
    Xori,
    /// `rd = rs1 << (imm & 63)`
    Slli,
    /// `rd = rs1 >> (imm & 63)` logical
    Srli,
    /// `rd = rs1 >> (imm & 63)` arithmetic
    Srai,
    /// `rd = (rs1 <s imm) ? 1 : 0`
    Slti,
    /// `rd = imm` (load immediate)
    Li,
    /// `rd = rs1` (integer register move)
    Mov,
    // ---- floating point ----
    /// `fd = fs1 + fs2`
    Fadd,
    /// `fd = fs1 - fs2`
    Fsub,
    /// `fd = fs1 * fs2`
    Fmul,
    /// `fd = fs1 / fs2`
    Fdiv,
    /// `fd = sqrt(fs1)`
    Fsqrt,
    /// `fd = fs1 * fs2 + fs3` (fused)
    Fma,
    /// `fd = -fs1`
    Fneg,
    /// `fd = |fs1|`
    Fabs,
    /// `fd = min(fs1, fs2)`
    Fmin,
    /// `fd = max(fs1, fs2)`
    Fmax,
    /// `fd = fs1` (fp register move)
    Fmov,
    /// `fd = imm` (f64 bit pattern carried in the immediate)
    Fli,
    /// `fd = (f64) rs1` — signed int to fp conversion
    CvtIf,
    /// `rd = (i64) fs1` — fp to signed int, truncating; saturates on overflow
    CvtFi,
    /// `rd = (fs1 == fs2) ? 1 : 0`
    Feq,
    /// `rd = (fs1 < fs2) ? 1 : 0`
    Flt,
    /// `rd = (fs1 <= fs2) ? 1 : 0`
    Fle,
    // ---- memory ----
    /// `rd = mem64[rs1 + imm]`
    Ld,
    /// `rd = zext(mem32[rs1 + imm])`
    Ldw,
    /// `rd = zext(mem8[rs1 + imm])`
    Ldb,
    /// `mem64[rs1 + imm] = rs2`
    St,
    /// `mem32[rs1 + imm] = rs2[31:0]`
    Stw,
    /// `mem8[rs1 + imm] = rs2[7:0]`
    Stb,
    /// `fd = mem64[rs1 + imm]` (fp load)
    Fld,
    /// `mem64[rs1 + imm] = fs2` (fp store)
    Fst,
    /// `rd = mem64[rs1]; rs1 += imm` — post-increment load (ARM-style
    /// writeback addressing; the base register is a second destination)
    LdPost,
    /// `fd = mem64[rs1]; rs1 += imm` — post-increment fp load
    FldPost,
    /// `mem64[rs1] = rs2; rs1 += imm` — post-increment store
    StPost,
    /// `mem64[rs1] = fs2; rs1 += imm` — post-increment fp store
    FstPost,
    // ---- control ----
    /// branch to target if `rs1 == rs2`
    Beq,
    /// branch to target if `rs1 != rs2`
    Bne,
    /// branch to target if `rs1 <s rs2`
    Blt,
    /// branch to target if `rs1 >=s rs2`
    Bge,
    /// branch to target if `rs1 <u rs2`
    Bltu,
    /// branch to target if `rs1 >=u rs2`
    Bgeu,
    /// unconditional jump to target; optionally links return address into `rd`
    Jal,
    /// indirect jump to `rs1 + imm`; optionally links return address into `rd`
    Jalr,
    // ---- misc ----
    /// no operation
    Nop,
    /// stop the machine
    Halt,
}

/// The operand shape of an opcode: which destination slots it writes and
/// how many positional source-register slots it reads.
///
/// This is the single source of truth the renamer-facing accessors
/// ([`crate::Inst::defs`], [`crate::Inst::uses`]) are validated against;
/// [`Opcode::operand_shape`] derives it with an exhaustive match (no
/// wildcard arm), so adding an opcode without deciding its operand shape
/// is a compile error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandShape {
    /// The instruction writes a primary destination register. For `jal` /
    /// `jalr` the destination (link register) is optional; this field is
    /// `true` because the slot exists.
    pub has_dst: bool,
    /// The primary destination is optional at the instruction level
    /// (linking jumps may discard the return address).
    pub dst_optional: bool,
    /// The instruction writes back its base register (post-increment
    /// memory operations — the second destination slot).
    pub has_base_writeback: bool,
    /// Number of positional source-register slots read.
    pub num_srcs: u8,
    /// The instruction carries a direct branch target.
    pub has_target: bool,
}

impl Opcode {
    /// Every opcode, in declaration order.
    ///
    /// Used by exhaustiveness tests (every variant must have a defined
    /// operand shape, mnemonic and class) and by the static analyzer's
    /// coverage checks.
    pub const ALL: [Opcode; 63] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Udiv,
        Opcode::Sdiv,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Seq,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
        Opcode::Li,
        Opcode::Mov,
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fsqrt,
        Opcode::Fma,
        Opcode::Fneg,
        Opcode::Fabs,
        Opcode::Fmin,
        Opcode::Fmax,
        Opcode::Fmov,
        Opcode::Fli,
        Opcode::CvtIf,
        Opcode::CvtFi,
        Opcode::Feq,
        Opcode::Flt,
        Opcode::Fle,
        Opcode::Ld,
        Opcode::Ldw,
        Opcode::Ldb,
        Opcode::St,
        Opcode::Stw,
        Opcode::Stb,
        Opcode::Fld,
        Opcode::Fst,
        Opcode::LdPost,
        Opcode::FldPost,
        Opcode::StPost,
        Opcode::FstPost,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
        Opcode::Jal,
        Opcode::Jalr,
        Opcode::Nop,
        Opcode::Halt,
    ];

    /// The operand shape of this opcode.
    ///
    /// Exhaustive by construction: the match lists every variant with no
    /// wildcard arm, so a new opcode cannot compile without declaring its
    /// register-operand shape.
    pub fn operand_shape(self) -> OperandShape {
        use Opcode::*;
        const fn shape(
            has_dst: bool,
            dst_optional: bool,
            has_base_writeback: bool,
            num_srcs: u8,
            has_target: bool,
        ) -> OperandShape {
            OperandShape {
                has_dst,
                dst_optional,
                has_base_writeback,
                num_srcs,
                has_target,
            }
        }
        match self {
            // Three-register ALU: rd, rs1, rs2.
            Add | Sub | Mul | Udiv | Sdiv | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Seq => {
                shape(true, false, false, 2, false)
            }
            // Register-immediate ALU: rd, rs1, #imm.
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                shape(true, false, false, 1, false)
            }
            // Destination-and-immediate: rd, #imm.
            Li => shape(true, false, false, 0, false),
            // Two-register move: rd, rs1.
            Mov => shape(true, false, false, 1, false),
            // FP three-register: fd, fs1, fs2.
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => shape(true, false, false, 2, false),
            // FP two-register: fd, fs1.
            Fsqrt | Fneg | Fabs | Fmov => shape(true, false, false, 1, false),
            // Fused multiply-add: fd, fs1, fs2, fs3.
            Fma => shape(true, false, false, 3, false),
            // FP load-immediate: fd, #bits.
            Fli => shape(true, false, false, 0, false),
            // Conversions and FP compares: rd/fd, one or two sources.
            CvtIf | CvtFi => shape(true, false, false, 1, false),
            Feq | Flt | Fle => shape(true, false, false, 2, false),
            // Loads: rd, [base + #imm].
            Ld | Ldw | Ldb | Fld => shape(true, false, false, 1, false),
            // Stores: sources are [base, value].
            St | Stw | Stb | Fst => shape(false, false, false, 2, false),
            // Post-increment loads: rd, [base], #imm — base written back.
            LdPost | FldPost => shape(true, false, true, 1, false),
            // Post-increment stores: [base, value] read, base written back.
            StPost | FstPost => shape(false, false, true, 2, false),
            // Conditional branches: rs1, rs2, @target.
            Beq | Bne | Blt | Bge | Bltu | Bgeu => shape(false, false, false, 2, true),
            // Direct jump, optionally linking.
            Jal => shape(true, true, false, 0, true),
            // Indirect jump to rs1 + imm, optionally linking.
            Jalr => shape(true, true, false, 1, false),
            // No register operands.
            Nop | Halt => shape(false, false, false, 0, false),
        }
    }

    /// The functional-unit class this opcode executes on.
    pub fn class(self) -> OpClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Seq | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Li | Mov | Nop | Halt => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Udiv | Sdiv => OpClass::IntDiv,
            Fadd | Fsub | Fneg | Fabs | Fmin | Fmax | Fmov | Fli | CvtIf | CvtFi | Feq | Flt
            | Fle => OpClass::FpAlu,
            Fmul | Fma => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Ld | Ldw | Ldb | Fld | LdPost | FldPost => OpClass::Load,
            St | Stw | Stb | Fst | StPost | FstPost => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => OpClass::Branch,
        }
    }

    /// True for conditional branches.
    pub fn is_cond_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }

    /// True for any control-transfer instruction.
    pub fn is_branch(self) -> bool {
        self.class() == OpClass::Branch
    }

    /// True for loads.
    pub fn is_load(self) -> bool {
        self.class() == OpClass::Load
    }

    /// True for stores.
    pub fn is_store(self) -> bool {
        self.class() == OpClass::Store
    }

    /// True for any memory access.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// True for post-increment memory operations (base-register
    /// writeback).
    pub fn is_post_increment(self) -> bool {
        matches!(
            self,
            Opcode::LdPost | Opcode::FldPost | Opcode::StPost | Opcode::FstPost
        )
    }

    /// The access size in bytes for memory operations, 0 otherwise.
    pub fn mem_width(self) -> u8 {
        match self {
            Opcode::Ld
            | Opcode::St
            | Opcode::Fld
            | Opcode::Fst
            | Opcode::LdPost
            | Opcode::FldPost
            | Opcode::StPost
            | Opcode::FstPost => 8,
            Opcode::Ldw | Opcode::Stw => 4,
            Opcode::Ldb | Opcode::Stb => 1,
            _ => 0,
        }
    }

    /// The mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Udiv => "udiv",
            Sdiv => "sdiv",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Seq => "seq",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Li => "li",
            Mov => "mov",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fma => "fma",
            Fneg => "fneg",
            Fabs => "fabs",
            Fmin => "fmin",
            Fmax => "fmax",
            Fmov => "fmov",
            Fli => "fli",
            CvtIf => "cvt.i.f",
            CvtFi => "cvt.f.i",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Ld => "ld",
            Ldw => "ldw",
            Ldb => "ldb",
            St => "st",
            Stw => "stw",
            Stb => "stb",
            Fld => "fld",
            Fst => "fst",
            LdPost => "ld.post",
            FldPost => "fld.post",
            StPost => "st.post",
            FstPost => "fst.post",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jal => "jal",
            Jalr => "jalr",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        assert_eq!(Opcode::Add.class(), OpClass::IntAlu);
        assert_eq!(Opcode::Mul.class(), OpClass::IntMul);
        assert_eq!(Opcode::Sdiv.class(), OpClass::IntDiv);
        assert_eq!(Opcode::Fadd.class(), OpClass::FpAlu);
        assert_eq!(Opcode::Fma.class(), OpClass::FpMul);
        assert_eq!(Opcode::Fsqrt.class(), OpClass::FpDiv);
        assert_eq!(Opcode::Fld.class(), OpClass::Load);
        assert_eq!(Opcode::Stb.class(), OpClass::Store);
        assert_eq!(Opcode::Jalr.class(), OpClass::Branch);
    }

    #[test]
    fn branch_predicates() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::Beq.is_branch());
        assert!(Opcode::Jal.is_branch());
        assert!(!Opcode::Jal.is_cond_branch());
        assert!(!Opcode::Add.is_branch());
    }

    #[test]
    fn memory_predicates_and_widths() {
        assert!(Opcode::Ld.is_load());
        assert!(Opcode::Fst.is_store());
        assert!(Opcode::Ldb.is_mem());
        assert_eq!(Opcode::Ld.mem_width(), 8);
        assert_eq!(Opcode::Stw.mem_width(), 4);
        assert_eq!(Opcode::Ldb.mem_width(), 1);
        assert_eq!(Opcode::Add.mem_width(), 0);
    }

    #[test]
    fn mnemonics_are_unique_and_nonempty() {
        use std::collections::HashSet;
        let ops = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::Fma,
            Opcode::Ld,
            Opcode::St,
            Opcode::Beq,
            Opcode::Halt,
            Opcode::Nop,
            Opcode::Fli,
        ];
        let set: HashSet<&str> = ops.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), ops.len());
        assert!(ops.iter().all(|o| !o.mnemonic().is_empty()));
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(format!("{}", Opcode::CvtIf), "cvt.i.f");
    }
}
