//! Sparse byte-addressable memory.

use regshare_stats::FastHashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const OFFSET_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Page-number-indexed backing store. The page map sits on the
/// simulator's load/store path, so it uses the shared fast integer
/// hasher instead of SipHash.
type PageMap = FastHashMap<u64, Box<[u8; PAGE_SIZE]>>;

/// A sparse, little-endian, byte-addressable 64-bit memory.
///
/// Pages are allocated on first touch and reads of untouched memory return
/// zero — convenient both for program data and for wrong-path speculative
/// loads in the timing simulator, which must never crash the host.
///
/// # Examples
///
/// ```
/// use regshare_isa::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9999_0000), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: PageMap,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            pages: PageMap::default(),
        }
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on first touch.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads `width` bytes (1, 4 or 8) little-endian, zero-extended to u64.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 4 or 8.
    pub fn read(&self, addr: u64, width: u8) -> u64 {
        match width {
            1 => self.read_u8(addr) as u64,
            4 => self.read_u32(addr) as u64,
            8 => self.read_u64(addr),
            w => panic!("unsupported access width: {w}"),
        }
    }

    /// Writes the low `width` bytes (1, 4 or 8) of `value`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 4 or 8.
    pub fn write(&mut self, addr: u64, value: u64, width: u8) {
        match width {
            1 => self.write_u8(addr, value as u8),
            4 => self.write_u32(addr, value as u32),
            8 => self.write_u64(addr, value),
            w => panic!("unsupported access width: {w}"),
        }
    }

    /// Reads `N` little-endian bytes with a single page lookup when the
    /// access stays inside one page (the overwhelmingly common case; a
    /// straddling access falls back to per-byte reads).
    #[inline]
    fn read_wide<const N: usize>(&self, addr: u64) -> [u8; N] {
        let off = (addr & OFFSET_MASK) as usize;
        if off + N <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    let mut bytes = [0u8; N];
                    bytes.copy_from_slice(&page[off..off + N]);
                    bytes
                }
                None => [0u8; N],
            }
        } else {
            let mut bytes = [0u8; N];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
            bytes
        }
    }

    /// Writes `N` little-endian bytes with a single page lookup when the
    /// access stays inside one page.
    #[inline]
    fn write_wide<const N: usize>(&mut self, addr: u64, bytes: [u8; N]) {
        let off = (addr & OFFSET_MASK) as usize;
        if off + N <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_wide(addr))
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_wide(addr, value.to_le_bytes());
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_wide(addr))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_wide(addr, value.to_le_bytes());
    }

    /// Reads an f64 stored as its bit pattern.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an f64 as its bit pattern.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Finds the lowest address where two memories disagree, returning
    /// `(addr, self_byte, other_byte)` — or `None` when they are
    /// byte-identical. Pages absent from one side compare as zero, so two
    /// memories that differ only in which all-zero pages happen to be
    /// resident are equal.
    ///
    /// Used by the precise-state oracle to diff the out-of-order core's
    /// memory against the functional reference at recovery boundaries.
    ///
    /// # Examples
    ///
    /// ```
    /// use regshare_isa::Memory;
    ///
    /// let mut a = Memory::new();
    /// let mut b = Memory::new();
    /// a.write_u64(0x2000, 7);
    /// b.write_u64(0x2000, 7);
    /// assert_eq!(a.first_difference(&b), None);
    /// b.write_u8(0x2003, 0xFF);
    /// assert_eq!(a.first_difference(&b), Some((0x2003, 0x00, 0xFF)));
    /// ```
    pub fn first_difference(&self, other: &Memory) -> Option<(u64, u8, u8)> {
        static ZERO: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];
        let mut pages: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        for pn in pages {
            let a = self.pages.get(&pn).map_or(&ZERO, |p| &**p);
            let b = other.pages.get(&pn).map_or(&ZERO, |p| &**p);
            if a == b {
                continue;
            }
            for i in 0..PAGE_SIZE {
                if a[i] != b[i] {
                    return Some(((pn << PAGE_SHIFT) | i as u64, a[i], b[i]));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn round_trips_all_widths() {
        let mut m = Memory::new();
        m.write(100, 0xAB, 1);
        m.write(104, 0xDEAD_BEEF, 4);
        m.write(112, 0x0123_4567_89AB_CDEF, 8);
        assert_eq!(m.read(100, 1), 0xAB);
        assert_eq!(m.read(104, 4), 0xDEAD_BEEF);
        assert_eq!(m.read(112, 8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = Memory::new();
        let addr = (1 << 12) - 4; // straddles the first page boundary
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn straddling_reads_at_every_misalignment() {
        let mut m = Memory::new();
        // Walk a u64 access across the boundary between pages 2 and 3 one
        // byte at a time; every split (8+0 through 0+8) must round-trip.
        for k in 0..=8u64 {
            let addr = (3 << 12) - k;
            let val = 0x1122_3344_5566_7788u64.wrapping_add(k);
            m.write_u64(addr, val);
            assert_eq!(m.read_u64(addr), val, "split at {k} bytes");
        }
        // Same for u32 across the page 5/6 boundary.
        for k in 0..=4u64 {
            let addr = (6 << 12) - k;
            m.write_u32(addr, 0xA1B2_C3D4 ^ k as u32);
            assert_eq!(
                m.read_u32(addr),
                0xA1B2_C3D4 ^ k as u32,
                "split at {k} bytes"
            );
        }
    }

    #[test]
    fn straddling_read_with_page_on_one_side_only() {
        let mut m = Memory::new();
        let boundary = 9u64 << 12;
        // Only the low page is resident: the high half must read as zero.
        m.write_u32(boundary - 4, 0xFFFF_FFFF);
        assert_eq!(m.read_u64(boundary - 4), 0x0000_0000_FFFF_FFFF);
        // Only the high page is resident on a different boundary.
        let boundary2 = 11u64 << 12;
        m.write_u32(boundary2, 0xFFFF_FFFF);
        assert_eq!(m.read_u64(boundary2 - 4), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(64, -0.5);
        assert_eq!(m.read_f64(64), -0.5);
    }

    #[test]
    #[should_panic(expected = "unsupported access width")]
    fn bad_width_panics() {
        Memory::new().read(0, 2);
    }

    #[test]
    fn first_difference_ignores_zero_pages() {
        let mut a = Memory::new();
        let b = Memory::new();
        // Resident but all-zero page on one side only: still equal.
        a.write_u8(0x5000, 1);
        a.write_u8(0x5000, 0);
        assert_eq!(a.first_difference(&b), None);
        assert_eq!(b.first_difference(&a), None);
    }

    #[test]
    fn first_difference_reports_lowest_address() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.write_u8(0x9000, 3);
        a.write_u8(0x1234, 9);
        b.write_u8(0x9000, 4);
        assert_eq!(a.first_difference(&b), Some((0x1234, 9, 0)));
        assert_eq!(b.first_difference(&a), Some((0x1234, 0, 9)));
    }
}
