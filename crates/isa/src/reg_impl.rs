//! Architectural (logical) registers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer logical registers (including the hard-wired zero).
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point logical registers.
pub const NUM_FP_REGS: usize = 32;
/// Index of the hard-wired zero integer register.
pub(crate) const ZERO_REG: u8 = 31;

/// The register file class a logical register belongs to.
///
/// The paper evaluates decoupled integer and floating-point register files
/// (§VI-B); every renaming structure is instantiated per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// 64-bit integer registers `x0..x31`.
    Int,
    /// 64-bit floating-point registers `f0..f31`.
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];

    /// Number of logical registers in this class.
    pub fn num_regs(self) -> usize {
        match self {
            RegClass::Int => NUM_INT_REGS,
            RegClass::Fp => NUM_FP_REGS,
        }
    }

    /// A compact index (0 for int, 1 for fp) for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Fp => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Fp => f.write_str("fp"),
        }
    }
}

/// An architectural (logical) register: a class plus an index.
///
/// # Examples
///
/// ```
/// use regshare_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::new(RegClass::Int, 5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(format!("{r}"), "x5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates a register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    pub fn new(class: RegClass, index: u8) -> Self {
        assert!(
            (index as usize) < class.num_regs(),
            "register index {index} out of range for {class} class"
        );
        ArchReg { class, index }
    }

    /// The register file class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The index within the class.
    pub fn index(self) -> u8 {
        self.index
    }

    /// True for the hard-wired zero integer register `x31`.
    pub fn is_zero(self) -> bool {
        self.class == RegClass::Int && self.index == ZERO_REG
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int if self.index == ZERO_REG => f.write_str("xzr"),
            RegClass::Int => write!(f, "x{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes() {
        assert_eq!(RegClass::Int.num_regs(), 32);
        assert_eq!(RegClass::Fp.num_regs(), 32);
        assert_eq!(RegClass::Int.index(), 0);
        assert_eq!(RegClass::Fp.index(), 1);
    }

    #[test]
    fn constructs_and_displays() {
        let r = ArchReg::new(RegClass::Fp, 7);
        assert_eq!(format!("{r}"), "f7");
        assert_eq!(format!("{}", ArchReg::new(RegClass::Int, 31)), "xzr");
        assert_eq!(format!("{}", ArchReg::new(RegClass::Int, 0)), "x0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        ArchReg::new(RegClass::Int, 32);
    }

    #[test]
    fn zero_register_detection() {
        assert!(ArchReg::new(RegClass::Int, 31).is_zero());
        assert!(!ArchReg::new(RegClass::Fp, 31).is_zero());
        assert!(!ArchReg::new(RegClass::Int, 0).is_zero());
    }

    #[test]
    fn ordering_is_stable() {
        let a = ArchReg::new(RegClass::Int, 1);
        let b = ArchReg::new(RegClass::Int, 2);
        let c = ArchReg::new(RegClass::Fp, 0);
        assert!(a < b);
        assert!(b < c); // Int sorts before Fp
    }
}
