//! Static sharing hints: a compiler-provided sidecar table over a
//! program's definition slots.
//!
//! A [`ShareHint`] tells the renamer what the compiler proved about a
//! destination's consumer count, so the hardware can skip (or overrule)
//! its dynamic single-use predictor where a static proof exists. The
//! table is *architectural but optional*: a program without one behaves
//! exactly as before, and the encoding packs two instructions per byte
//! (2 bits per destination slot) so it costs what a real ISA would pay
//! for a hint bitfield.

use crate::DefSlot;
use serde::{Deserialize, Serialize};

/// What the compiler proved about one destination slot's value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShareHint {
    /// No proof; the dynamic predictor decides (the encoding's zero
    /// value, so an all-zero table is a no-op).
    #[default]
    Unknown,
    /// Provably never consumed: speculation is pointless.
    NoReuse,
    /// Provably at most one consumer: single-use speculation is exact.
    SingleUse,
    /// Provably never exactly one consumer: single-use speculation is
    /// always wrong.
    Multi,
}

impl ShareHint {
    /// The 2-bit encoding.
    pub fn to_bits(self) -> u8 {
        match self {
            ShareHint::Unknown => 0,
            ShareHint::NoReuse => 1,
            ShareHint::SingleUse => 2,
            ShareHint::Multi => 3,
        }
    }

    /// Decodes the 2-bit encoding (masks to the low two bits).
    pub fn from_bits(bits: u8) -> ShareHint {
        match bits & 0b11 {
            1 => ShareHint::NoReuse,
            2 => ShareHint::SingleUse,
            3 => ShareHint::Multi,
            _ => ShareHint::Unknown,
        }
    }

    /// True when the hint carries an exact proof (anything but
    /// [`ShareHint::Unknown`]); the Hybrid policy overrides the dynamic
    /// predictor exactly here.
    pub fn is_exact(self) -> bool {
        self != ShareHint::Unknown
    }

    /// The textual name used by the `.hint` assembly directive.
    pub fn name(self) -> &'static str {
        match self {
            ShareHint::Unknown => "unknown",
            ShareHint::NoReuse => "noreuse",
            ShareHint::SingleUse => "single",
            ShareHint::Multi => "multi",
        }
    }

    /// Parses a `.hint` directive operand.
    pub fn from_name(name: &str) -> Option<ShareHint> {
        match name {
            "unknown" => Some(ShareHint::Unknown),
            "noreuse" => Some(ShareHint::NoReuse),
            "single" => Some(ShareHint::SingleUse),
            "multi" => Some(ShareHint::Multi),
            _ => None,
        }
    }
}

/// A per-instruction hint table: one [`ShareHint`] for each destination
/// slot (primary and base-writeback) of every instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShareHintTable {
    /// `slots[pc] = [primary, writeback]`.
    slots: Vec<[ShareHint; 2]>,
}

fn slot_index(slot: DefSlot) -> usize {
    match slot {
        DefSlot::Primary => 0,
        DefSlot::Writeback => 1,
    }
}

impl ShareHintTable {
    /// An all-[`ShareHint::Unknown`] table for a program of `len`
    /// instructions.
    pub fn new(len: usize) -> Self {
        ShareHintTable {
            slots: vec![[ShareHint::Unknown; 2]; len],
        }
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The hint for `(pc, slot)`; [`ShareHint::Unknown`] out of range.
    pub fn get(&self, pc: usize, slot: DefSlot) -> ShareHint {
        self.slots
            .get(pc)
            .map_or(ShareHint::Unknown, |s| s[slot_index(slot)])
    }

    /// Sets the hint for `(pc, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn set(&mut self, pc: usize, slot: DefSlot, hint: ShareHint) {
        self.slots[pc][slot_index(slot)] = hint;
    }

    /// Number of slots carrying an exact (non-`Unknown`) hint.
    pub fn exact_slots(&self) -> usize {
        self.slots.iter().flatten().filter(|h| h.is_exact()).count()
    }

    /// Packs the table: 4 bits per instruction (primary hint in the low
    /// half of the nibble, writeback in the high half), two
    /// instructions per byte, even instruction in the low nibble.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.slots.len().div_ceil(2)];
        for (pc, s) in self.slots.iter().enumerate() {
            let nibble = s[0].to_bits() | (s[1].to_bits() << 2);
            out[pc / 2] |= nibble << ((pc % 2) * 4);
        }
        out
    }

    /// Unpacks an [`ShareHintTable::encode`]d table for a program of
    /// `len` instructions. Returns `None` when the byte count does not
    /// match or padding bits are set.
    pub fn decode(len: usize, bytes: &[u8]) -> Option<Self> {
        if bytes.len() != len.div_ceil(2) {
            return None;
        }
        if len % 2 == 1 {
            if let Some(last) = bytes.last() {
                if last >> 4 != 0 {
                    return None;
                }
            }
        }
        let mut table = ShareHintTable::new(len);
        for (pc, s) in table.slots.iter_mut().enumerate() {
            let nibble = bytes[pc / 2] >> ((pc % 2) * 4);
            s[0] = ShareHint::from_bits(nibble);
            s[1] = ShareHint::from_bits(nibble >> 2);
        }
        Some(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ShareHint; 4] = [
        ShareHint::Unknown,
        ShareHint::NoReuse,
        ShareHint::SingleUse,
        ShareHint::Multi,
    ];

    #[test]
    fn bits_roundtrip_every_hint() {
        for h in ALL {
            assert_eq!(ShareHint::from_bits(h.to_bits()), h);
            assert_eq!(ShareHint::from_name(h.name()), Some(h));
        }
        assert_eq!(ShareHint::from_name("bogus"), None);
    }

    #[test]
    fn table_encode_decode_roundtrip() {
        // Odd length exercises the padding nibble.
        let mut t = ShareHintTable::new(5);
        t.set(0, DefSlot::Primary, ShareHint::SingleUse);
        t.set(1, DefSlot::Writeback, ShareHint::Multi);
        t.set(3, DefSlot::Primary, ShareHint::NoReuse);
        t.set(4, DefSlot::Primary, ShareHint::Multi);
        t.set(4, DefSlot::Writeback, ShareHint::SingleUse);
        let bytes = t.encode();
        assert_eq!(bytes.len(), 3);
        assert_eq!(ShareHintTable::decode(5, &bytes), Some(t.clone()));
        assert_eq!(t.exact_slots(), 5);
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let t = ShareHintTable::new(5);
        let bytes = t.encode();
        assert!(ShareHintTable::decode(4, &bytes).is_none(), "length lie");
        let mut padded = bytes.clone();
        *padded.last_mut().unwrap() |= 0xf0;
        assert!(
            ShareHintTable::decode(5, &padded).is_none(),
            "padding bits set"
        );
        assert!(ShareHintTable::decode(6, &bytes).is_some());
    }

    #[test]
    fn out_of_range_get_is_unknown() {
        let t = ShareHintTable::new(1);
        assert_eq!(t.get(7, DefSlot::Primary), ShareHint::Unknown);
    }
}
