//! Table-driven semantics coverage: every TRISC opcode executes on the
//! functional machine with a known expected result.

use regshare_isa::{reg, Asm, Machine};

/// Runs a tiny program and returns the final value of `x10` / `f10`.
fn run_int(build: impl FnOnce(&mut Asm)) -> u64 {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    let mut m = Machine::new(a.assemble());
    m.run(1_000).expect("program runs");
    m.int_reg(reg::x(10))
}

fn run_fp(build: impl FnOnce(&mut Asm)) -> f64 {
    let mut a = Asm::new();
    build(&mut a);
    a.halt();
    let mut m = Machine::new(a.assemble());
    m.run(1_000).expect("program runs");
    m.fp_reg(reg::f(10))
}

/// One coverage case: mnemonic, program builder, expected x10/f10.
type Case<V> = (&'static str, Box<dyn FnOnce(&mut Asm)>, V);

#[test]
fn integer_register_register_ops() {
    let cases: Vec<Case<u64>> = vec![
        (
            "add",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 7);
                a.li(reg::x(2), 5);
                a.add(reg::x(10), reg::x(1), reg::x(2));
            }),
            12,
        ),
        (
            "sub",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 7);
                a.li(reg::x(2), 5);
                a.sub(reg::x(10), reg::x(1), reg::x(2));
            }),
            2,
        ),
        (
            "mul",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 7);
                a.li(reg::x(2), 5);
                a.mul(reg::x(10), reg::x(1), reg::x(2));
            }),
            35,
        ),
        (
            "udiv",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 37);
                a.li(reg::x(2), 5);
                a.udiv(reg::x(10), reg::x(1), reg::x(2));
            }),
            7,
        ),
        (
            "sdiv",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -37);
                a.li(reg::x(2), 5);
                a.sdiv(reg::x(10), reg::x(1), reg::x(2));
            }),
            (-7i64) as u64,
        ),
        (
            "and",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0b1100);
                a.li(reg::x(2), 0b1010);
                a.and(reg::x(10), reg::x(1), reg::x(2));
            }),
            0b1000,
        ),
        (
            "or",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0b1100);
                a.li(reg::x(2), 0b1010);
                a.or(reg::x(10), reg::x(1), reg::x(2));
            }),
            0b1110,
        ),
        (
            "xor",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0b1100);
                a.li(reg::x(2), 0b1010);
                a.xor(reg::x(10), reg::x(1), reg::x(2));
            }),
            0b0110,
        ),
        (
            "sll",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 3);
                a.li(reg::x(2), 4);
                a.sll(reg::x(10), reg::x(1), reg::x(2));
            }),
            48,
        ),
        (
            "srl",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 48);
                a.li(reg::x(2), 4);
                a.srl(reg::x(10), reg::x(1), reg::x(2));
            }),
            3,
        ),
        (
            "sra",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -48);
                a.li(reg::x(2), 4);
                a.sra(reg::x(10), reg::x(1), reg::x(2));
            }),
            (-3i64) as u64,
        ),
        (
            "slt",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -1);
                a.li(reg::x(2), 1);
                a.slt(reg::x(10), reg::x(1), reg::x(2));
            }),
            1,
        ),
        (
            "sltu",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -1);
                a.li(reg::x(2), 1);
                a.sltu(reg::x(10), reg::x(1), reg::x(2));
            }),
            0,
        ),
        (
            "seq",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 4);
                a.li(reg::x(2), 4);
                a.seq(reg::x(10), reg::x(1), reg::x(2));
            }),
            1,
        ),
    ];
    for (name, build, expected) in cases {
        assert_eq!(run_int(build), expected, "{name}");
    }
}

#[test]
fn integer_immediate_ops() {
    let cases: Vec<Case<u64>> = vec![
        (
            "addi",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 7);
                a.addi(reg::x(10), reg::x(1), -3);
            }),
            4,
        ),
        (
            "andi",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0xFF);
                a.andi(reg::x(10), reg::x(1), 0x0F);
            }),
            0x0F,
        ),
        (
            "ori",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0xF0);
                a.ori(reg::x(10), reg::x(1), 0x0F);
            }),
            0xFF,
        ),
        (
            "xori",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 0xFF);
                a.xori(reg::x(10), reg::x(1), 0x0F);
            }),
            0xF0,
        ),
        (
            "slli",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 1);
                a.slli(reg::x(10), reg::x(1), 10);
            }),
            1024,
        ),
        (
            "srli",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 1024);
                a.srli(reg::x(10), reg::x(1), 10);
            }),
            1,
        ),
        (
            "srai",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -1024);
                a.srai(reg::x(10), reg::x(1), 10);
            }),
            (-1i64) as u64,
        ),
        (
            "slti",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -5);
                a.slti(reg::x(10), reg::x(1), 0);
            }),
            1,
        ),
        (
            "mov",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), 42);
                a.mov(reg::x(10), reg::x(1));
            }),
            42,
        ),
    ];
    for (name, build, expected) in cases {
        assert_eq!(run_int(build), expected, "{name}");
    }
}

#[test]
fn floating_point_ops() {
    let cases: Vec<Case<f64>> = vec![
        (
            "fadd",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.5);
                a.fli(reg::f(2), 2.25);
                a.fadd(reg::f(10), reg::f(1), reg::f(2));
            }),
            3.75,
        ),
        (
            "fsub",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.5);
                a.fli(reg::f(2), 2.25);
                a.fsub(reg::f(10), reg::f(1), reg::f(2));
            }),
            -0.75,
        ),
        (
            "fmul",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.5);
                a.fli(reg::f(2), 2.0);
                a.fmul(reg::f(10), reg::f(1), reg::f(2));
            }),
            3.0,
        ),
        (
            "fdiv",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 3.0);
                a.fli(reg::f(2), 2.0);
                a.fdiv(reg::f(10), reg::f(1), reg::f(2));
            }),
            1.5,
        ),
        (
            "fsqrt",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 9.0);
                a.fsqrt(reg::f(10), reg::f(1));
            }),
            3.0,
        ),
        (
            "fma",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 2.0);
                a.fli(reg::f(2), 3.0);
                a.fli(reg::f(3), 1.0);
                a.fma(reg::f(10), reg::f(1), reg::f(2), reg::f(3));
            }),
            7.0,
        ),
        (
            "fneg",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 2.0);
                a.fneg(reg::f(10), reg::f(1));
            }),
            -2.0,
        ),
        (
            "fabs",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), -2.0);
                a.fabs(reg::f(10), reg::f(1));
            }),
            2.0,
        ),
        (
            "fmin",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.0);
                a.fli(reg::f(2), 2.0);
                a.fmin(reg::f(10), reg::f(1), reg::f(2));
            }),
            1.0,
        ),
        (
            "fmax",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.0);
                a.fli(reg::f(2), 2.0);
                a.fmax(reg::f(10), reg::f(1), reg::f(2));
            }),
            2.0,
        ),
        (
            "fmov",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 5.5);
                a.fmov(reg::f(10), reg::f(1));
            }),
            5.5,
        ),
        (
            "cvt.i.f",
            Box::new(|a: &mut Asm| {
                a.li(reg::x(1), -3);
                a.cvt_i_f(reg::f(10), reg::x(1));
            }),
            -3.0,
        ),
    ];
    for (name, build, expected) in cases {
        assert_eq!(run_fp(build), expected, "{name}");
    }
}

#[test]
fn fp_compares_and_convert_to_int() {
    let cases: Vec<Case<u64>> = vec![
        (
            "feq",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 2.0);
                a.fli(reg::f(2), 2.0);
                a.feq(reg::x(10), reg::f(1), reg::f(2));
            }),
            1,
        ),
        (
            "flt",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 1.0);
                a.fli(reg::f(2), 2.0);
                a.flt(reg::x(10), reg::f(1), reg::f(2));
            }),
            1,
        ),
        (
            "fle",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), 2.0);
                a.fli(reg::f(2), 2.0);
                a.fle(reg::x(10), reg::f(1), reg::f(2));
            }),
            1,
        ),
        (
            "cvt.f.i",
            Box::new(|a: &mut Asm| {
                a.fli(reg::f(1), -3.9);
                a.cvt_f_i(reg::x(10), reg::f(1));
            }),
            (-3i64) as u64,
        ),
    ];
    for (name, build, expected) in cases {
        assert_eq!(run_int(build), expected, "{name}");
    }
}

#[test]
fn memory_widths_and_post_increment() {
    let got = run_int(|a| {
        a.li(reg::x(1), 0x9000);
        a.li(reg::x(2), 0x1122_3344_5566_7788u64 as i64);
        a.st(reg::x(2), reg::x(1), 0);
        a.stw(reg::x(2), reg::x(1), 8);
        a.stb(reg::x(2), reg::x(1), 12);
        a.ldb(reg::x(3), reg::x(1), 12); // 0x88
        a.ldw(reg::x(4), reg::x(1), 8); // 0x55667788
        a.ld(reg::x(5), reg::x(1), 0); // full word
        a.ld_post(reg::x(6), reg::x(1), 8); // full word again, x1 += 8
        a.st_post(reg::x(3), reg::x(1), 8); // store 0x88 at 0x9008, x1 += 8
        a.add(reg::x(10), reg::x(3), reg::x(4));
        a.add(reg::x(10), reg::x(10), reg::x(1)); // x1 is now 0x9010
    });
    assert_eq!(got, 0x88 + 0x5566_7788 + 0x9010);
}

#[test]
fn all_branch_variants_take_and_fall_through() {
    // Each branch opcode tested in both directions via an accumulator.
    let got = run_int(|a| {
        a.li(reg::x(1), 1);
        a.li(reg::x(2), 2);
        a.li(reg::x(10), 0);
        // beq taken path adds nothing, bne taken adds 1, etc.
        let l1 = a.label();
        a.beq(reg::x(1), reg::x(1), l1); // taken
        a.addi(reg::x(10), reg::x(10), 100); // skipped
        a.bind(l1);
        let l2 = a.label();
        a.bne(reg::x(1), reg::x(2), l2); // taken
        a.addi(reg::x(10), reg::x(10), 100); // skipped
        a.bind(l2);
        let l3 = a.label();
        a.blt(reg::x(1), reg::x(2), l3); // taken (1 < 2)
        a.addi(reg::x(10), reg::x(10), 100);
        a.bind(l3);
        let l4 = a.label();
        a.bge(reg::x(2), reg::x(1), l4); // taken
        a.addi(reg::x(10), reg::x(10), 100);
        a.bind(l4);
        let l5 = a.label();
        a.li(reg::x(3), -1); // unsigned max
        a.bltu(reg::x(1), reg::x(3), l5); // taken (1 <u max)
        a.addi(reg::x(10), reg::x(10), 100);
        a.bind(l5);
        let l6 = a.label();
        a.bgeu(reg::x(3), reg::x(1), l6); // taken
        a.addi(reg::x(10), reg::x(10), 100);
        a.bind(l6);
        // Fall-through cases: none of these branch.
        let l7 = a.label();
        a.beq(reg::x(1), reg::x(2), l7);
        a.addi(reg::x(10), reg::x(10), 1); // executed
        a.bind(l7);
        a.nop();
    });
    assert_eq!(got, 1);
}
