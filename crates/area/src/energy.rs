//! Register-file energy model.
//!
//! The paper motivates register sharing partly by register-file energy
//! ("increasing the size of the register file … has important implications
//! in terms of energy consumption", §I). This module provides the standard
//! first-order SRAM energy model used with analytical area models:
//!
//! * dynamic energy per access grows with the file's total capacitance,
//!   which scales with `registers × bits × ported-cell area`;
//! * leakage power is proportional to area;
//! * shadow cells add leakage but essentially no dynamic energy — they are
//!   written through the main cell's existing bitlines (§IV-C2: "no extra
//!   latency [or switching] is added to the write").
//!
//! Constants are normalized so a 128 × 64-bit file at the default port
//! count costs 1.0 units per read access — all results are *relative*,
//! which is how the experiments use them (proposed vs. baseline).

use crate::{ported_bit_area, proposed_area, RegFilePorts};
use regshare_core::BankConfig;

/// Reference: dynamic read energy of a 128×64b file at default ports.
fn reference_area() -> f64 {
    128.0 * 64.0 * ported_bit_area(RegFilePorts::default())
}

/// Relative dynamic energy of one read/write access to a conventional
/// file of `regs` registers of `bits` bits.
pub fn access_energy(regs: usize, ports: RegFilePorts, bits: u32) -> f64 {
    let area = regs as f64 * bits as f64 * ported_bit_area(ports);
    area / reference_area()
}

/// Relative leakage power of a banked file, shadow cells included (they
/// leak like any retained state).
pub fn leakage_power(banks: &BankConfig, ports: RegFilePorts, bits: u32) -> f64 {
    proposed_area(banks, ports, bits) / reference_area()
}

/// Per-run register-file energy estimate.
///
/// `reads`/`writes` are dynamic access counts; `cycles` scales leakage.
/// `recovers` are shadow-cell recover commands (each costs roughly one
/// write of the main cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Relative dynamic energy.
    pub dynamic: f64,
    /// Relative leakage energy (power × cycles, scaled by 1e-3 per cycle).
    pub leakage: f64,
}

impl EnergyEstimate {
    /// Total relative energy.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

/// Estimates the register-file energy of a run.
pub fn estimate(
    banks: &BankConfig,
    ports: RegFilePorts,
    bits: u32,
    reads: u64,
    writes: u64,
    recovers: u64,
    cycles: u64,
) -> EnergyEstimate {
    let per_access = access_energy(banks.total(), ports, bits);
    let dynamic = (reads + writes + recovers) as f64 * per_access;
    let leakage = leakage_power(banks, ports, bits) * cycles as f64 * 1e-3;
    EnergyEstimate { dynamic, leakage }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_file_costs_one_unit_per_access() {
        let e = access_energy(128, RegFilePorts::default(), 64);
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_files_cost_less_per_access() {
        let ports = RegFilePorts::default();
        let small = access_energy(48, ports, 64);
        let big = access_energy(128, ports, 64);
        assert!(small < big);
        assert!((small / big - 48.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn shadow_cells_add_leakage_not_access_energy() {
        let ports = RegFilePorts::default();
        let plain = BankConfig::conventional(40);
        let shadowed = BankConfig::new(vec![28, 4, 4, 4]);
        // Same register count per access path:
        assert_eq!(plain.total(), shadowed.total());
        assert!(
            (access_energy(plain.total(), ports, 64) - access_energy(shadowed.total(), ports, 64))
                .abs()
                < 1e-12
        );
        // But the shadowed file leaks more.
        assert!(leakage_power(&shadowed, ports, 64) > leakage_power(&plain, ports, 64));
    }

    #[test]
    fn equal_area_files_leak_roughly_equally() {
        let ports = RegFilePorts::default();
        let baseline_like = BankConfig::conventional(48);
        let proposed = BankConfig::paper_row(48);
        let lb = leakage_power(&baseline_like, ports, 64);
        let lp = leakage_power(&proposed, ports, 64);
        // By equal-area construction the proposed file cannot leak more.
        assert!(lp <= lb * 1.01, "baseline {lb} vs proposed {lp}");
    }

    #[test]
    fn estimate_accumulates_components() {
        let banks = BankConfig::paper_row(64);
        let ports = RegFilePorts::default();
        let e = estimate(&banks, ports, 64, 1000, 500, 10, 10_000);
        assert!(e.dynamic > 0.0);
        assert!(e.leakage > 0.0);
        assert!((e.total() - (e.dynamic + e.leakage)).abs() < 1e-12);
        // The proposed file at 64 is smaller than a 64-reg baseline, so
        // each access is cheaper.
        let base = estimate(
            &BankConfig::conventional(64),
            ports,
            64,
            1000,
            500,
            0,
            10_000,
        );
        assert!(e.dynamic < base.dynamic * 1.02);
    }
}
