#![warn(missing_docs)]

//! Analytical area model for the register file and the renaming
//! structures — the role CACTI 6.5 plays in the paper's methodology (§V-A).
//!
//! The model follows the standard multi-ported SRAM scaling assumptions:
//!
//! * A register bit-cell's linear pitch grows with the number of ports
//!   (one wordline and one bitline pair per port), so cell *area* grows
//!   quadratically with port count.
//! * A shadow cell is a pair of cross-coupled inverters reached through
//!   the main cell (Fig. 6 of the paper): it adds **port-independent**
//!   area, far smaller than a ported cell.
//! * The PRT, register-type predictor and the issue queue's extra version
//!   bits are small SRAM/CAM tables.
//!
//! Constants are calibrated so the model reproduces the paper's Table II
//! (128-register files: 0.2834 mm² int, 0.4988 mm² fp; overhead totals
//! ≈ 5.1 × 10⁻³ mm²) and, through [`equal_area_config`], the Table III
//! equal-area register-file configurations within ±2 registers.
//!
//! # Examples
//!
//! ```
//! use regshare_area::{baseline_area, equal_area_config, RegFilePorts};
//!
//! let ports = RegFilePorts::default();
//! let banks = equal_area_config(64, ports);
//! // The proposed configuration never exceeds the baseline's area.
//! assert!(regshare_area::proposed_area(&banks, ports, 64)
//!     <= baseline_area(64, ports, 64) * 1.0001);
//! ```

pub mod energy;

use regshare_core::BankConfig;
use serde::{Deserialize, Serialize};

/// Read/write port counts of a register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegFilePorts {
    /// Read ports (2 source operands × 3-wide issue in Table I's core).
    pub read: u32,
    /// Write ports.
    pub write: u32,
}

impl Default for RegFilePorts {
    fn default() -> Self {
        RegFilePorts { read: 6, write: 3 }
    }
}

/// Area of a 1-read/1-write bit-cell, mm².
const BASE_CELL_MM2: f64 = 6.006e-6;
/// Per-port linear growth factor of the cell pitch.
const PORT_FACTOR: f64 = 0.2;
/// Area of one shadow bit (port-independent), mm².
const SHADOW_BIT_MM2: f64 = 6.92e-6;
/// Area per PRT SRAM bit, mm² (calibrated to Table II: 384 bits →
/// 5.08 × 10⁻⁴ mm²).
const PRT_BIT_MM2: f64 = 1.323e-6;
/// Area per predictor SRAM bit, mm² (1 Kbit → 3.1 × 10⁻³ mm²).
const PREDICTOR_BIT_MM2: f64 = 3.027e-6;
/// Area per issue-queue tag bit (CAM match bit), mm² (160 bits →
/// 1.48 × 10⁻³ mm²).
const IQ_BIT_MM2: f64 = 9.25e-6;

/// Area of one ported register bit-cell, mm².
pub fn ported_bit_area(ports: RegFilePorts) -> f64 {
    let p = (ports.read + ports.write) as f64;
    let pitch = 1.0 + PORT_FACTOR * (p - 2.0);
    BASE_CELL_MM2 * pitch * pitch
}

/// Area of a conventional register file of `regs` registers of
/// `bits_per_reg` bits, mm².
pub fn baseline_area(regs: usize, ports: RegFilePorts, bits_per_reg: u32) -> f64 {
    regs as f64 * bits_per_reg as f64 * ported_bit_area(ports)
}

/// Area of the proposed banked register file **plus all renaming
/// overheads** (shadow cells, PRT, predictor, issue-queue bits), mm².
pub fn proposed_area(banks: &BankConfig, ports: RegFilePorts, bits_per_reg: u32) -> f64 {
    let regs = banks.total();
    let shadows = banks.total_shadow_cells();
    baseline_area(regs, ports, bits_per_reg)
        + shadows as f64 * bits_per_reg as f64 * SHADOW_BIT_MM2
        + overhead_area(regs)
}

/// Total area of the new structures the scheme adds for a file of `regs`
/// registers: PRT + register-type predictor + issue-queue version bits.
pub fn overhead_area(regs: usize) -> f64 {
    prt_area(regs) + predictor_area(512, 2) + iq_overhead_area(40)
}

/// PRT area: 3 bits (read bit + 2-bit counter) per physical register.
pub fn prt_area(regs: usize) -> f64 {
    (regs * 3) as f64 * PRT_BIT_MM2
}

/// Register-type predictor area: `entries` × `bits` SRAM bits.
pub fn predictor_area(entries: usize, bits: u32) -> f64 {
    (entries as f64) * bits as f64 * PREDICTOR_BIT_MM2
}

/// Issue-queue overhead: 4 extra version bits per entry (2 bits × 2
/// source tags).
pub fn iq_overhead_area(iq_entries: usize) -> f64 {
    (iq_entries * 4) as f64 * IQ_BIT_MM2
}

/// One row of the reproduced Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Unit name.
    pub unit: String,
    /// Configuration description.
    pub configuration: String,
    /// Modeled area in mm².
    pub area_mm2: f64,
}

/// Reproduces Table II: the areas of the two register files and the
/// scheme's overhead structures.
pub fn table2() -> Vec<Table2Row> {
    let ports = RegFilePorts::default();
    vec![
        Table2Row {
            unit: "Integer Register File (64-bit)".into(),
            configuration: "128 registers".into(),
            area_mm2: baseline_area(128, ports, 64),
        },
        Table2Row {
            unit: "Floating-point Register File (128-bit)".into(),
            configuration: "128 registers".into(),
            area_mm2: baseline_area(128, ports, 128),
        },
        Table2Row {
            unit: "PRT".into(),
            configuration: "overhead (128 × 3 bits)".into(),
            area_mm2: prt_area(128),
        },
        Table2Row {
            unit: "Issue Queue".into(),
            configuration: "overhead (40 × 4 bits)".into(),
            area_mm2: iq_overhead_area(40),
        },
        Table2Row {
            unit: "Register Predictor".into(),
            configuration: "overhead (512 × 2 bits)".into(),
            area_mm2: predictor_area(512, 2),
        },
    ]
}

/// Port counts implied by a machine width: 2 operand reads and 1 result
/// write per issue slot. Width 3 reproduces [`RegFilePorts::default`]
/// (Table I's core); the SMT frontier sweeps widths 2/4/8.
pub fn ports_for_width(width: usize) -> RegFilePorts {
    RegFilePorts {
        read: 2 * width as u32,
        write: width as u32,
    }
}

/// Baseline physical-register budget for a `threads`-way SMT core of the
/// given issue width: one architectural copy (32 registers) per hardware
/// thread plus a speculative renaming window that scales with width.
/// `(1, 4)` reproduces the single-thread experiments' 64-register file.
pub fn smt_baseline_regs(threads: usize, width: usize) -> usize {
    32 * threads + 8 * width
}

/// Shadow-bank size heuristic used when a baseline size has no Table III
/// row: larger files afford larger shadow banks (Fig. 9 tuning).
fn shadow_bank_size(baseline_regs: usize) -> usize {
    match baseline_regs {
        0..=48 => 4,
        49..=64 => 6,
        _ => 8,
    }
}

/// Solves for the equal-area 4-bank configuration: the largest
/// conventional bank `n0` such that `n0 + 3s` registers, `6s` shadow
/// copies and the structure overheads fit in the baseline's area
/// (`bits_per_reg` = 64 for the integer file).
pub fn equal_area_config(baseline_regs: usize, ports: RegFilePorts) -> BankConfig {
    let s = shadow_bank_size(baseline_regs);
    let budget = baseline_area(baseline_regs, ports, 64);
    let per_reg = 64.0 * ported_bit_area(ports);
    let shadow_cost = (6 * s) as f64 * 64.0 * SHADOW_BIT_MM2;
    let mut n0 = baseline_regs.saturating_sub(3 * s);
    while n0 > 0 {
        let total = (n0 + 3 * s) as f64 * per_reg + shadow_cost + overhead_area(n0 + 3 * s);
        if total <= budget {
            break;
        }
        n0 -= 1;
    }
    assert!(
        n0 > 0,
        "no equal-area configuration exists for {baseline_regs} registers"
    );
    BankConfig::new(vec![n0, s, s, s])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs()
    }

    #[test]
    fn table2_matches_paper_register_files() {
        let rows = table2();
        // Paper: 0.2834 mm² (int), 0.4988 mm² (fp).
        assert!(
            close(rows[0].area_mm2, 0.2834, 0.03),
            "int rf: {}",
            rows[0].area_mm2
        );
        assert!(
            close(rows[1].area_mm2, 0.4988, 0.15),
            "fp rf: {}",
            rows[1].area_mm2
        );
    }

    #[test]
    fn table2_matches_paper_overheads() {
        let rows = table2();
        assert!(
            close(rows[2].area_mm2, 5.08e-4, 0.02),
            "prt: {}",
            rows[2].area_mm2
        );
        assert!(
            close(rows[3].area_mm2, 1.48e-3, 0.02),
            "iq: {}",
            rows[3].area_mm2
        );
        assert!(
            close(rows[4].area_mm2, 3.1e-3, 0.02),
            "pred: {}",
            rows[4].area_mm2
        );
        let total: f64 = rows[2..].iter().map(|r| r.area_mm2).sum();
        assert!(close(total, 5.085e-3, 0.02), "total overhead: {total}");
    }

    #[test]
    fn shadow_cells_are_much_cheaper_than_ported_cells() {
        let ported = ported_bit_area(RegFilePorts::default());
        assert!(SHADOW_BIT_MM2 < 0.3 * ported);
    }

    #[test]
    fn more_ports_cost_quadratically() {
        let small = ported_bit_area(RegFilePorts { read: 2, write: 1 });
        let big = ported_bit_area(RegFilePorts { read: 12, write: 6 });
        assert!(big > 4.0 * small);
    }

    #[test]
    fn equal_area_configs_track_table_iii() {
        let ports = RegFilePorts::default();
        // (baseline, paper's conventional-bank size)
        for (n, paper_n0) in [
            (48, 28),
            (56, 28),
            (64, 36),
            (72, 36),
            (80, 42),
            (96, 58),
            (112, 75),
        ] {
            let banks = equal_area_config(n, ports);
            let n0 = banks.sizes()[0];
            assert!(
                (n0 as i64 - paper_n0 as i64).abs() <= 2,
                "baseline {n}: solver {n0} vs paper {paper_n0}"
            );
            assert!(proposed_area(&banks, ports, 64) <= baseline_area(n, ports, 64) * 1.0001);
        }
    }

    #[test]
    fn equal_area_config_never_exceeds_budget_for_random_sizes() {
        let ports = RegFilePorts::default();
        for n in [40, 52, 60, 70, 90, 120, 160] {
            let banks = equal_area_config(n, ports);
            assert!(proposed_area(&banks, ports, 64) <= baseline_area(n, ports, 64) * 1.0001);
            assert!(banks.total() < n);
        }
    }

    #[test]
    #[should_panic(expected = "no equal-area configuration")]
    fn impossible_budget_panics() {
        equal_area_config(13, RegFilePorts::default());
    }

    #[test]
    fn width_three_ports_match_table_i_default() {
        assert_eq!(ports_for_width(3), RegFilePorts::default());
        assert_eq!(ports_for_width(8), RegFilePorts { read: 16, write: 8 });
    }

    #[test]
    fn smt_frontier_points_all_have_equal_area_configs() {
        // Every point of the {1,2,4} threads × {2,4,8} widths matrix the
        // `experiments smt` frontier sweeps must admit an equal-area
        // solution that stays within the baseline budget and actually
        // shrinks the file.
        for threads in [1usize, 2, 4] {
            for width in [2usize, 4, 8] {
                let regs = smt_baseline_regs(threads, width);
                let ports = ports_for_width(width);
                let banks = equal_area_config(regs, ports);
                assert!(
                    proposed_area(&banks, ports, 64) <= baseline_area(regs, ports, 64) * 1.0001,
                    "t={threads} w={width}"
                );
                assert!(banks.total() < regs, "t={threads} w={width}");
            }
        }
        assert_eq!(smt_baseline_regs(1, 4), 64);
    }
}
