//! Versioned physical register tags.

use regshare_isa::RegClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of shadow cells a register can embed (3-bit version
/// counters support up to 7 reuses; the paper's configuration uses 2-bit
/// counters and up to 3 shadow cells).
pub const MAX_SHADOW_CELLS: u8 = 7;

/// A physical register index within one register class's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysReg(pub u16);

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A physical register tag as carried through the rename map and the issue
/// queue: class + register index + **version**.
///
/// The version is the paper's n-bit counter appended to the physical
/// register id (§IV-A): successive reuses of the same physical register
/// produce versions 0, 1, 2, … so the issue queue can distinguish the
/// values of different instructions sharing the register. Under the
/// baseline scheme the version is always 0.
///
/// # Examples
///
/// ```
/// use regshare_core::{PhysReg, TaggedReg};
/// use regshare_isa::RegClass;
///
/// let t = TaggedReg::new(RegClass::Int, PhysReg(3), 1);
/// assert_eq!(format!("{t}"), "int:P3.1");
/// assert_eq!(t.bump(), TaggedReg::new(RegClass::Int, PhysReg(3), 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaggedReg {
    /// Which register file the register lives in.
    pub class: RegClass,
    /// The physical register index.
    pub preg: PhysReg,
    /// The version (reuse generation) of the register's contents.
    pub version: u8,
}

impl TaggedReg {
    /// Creates a tag.
    pub fn new(class: RegClass, preg: PhysReg, version: u8) -> Self {
        TaggedReg {
            class,
            preg,
            version,
        }
    }

    /// The same register at the next version (one more reuse).
    pub fn bump(self) -> Self {
        TaggedReg {
            version: self.version + 1,
            ..self
        }
    }
}

impl fmt::Display for TaggedReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}.{}", self.class, self.preg, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", PhysReg(7)), "P7");
        let t = TaggedReg::new(RegClass::Fp, PhysReg(0), 3);
        assert_eq!(format!("{t}"), "fp:P0.3");
    }

    #[test]
    fn bump_increments_version_only() {
        let t = TaggedReg::new(RegClass::Int, PhysReg(9), 0);
        let b = t.bump();
        assert_eq!(b.preg, t.preg);
        assert_eq!(b.class, t.class);
        assert_eq!(b.version, 1);
    }

    #[test]
    fn tags_differ_by_version() {
        let a = TaggedReg::new(RegClass::Int, PhysReg(1), 0);
        let b = TaggedReg::new(RegClass::Int, PhysReg(1), 1);
        assert_ne!(a, b);
    }
}
