//! The proposed renaming scheme: physical register sharing (§IV).

use crate::rename_common::{CheckpointStack, ReadMarks, RenameTables};
use crate::renamer::{
    HintPolicy, HintStats, RenameStats, Renamer, RenamerConfig, SquashOutcome, Uop, UopKind, UopVec,
};
use crate::{BankConfig, MapTable, PhysReg, Prt, RegTypePredictor, SingleUsePredictor, TaggedReg};
use regshare_isa::{ArchReg, DefSlot, HartId, Inst, RegClass, ShareHint, ShareHintTable};

mod audit;
mod types;

use types::{DstAction, PregMeta, Record, SpecDecision, SpecSource, StallDelta};

pub use audit::CorruptKind;

/// Register renaming with physical register sharing — the paper's proposed
/// scheme.
///
/// On every rename the scheme:
///
/// 1. Maps sources through the versioned map table; a source whose version
///    is no longer the register's current version reveals a **single-use
///    misprediction** and triggers the repair of §IV-D1 (a fresh register
///    plus an injected [`UopKind::RepairMove`] micro-op).
/// 2. Sets the PRT read bit of every source (the first-consumer detector).
/// 3. For the destination, searches the sources for a register that can be
///    **reused**: read bit previously clear (first consumer), same class,
///    a free shadow cell, and an unsaturated version counter. A source
///    that the instruction also redefines is a guaranteed-safe reuse; any
///    other qualifying source is a speculative reuse (the bank a register
///    was allocated in *is* the single-use prediction).
/// 4. Otherwise allocates from the bank chosen by the register type
///    predictor, falling back to the closest bank, or stalls when the
///    file is exhausted.
///
/// Physical registers are released when no rename-map entry references
/// them any more (tracked with a per-register mapping count, evaluated at
/// commit) — which reproduces conventional release-on-commit when no
/// sharing happens and release-on-rename semantics when it does (§IV-A3).
///
/// # Examples
///
/// See the crate-level example for the Fig. 4 chain.
#[derive(Debug, Clone)]
pub struct ReuseRenamer {
    t: RenameTables,
    prt: [Prt; 2],
    meta: [Vec<PregMeta>; 2],
    predictor: RegTypePredictor,
    single_use: SingleUsePredictor,
    /// One in-flight record stack per hardware thread: commits are in
    /// sequence order per thread, and a squash walks only the squashing
    /// thread's records. The PRT, free lists and predictors above are
    /// shared — reuse candidates are always the renaming thread's own
    /// sources, so a physical register never becomes reachable from two
    /// threads.
    records: Vec<CheckpointStack<Record>>,
    /// The program's static hint table (`None` until installed; an
    /// absent table behaves as all-`Unknown`).
    hints: Option<ShareHintTable>,
    hint_stats: HintStats,
    /// Reused squash-outcome storage: cleared and refilled by every
    /// `squash_after`, so steady-state squashes never allocate.
    squash: SquashOutcome,
    /// Bumped by every mutating entry point except a failed rename; see
    /// [`Renamer::state_epoch`].
    epoch: u64,
    /// Counter deltas of each thread's most recent failed rename,
    /// replayed by [`Renamer::note_stall_on`] for gated retries. Per
    /// thread because another thread's successful rename between the
    /// stall and its retry must not swap in the wrong delta.
    stall_delta: Vec<StallDelta>,
}

impl ReuseRenamer {
    /// Creates a renamer with every logical register mapped to an initial
    /// physical register (allocated from the conventional bank first).
    ///
    /// # Panics
    ///
    /// Panics if a register file is not larger than the logical register
    /// count.
    pub fn new(config: RenamerConfig) -> Self {
        let max_version = config.max_version();
        let mut prt = [
            Prt::new(config.int_banks.total(), max_version),
            Prt::new(config.fp_banks.total(), max_version),
        ];
        let meta = [
            vec![PregMeta::default(); config.int_banks.total()],
            vec![PregMeta::default(); config.fp_banks.total()],
        ];
        let predictor = RegTypePredictor::new(config.predictor_entries, config.predictor_bits);
        let single_use = SingleUsePredictor::new(config.predictor_entries);
        let threads = config.threads;
        let t = RenameTables::new(config, |class, preg| {
            prt[class.index()].map_inc(preg);
        });
        ReuseRenamer {
            t,
            prt,
            meta,
            predictor,
            single_use,
            records: (0..threads).map(|_| CheckpointStack::new()).collect(),
            hints: None,
            hint_stats: HintStats::default(),
            squash: SquashOutcome::default(),
            epoch: 0,
            stall_delta: vec![StallDelta::default(); threads],
        }
    }

    /// The compiler's hint for the definition slot `(pc, slot)`;
    /// `Unknown` without an installed table.
    fn hint_at(&self, pc: u64, slot: DefSlot) -> ShareHint {
        self.hints
            .as_ref()
            .map_or(ShareHint::Unknown, |h| h.get(pc as usize, slot))
    }

    /// The current (speculative) rename map.
    pub fn map(&self) -> &MapTable {
        self.t.map()
    }

    /// The retirement (architectural) rename map.
    pub fn retire_map(&self) -> &MapTable {
        self.t.retire_map()
    }

    /// The Physical Register Table of one class.
    pub fn prt(&self, class: RegClass) -> &Prt {
        &self.prt[class.index()]
    }

    /// The register type predictor.
    pub fn predictor(&self) -> &RegTypePredictor {
        &self.predictor
    }

    fn shadow_cells(&self, class: RegClass, preg: PhysReg) -> u8 {
        self.t.config.banks(class).shadow_cells_of(preg)
    }

    fn alloc_preg(&mut self, class: RegClass, pc: u64, hint: ShareHint) -> Option<(PhysReg, u8)> {
        // Bank choice: the hint supplies the expected reuse count where
        // the policy lets it; otherwise the type predictor does. A
        // statically-banked register neither trains the predictor nor
        // counts in its Fig. 12 accounting — its release feedback goes
        // to `HintStats` instead.
        let static_bank = match self.t.config.hint_policy {
            HintPolicy::DynamicOnly => false,
            HintPolicy::StaticOnly => true,
            HintPolicy::Hybrid => hint.is_exact(),
        };
        let predicted = if static_bank {
            match hint {
                ShareHint::SingleUse => 1,
                _ => 0,
            }
        } else {
            self.predictor.predict(pc)
        };
        let preg = self.t.free[class.index()].alloc(predicted)?;
        let ci = class.index();
        self.prt[ci].reset_on_alloc(preg);
        self.prt[ci].map_inc(preg);
        let mut version_hints = [ShareHint::Unknown; 8];
        version_hints[0] = hint;
        self.meta[ci][preg.0 as usize] = PregMeta {
            entry: self.predictor.entry_index(pc),
            predicted,
            reuses: 0,
            multi_use: false,
            blocked: false,
            has_entry: !static_bank,
            static_bank,
            spec_entries: [None; 8],
            spec_static: [false; 8],
            version_hints,
        };
        if static_bank {
            self.hint_stats.static_allocs += 1;
        } else {
            self.hint_stats.dynamic_allocs += 1;
        }
        Some((preg, predicted))
    }

    fn release(&mut self, class: RegClass, preg: PhysReg) {
        // A release is the only commit-side event a stalled rename can
        // observe: the free list gains a register and the predictors
        // train. Everything else commit touches (retirement map, mapping
        // counts, the record queue) is invisible to a rename attempt.
        self.epoch += 1;
        let ci = class.index();
        self.t.free[ci].free(preg, self.t.config.banks(class));
        let meta = self.meta[ci][preg.0 as usize];
        self.t.stats.releases += 1;
        self.t.stats.chain_lengths.record(meta.reuses as u64);
        if meta.has_entry {
            self.predictor.on_release(
                meta.entry,
                meta.predicted,
                meta.reuses,
                meta.multi_use,
                meta.blocked,
            );
        } else if meta.static_bank {
            // Fig. 12 classification for a statically-banked register,
            // judged by the same rules the predictor applies to its own.
            let correct = if meta.predicted == 0 {
                !meta.blocked
            } else {
                meta.reuses == meta.predicted && !meta.multi_use
            };
            if correct {
                self.hint_stats.static_bank_correct += 1;
            } else {
                self.hint_stats.static_bank_incorrect += 1;
            }
        }
        // Speculative reuses that survived to release were correct:
        // reinforce dynamically-predicted consumers, and credit each
        // grant to its source.
        if !meta.multi_use {
            for (v, entry) in meta.spec_entries.iter().enumerate() {
                if let Some(e) = entry {
                    self.single_use.on_correct(*e as usize);
                    self.hint_stats.dynamic_correct += 1;
                } else if meta.spec_static[v] {
                    self.hint_stats.static_correct += 1;
                }
            }
        }
    }

    /// Undoes one record's rename effects (shared by squash and the
    /// stall rollback path). Appends recover candidates.
    fn undo_record(&mut self, h: usize, record: Record, recovers: &mut Vec<TaggedReg>) {
        self.undo_dst_action(h, record.dst2, recovers);
        self.undo_dst_action(h, record.dst, recovers);
        for &(class, preg, prev) in record.read_marks.iter().rev() {
            self.prt[class.index()].set_read(preg, prev);
        }
    }

    /// Whether a *non-redefining* first consumer may take a speculative
    /// reuse of `src`, and on whose authority. Pure decision logic: the
    /// caller records any statistics once the rename is known to succeed.
    fn speculation_decision(&self, pc: u64, src: TaggedReg) -> SpecDecision {
        if !self.t.config.speculative_reuse {
            return SpecDecision::Deny;
        }
        let hint =
            self.meta[src.class.index()][src.preg.0 as usize].version_hints[src.version as usize];
        let dynamic = || {
            if self.single_use.predict(pc) {
                SpecDecision::Grant(SpecSource::Dynamic)
            } else {
                SpecDecision::Deny
            }
        };
        match self.t.config.hint_policy {
            HintPolicy::DynamicOnly => dynamic(),
            HintPolicy::StaticOnly => match hint {
                ShareHint::SingleUse => SpecDecision::Grant(SpecSource::Static),
                ShareHint::NoReuse | ShareHint::Multi => SpecDecision::DenyStatic,
                ShareHint::Unknown => SpecDecision::Deny,
            },
            HintPolicy::Hybrid => match hint {
                ShareHint::SingleUse => SpecDecision::Grant(SpecSource::Static),
                ShareHint::NoReuse | ShareHint::Multi => SpecDecision::DenyStatic,
                ShareHint::Unknown => dynamic(),
            },
        }
    }

    fn undo_dst_action(&mut self, h: usize, action: DstAction, recovers: &mut Vec<TaggedReg>) {
        match action {
            DstAction::None => {}
            DstAction::Alloc {
                logical,
                old_map,
                new_map,
            } => {
                self.t.maps[h].set(logical, old_map);
                let ci = new_map.class.index();
                let remaining = self.prt[ci].map_dec(new_map.preg);
                debug_assert_eq!(remaining, 0, "squashed fresh allocation still referenced");
                self.t.free[ci].free(new_map.preg, self.t.config.banks(new_map.class));
            }
            DstAction::Reuse {
                logical,
                old_map,
                new_map,
                prev_version,
            } => {
                self.t.maps[h].set(logical, old_map);
                let ci = new_map.class.index();
                // The read bit was true immediately before the bump (this
                // micro-op was the first consumer and marked it); the
                // read-mark undo below restores the pre-rename value.
                self.prt[ci].rollback(new_map.preg, prev_version, true);
                self.prt[ci].map_dec(new_map.preg);
                let m = &mut self.meta[ci][new_map.preg.0 as usize];
                m.reuses = m.reuses.saturating_sub(1);
                m.spec_entries[new_map.version as usize] = None;
                m.spec_static[new_map.version as usize] = false;
                m.version_hints[new_map.version as usize] = ShareHint::Unknown;
                // One recover command per register; walking youngest to
                // oldest, the last write leaves the oldest (final)
                // restored version in place.
                match recovers
                    .iter_mut()
                    .find(|t| t.class == new_map.class && t.preg == new_map.preg)
                {
                    Some(t) => t.version = prev_version,
                    None => {
                        recovers.push(TaggedReg::new(new_map.class, new_map.preg, prev_version))
                    }
                }
            }
        }
    }
}

impl Renamer for ReuseRenamer {
    fn threads(&self) -> usize {
        self.t.threads()
    }

    fn rename_on(&mut self, hart: HartId, seq: u64, pc: u64, inst: &Inst) -> Option<UopVec> {
        let h = hart.index();
        let before = StallDelta::capture(&self.t.stats, &self.hint_stats);
        let mut uops = UopVec::new();
        // Repair records staged in Phase A (one per repaired source); the
        // main record is built at the end. Inline — renaming must never
        // allocate.
        let mut staged: [Option<Record>; 3] = [None; 3];
        let mut n_staged = 0;
        let mut next_seq = seq;
        let mut src_tags: [Option<TaggedReg>; 3] = [None; 3];
        // Logical registers repaired in this rename (handles a register
        // appearing in several operand slots). At most one entry per
        // source slot, so a linear scan beats any map.
        let mut repaired: [Option<(ArchReg, TaggedReg)>; 3] = [None; 3];
        let mut n_repaired = 0;
        let mut stall = false;
        // Predictor learning is deferred until the rename is known to
        // succeed: a stalled rename retries every cycle and must not pump
        // the predictors with duplicate events.
        #[derive(Clone, Copy)]
        enum Learn {
            MultiUse {
                class: RegClass,
                preg: PhysReg,
                stale_version: u8,
            },
            Blocked {
                class: RegClass,
                preg: PhysReg,
            },
        }
        // At most one MultiUse per source slot (3), one Blocked per
        // Phase-C candidate (3), one Blocked from Phase D.
        let mut learn: [Option<Learn>; 7] = [None; 7];
        let mut n_learn = 0;

        // Phase A: map sources; repair stale (mispredicted single-use)
        // mappings with injected move micro-ops (§IV-D1).
        for (slot, raw) in src_tags.iter_mut().zip(inst.raw_sources()) {
            let Some(r) = raw.filter(|r| !r.is_zero()) else {
                continue;
            };
            if let Some((_, t)) = repaired.iter().flatten().find(|(a, _)| *a == r) {
                *slot = Some(*t);
                continue;
            }
            let t = self.t.maps[h].get(r);
            let ci = t.class.index();
            if self.prt[ci].entry(t.preg).counter == t.version {
                *slot = Some(t);
                continue;
            }
            // Stale mapping: the register was reused by another logical
            // register, yet the value is being read again. Repair moves
            // have no compiler-visible definition site, so no hint.
            let Some((pn, _)) = self.alloc_preg(t.class, pc, ShareHint::Unknown) else {
                stall = true;
                break;
            };
            let new_tag = TaggedReg::new(t.class, pn, 0);
            let old = self.t.maps[h].set(r, new_tag);
            debug_assert_eq!(old, t);
            // The register was not single-use after all: predictor rule 2,
            // and the consumer whose speculative reuse overwrote version
            // `t.version` mispredicted (learning applied on success).
            learn[n_learn] = Some(Learn::MultiUse {
                class: t.class,
                preg: t.preg,
                stale_version: t.version,
            });
            n_learn += 1;
            staged[n_staged] = Some(Record {
                seq: next_seq,
                read_marks: ReadMarks::EMPTY,
                dst: DstAction::Alloc {
                    logical: r,
                    old_map: t,
                    new_map: new_tag,
                },
                dst2: DstAction::None,
            });
            n_staged += 1;
            uops.push(Uop {
                seq: next_seq,
                kind: UopKind::RepairMove,
                srcs: [Some(t), None, None],
                dst: Some(new_tag),
                dst2: None,
            });
            next_seq += 1;
            repaired[n_repaired] = Some((r, new_tag));
            n_repaired += 1;
            *slot = Some(new_tag);
        }

        // Phase B: set read bits for the main micro-op's sources.
        // `read_marks` doubles as this rename's previous-read-bit lookup
        // (at most one entry per source slot).
        let mut read_marks = ReadMarks::EMPTY;
        if !stall {
            for t in src_tags.iter().flatten() {
                if read_marks.prev_read(t.class, t.preg).is_some() {
                    continue;
                }
                let prev = self.prt[t.class.index()].mark_read(t.preg);
                read_marks.push(t.class, t.preg, prev);
            }
        }

        // The rename tag of a logical source register (all operand slots
        // carrying the same register hold the same tag after Phase A).
        let src_tag_of = |tags: &[Option<TaggedReg>; 3], r: ArchReg| -> Option<TaggedReg> {
            inst.raw_sources()
                .iter()
                .position(|s| *s == Some(r))
                .and_then(|i| tags[i])
        };

        // Phase C: destination — reuse or allocate.
        let mut dst_action = DstAction::None;
        if !stall {
            if let Some(dl) = inst.dst() {
                let class = dl.class();
                let mut chosen: Option<(TaggedReg, bool, Option<SpecSource>)> = None;
                // Registers already weighed as reuse candidates: two
                // logical sources may share a physical register, and the
                // decision must be taken once per physical register.
                let mut considered: [Option<PhysReg>; 3] = [None; 3];
                let mut n_considered = 0;
                for r in inst.uses() {
                    let Some(t) = src_tag_of(&src_tags, r) else {
                        continue;
                    };
                    if t.class != class {
                        continue;
                    }
                    if inst.dst2() == Some(r) {
                        // The written-back base register belongs to the
                        // second destination's reuse decision.
                        continue;
                    }
                    if considered.iter().flatten().any(|p| *p == t.preg) {
                        continue;
                    }
                    considered[n_considered] = Some(t.preg);
                    n_considered += 1;
                    let first_use = !read_marks.prev_read(t.class, t.preg).unwrap_or(true);
                    if !first_use {
                        continue;
                    }
                    let redefining = r == dl;
                    // A redefining first consumer is also the provably
                    // last one; any other first consumer needs a grant —
                    // a static `SingleUse` proof or the single-use
                    // predictor, per the hint policy (§IV-A2) — and is
                    // excluded entirely in the safe-only ablation.
                    let mut spec_source = None;
                    if !redefining {
                        match self.speculation_decision(pc, t) {
                            SpecDecision::Grant(s) => spec_source = Some(s),
                            SpecDecision::DenyStatic => {
                                self.hint_stats.static_denials += 1;
                                continue;
                            }
                            SpecDecision::Deny => continue,
                        }
                    }
                    let cells = self.shadow_cells(class, t.preg);
                    let capacity = t.version < cells && self.prt[class.index()].can_bump(t.preg);
                    if capacity {
                        match chosen {
                            // A redefining source is preferred: it is a
                            // guaranteed-safe reuse.
                            Some((_, true, _)) => {}
                            Some(_) if !redefining => {}
                            _ => chosen = Some((t, redefining, spec_source)),
                        }
                    } else {
                        // A reuse we wanted but could not take: predictor
                        // rule 3, and the "lost opportunity" class of
                        // Fig. 12 (learning applied on success).
                        learn[n_learn] = Some(Learn::Blocked {
                            class,
                            preg: t.preg,
                        });
                        n_learn += 1;
                    }
                }
                if let Some((t, redefining, spec_source)) = chosen {
                    let ci = class.index();
                    let newv = self.prt[ci].bump(t.preg);
                    self.prt[ci].map_inc(t.preg);
                    let new_map = TaggedReg::new(class, t.preg, newv);
                    let old_map = self.t.maps[h].set(dl, new_map);
                    let dst_hint = self.hint_at(pc, DefSlot::Primary);
                    let su_entry = self.single_use.entry_index(pc) as u32;
                    let m = &mut self.meta[ci][t.preg.0 as usize];
                    m.reuses += 1;
                    m.version_hints[newv as usize] = dst_hint;
                    match spec_source {
                        None => {}
                        Some(SpecSource::Dynamic) => {
                            m.spec_entries[newv as usize] = Some(su_entry);
                            self.hint_stats.dynamic_speculations += 1;
                        }
                        Some(SpecSource::Static) => {
                            m.spec_static[newv as usize] = true;
                            self.hint_stats.static_speculations += 1;
                        }
                    }
                    self.t.stats.reuses += 1;
                    if redefining {
                        self.t.stats.safe_reuses += 1;
                    } else {
                        self.t.stats.speculative_reuses += 1;
                    }
                    dst_action = DstAction::Reuse {
                        logical: dl,
                        old_map,
                        new_map,
                        prev_version: t.version,
                    };
                } else {
                    match self.alloc_preg(class, pc, self.hint_at(pc, DefSlot::Primary)) {
                        Some((preg, _)) => {
                            let new_map = TaggedReg::new(class, preg, 0);
                            let old_map = self.t.maps[h].set(dl, new_map);
                            self.t.stats.allocations += 1;
                            dst_action = DstAction::Alloc {
                                logical: dl,
                                old_map,
                                new_map,
                            };
                        }
                        None => stall = true,
                    }
                }
            }
        }

        // Phase D: the written-back base register of post-increment
        // memory operations. By construction the instruction is the
        // *redefining* consumer of the base, so this is a guaranteed-safe
        // reuse whenever the base value had no earlier consumer and the
        // register has shadow capacity.
        let mut dst2_action = DstAction::None;
        if !stall {
            if let Some(d2) = inst.dst2() {
                let class = d2.class();
                let base_tag =
                    src_tag_of(&src_tags, d2).expect("post-increment base is always a source");
                let first_use = !read_marks
                    .prev_read(base_tag.class, base_tag.preg)
                    .unwrap_or(true);
                let cells = self.shadow_cells(class, base_tag.preg);
                let capacity =
                    base_tag.version < cells && self.prt[class.index()].can_bump(base_tag.preg);
                if first_use && capacity {
                    let ci = class.index();
                    let newv = self.prt[ci].bump(base_tag.preg);
                    self.prt[ci].map_inc(base_tag.preg);
                    let new_map = TaggedReg::new(class, base_tag.preg, newv);
                    let old_map = self.t.maps[h].set(d2, new_map);
                    let wb_hint = self.hint_at(pc, DefSlot::Writeback);
                    let m = &mut self.meta[ci][base_tag.preg.0 as usize];
                    m.reuses += 1;
                    m.version_hints[newv as usize] = wb_hint;
                    self.t.stats.reuses += 1;
                    self.t.stats.safe_reuses += 1;
                    dst2_action = DstAction::Reuse {
                        logical: d2,
                        old_map,
                        new_map,
                        prev_version: base_tag.version,
                    };
                } else {
                    if first_use {
                        learn[n_learn] = Some(Learn::Blocked {
                            class,
                            preg: base_tag.preg,
                        });
                        n_learn += 1;
                    }
                    // The salted pc separates the writeback slot in the
                    // predictor tables; the hint table addresses slots
                    // directly, so the lookup uses the real pc.
                    match self.alloc_preg(
                        class,
                        pc ^ 0x8000_0000,
                        self.hint_at(pc, DefSlot::Writeback),
                    ) {
                        Some((preg, _)) => {
                            let new_map = TaggedReg::new(class, preg, 0);
                            let old_map = self.t.maps[h].set(d2, new_map);
                            self.t.stats.allocations += 1;
                            dst2_action = DstAction::Alloc {
                                logical: d2,
                                old_map,
                                new_map,
                            };
                        }
                        None => stall = true,
                    }
                }
            }
        }

        if stall {
            // Roll back everything staged in this rename, youngest first.
            // The recover candidates are discarded (nothing issued yet),
            // so borrow the persistent buffer as scratch.
            let mut scratch = std::mem::take(&mut self.squash.recovers);
            scratch.clear();
            self.undo_record(
                h,
                Record {
                    seq: next_seq,
                    read_marks,
                    dst: dst_action,
                    dst2: dst2_action,
                },
                &mut scratch,
            );
            for record in staged.into_iter().rev().flatten() {
                self.undo_record(h, record, &mut scratch);
            }
            scratch.clear();
            self.squash.recovers = scratch;
            self.t.stats.stalls += 1;
            // Remember what this attempt added to the counters: until the
            // epoch advances, every retry would add exactly the same.
            self.stall_delta[h] =
                StallDelta::capture(&self.t.stats, &self.hint_stats).since(&before);
            return None;
        }

        // The rename succeeded: apply the deferred learning events.
        for event in learn.into_iter().take(n_learn).flatten() {
            match event {
                Learn::MultiUse {
                    class,
                    preg,
                    stale_version,
                } => {
                    let ci = class.index();
                    let victim = self.meta[ci][preg.0 as usize];
                    if victim.has_entry {
                        self.predictor.on_multi_use(victim.entry);
                    }
                    // The overwriting version reveals who granted the bad
                    // speculation: a static proof (the repair is charged
                    // to the compiler, nothing to train) or the dynamic
                    // predictor (corrected).
                    let vi = stale_version as usize + 1;
                    if victim.spec_static.get(vi).copied().unwrap_or(false) {
                        self.hint_stats.static_repaired += 1;
                    } else if let Some(Some(e)) = victim.spec_entries.get(vi) {
                        self.single_use.on_wrong(*e as usize);
                        self.hint_stats.dynamic_repaired += 1;
                    }
                    self.meta[ci][preg.0 as usize].multi_use = true;
                    self.t.stats.repairs += 1;
                }
                Learn::Blocked { class, preg } => {
                    let ci = class.index();
                    let m = self.meta[ci][preg.0 as usize];
                    if m.has_entry {
                        self.predictor.on_blocked_reuse(m.entry);
                    }
                    self.meta[ci][preg.0 as usize].blocked = true;
                    self.t.stats.blocked_reuses += 1;
                }
            }
        }
        let tag_of = |a: &DstAction| match a {
            DstAction::None => None,
            DstAction::Alloc { new_map, .. } | DstAction::Reuse { new_map, .. } => Some(*new_map),
        };
        let dst_tag = tag_of(&dst_action);
        let dst2_tag = tag_of(&dst2_action);
        uops.push(Uop {
            seq: next_seq,
            kind: UopKind::Main,
            srcs: src_tags,
            dst: dst_tag,
            dst2: dst2_tag,
        });
        self.t.stats.renamed += uops.len() as u64;
        self.records[h].extend(staged.into_iter().flatten());
        self.records[h].push(Record {
            seq: next_seq,
            read_marks,
            dst: dst_action,
            dst2: dst2_action,
        });
        Some(uops)
    }

    fn commit_on(&mut self, hart: HartId, seq: u64) {
        let h = hart.index();
        let record = self.records[h].commit_front(seq);
        for action in [record.dst, record.dst2] {
            match action {
                DstAction::None => {}
                DstAction::Alloc {
                    logical,
                    old_map,
                    new_map,
                }
                | DstAction::Reuse {
                    logical,
                    old_map,
                    new_map,
                    ..
                } => {
                    let ci = old_map.class.index();
                    if self.prt[ci].map_dec(old_map.preg) == 0 {
                        self.release(old_map.class, old_map.preg);
                    }
                    self.t.retire_maps[h].set(logical, new_map);
                }
            }
        }
    }

    fn squash_after_on(&mut self, hart: HartId, seq: u64) -> &SquashOutcome {
        let h = hart.index();
        self.epoch += 1;
        let mut recovers = std::mem::take(&mut self.squash.recovers);
        recovers.clear();
        let mut undone = 0;
        while let Some(record) = self.records[h].pop_younger(seq) {
            self.undo_record(h, record, &mut recovers);
            undone += 1;
            self.t.stats.squashed += 1;
        }
        self.squash = SquashOutcome { undone, recovers };
        &self.squash
    }

    fn state_epoch(&self) -> u64 {
        self.epoch
    }

    fn note_stall_on(&mut self, hart: HartId) {
        let d = self.stall_delta[hart.index()];
        self.t.stats.reuses += d.reuses;
        self.t.stats.safe_reuses += d.safe_reuses;
        self.t.stats.speculative_reuses += d.speculative_reuses;
        self.t.stats.allocations += d.allocations;
        self.hint_stats.static_allocs += d.static_allocs;
        self.hint_stats.dynamic_allocs += d.dynamic_allocs;
        self.hint_stats.static_speculations += d.static_speculations;
        self.hint_stats.dynamic_speculations += d.dynamic_speculations;
        self.hint_stats.static_denials += d.static_denials;
        self.t.stats.stalls += 1;
    }

    fn stats(&self) -> &RenameStats {
        &self.t.stats
    }

    fn free_regs(&self, class: RegClass) -> usize {
        self.t.free_regs(class)
    }

    fn in_use_per_bank(&self, class: RegClass) -> Vec<usize> {
        self.t.in_use_per_bank(class)
    }

    fn in_use_per_bank_into(&self, class: RegClass, out: &mut Vec<usize>) {
        self.t.in_use_per_bank_into(class, out);
    }

    fn allocated_total(&self, class: RegClass) -> usize {
        self.t.allocated_total(class)
    }

    fn banks(&self, class: RegClass) -> &BankConfig {
        self.t.banks(class)
    }

    fn max_version(&self) -> u8 {
        self.t.max_version()
    }

    fn predictor_stats(&self) -> crate::PredictorStats {
        *self.predictor.stats()
    }

    fn audit(&self) -> Result<(), String> {
        self.audit_invariants()
    }

    fn arch_map_on(&self, hart: HartId) -> Option<&MapTable> {
        Some(&self.t.retire_maps[hart.index()])
    }

    fn install_predictors(
        &mut self,
        predictor: &RegTypePredictor,
        single_use: &SingleUsePredictor,
    ) {
        self.epoch += 1;
        self.predictor = predictor.clone();
        self.predictor.reset_stats();
        self.single_use = single_use.clone();
        self.hint_stats = HintStats::default();
    }

    fn install_hints(&mut self, hints: &ShareHintTable) {
        self.epoch += 1;
        self.hints = Some(hints.clone());
    }

    fn hint_stats(&self) -> HintStats {
        self.hint_stats
    }
}
