//! Per-bank free lists with closest-bank allocation (§IV-D).

use crate::{BankConfig, PhysReg};

/// Free physical registers, kept per bank so allocation can honor the
/// register type predictor's bank choice.
///
/// When the predicted bank is empty, "a register with the closest number
/// of shadow cells will be allocated" (§IV-D): the search visits banks in
/// order of distance from the prediction, preferring the *larger* bank on
/// ties so a predicted-reusable register degrades toward more shadow cells
/// before giving up reuse entirely.
///
/// # Examples
///
/// ```
/// use regshare_core::{BankConfig, FreeList};
///
/// let banks = BankConfig::new(vec![2, 1]);
/// let mut fl = FreeList::new(&banks);
/// assert_eq!(fl.free_total(), 3);
/// let p = fl.alloc(1).unwrap();
/// assert_eq!(banks.shadow_cells_of(p), 1);
/// fl.free(p, &banks);
/// assert_eq!(fl.free_total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FreeList {
    per_bank: Vec<Vec<PhysReg>>,
    /// `orders[p]` is the bank visit order when bank `p` is preferred
    /// (by distance, larger bank first on ties). Precomputed once so the
    /// per-allocation fast path is a plain table walk instead of a sort.
    orders: Vec<Vec<u8>>,
}

impl FreeList {
    /// Creates a free list containing every register of the layout.
    pub fn new(banks: &BankConfig) -> Self {
        let n = banks.num_banks();
        let mut per_bank = Vec::with_capacity(n);
        for k in 0..n {
            let regs: Vec<PhysReg> = banks.bank_range(k).rev().map(PhysReg).collect();
            per_bank.push(regs);
        }
        let orders = (0..n as i32)
            .map(|pref| {
                let mut order: Vec<i32> = (0..n as i32).collect();
                order.sort_by_key(|&k| ((k - pref).abs(), std::cmp::Reverse(k)));
                order.into_iter().map(|k| k as u8).collect()
            })
            .collect();
        FreeList { per_bank, orders }
    }

    /// Allocates from `preferred_bank`, falling back to the closest
    /// non-empty bank (larger first on ties). Returns `None` when every
    /// bank is empty — the rename stall condition.
    pub fn alloc(&mut self, preferred_bank: u8) -> Option<PhysReg> {
        let pref = (preferred_bank as usize).min(self.per_bank.len() - 1);
        for &k in &self.orders[pref] {
            if let Some(p) = self.per_bank[k as usize].pop() {
                return Some(p);
            }
        }
        None
    }

    /// Allocates strictly from `bank`, with no fallback.
    pub fn alloc_exact(&mut self, bank: u8) -> Option<PhysReg> {
        self.per_bank.get_mut(bank as usize)?.pop()
    }

    /// Returns a register to its bank.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the register is already free.
    pub fn free(&mut self, preg: PhysReg, banks: &BankConfig) {
        let bank = banks.shadow_cells_of(preg) as usize;
        debug_assert!(
            !self.per_bank[bank].contains(&preg),
            "double free of {preg}"
        );
        self.per_bank[bank].push(preg);
    }

    /// Free registers in bank `k`.
    pub fn free_in_bank(&self, k: usize) -> usize {
        self.per_bank.get(k).map_or(0, Vec::len)
    }

    /// Total free registers across all banks.
    pub fn free_total(&self) -> usize {
        self.per_bank.iter().map(Vec::len).sum()
    }

    /// True when no register is free (rename must stall on allocation).
    pub fn is_exhausted(&self) -> bool {
        self.free_total() == 0
    }

    /// Iterates over every free register, bank by bank. Used by the
    /// invariant auditor to check the free list against the map table.
    pub fn iter(&self) -> impl Iterator<Item = PhysReg> + '_ {
        self.per_bank.iter().flat_map(|bank| bank.iter().copied())
    }

    /// Removes one free register (any bank), or `None` when exhausted.
    /// Exists only so auditor self-tests can *deliberately* leak a
    /// register; normal allocation goes through [`FreeList::alloc`].
    pub(crate) fn pop_any(&mut self) -> Option<PhysReg> {
        self.per_bank.iter_mut().find_map(Vec::pop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banks() -> BankConfig {
        BankConfig::new(vec![2, 2, 2, 2])
    }

    #[test]
    fn starts_with_all_registers_free() {
        let b = banks();
        let fl = FreeList::new(&b);
        assert_eq!(fl.free_total(), 8);
        for k in 0..4 {
            assert_eq!(fl.free_in_bank(k), 2);
        }
    }

    #[test]
    fn allocates_from_preferred_bank() {
        let b = banks();
        let mut fl = FreeList::new(&b);
        let p = fl.alloc(2).unwrap();
        assert_eq!(b.shadow_cells_of(p), 2);
    }

    #[test]
    fn falls_back_to_closest_bank_preferring_more_shadows() {
        let b = banks();
        let mut fl = FreeList::new(&b);
        // Drain bank 1.
        fl.alloc_exact(1).unwrap();
        fl.alloc_exact(1).unwrap();
        // Preferring 1: ties between bank 0 and 2 go to bank 2.
        let p = fl.alloc(1).unwrap();
        assert_eq!(b.shadow_cells_of(p), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let b = BankConfig::new(vec![1]);
        let mut fl = FreeList::new(&b);
        assert!(fl.alloc(0).is_some());
        assert!(fl.alloc(0).is_none());
        assert!(fl.is_exhausted());
    }

    #[test]
    fn free_returns_register_to_its_bank() {
        let b = banks();
        let mut fl = FreeList::new(&b);
        let p = fl.alloc(3).unwrap();
        assert_eq!(fl.free_in_bank(3), 1);
        fl.free(p, &b);
        assert_eq!(fl.free_in_bank(3), 2);
    }

    #[test]
    fn preferred_bank_beyond_layout_clamps() {
        let b = BankConfig::new(vec![2]);
        let mut fl = FreeList::new(&b);
        assert!(fl.alloc(3).is_some());
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let b = banks();
        let mut fl = FreeList::new(&b);
        let p = fl.alloc(0).unwrap();
        fl.free(p, &b);
        fl.free(p, &b);
    }

    #[test]
    fn alloc_exact_respects_bank() {
        let b = banks();
        let mut fl = FreeList::new(&b);
        let p = fl.alloc_exact(0).unwrap();
        assert_eq!(b.shadow_cells_of(p), 0);
        assert!(fl.alloc_exact(7).is_none()); // no such bank
    }
}
