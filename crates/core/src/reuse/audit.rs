//! Invariant auditing and deliberate corruption for [`ReuseRenamer`].
//!
//! Split out of the main module so the renaming mechanism and its
//! self-checking machinery stay independently readable.

use super::{DstAction, ReuseRenamer};
use crate::{PhysReg, TaggedReg};
use regshare_isa::{ArchReg, RegClass};

/// A deliberate bookkeeping corruption, used by the invariant auditor's
/// self-tests: each kind breaks exactly one invariant that
/// [`crate::Renamer::audit`] must then report with a matching diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Silently drop a register from the integer free list — a physical
    /// register leak.
    LeakPreg,
    /// Advance `x1`'s map-table version tag past its PRT counter — a
    /// stale version tag that no rename could have produced.
    StaleVersionTag,
    /// Add a phantom mapping reference to `x1`'s physical register — a
    /// reference-count off-by-one.
    RefcountOffByOne,
    /// Alias thread 1's `x1` mapping onto thread 0's physical register —
    /// a cross-thread ownership leak (requires `threads >= 2`).
    CrossThreadLeak,
}

impl ReuseRenamer {
    /// Deliberately corrupts internal bookkeeping (auditor self-tests
    /// only). The corrupted state violates exactly the invariant named by
    /// `kind`; the next [`crate::Renamer::audit`] call must detect it.
    pub fn corrupt(&mut self, kind: CorruptKind) {
        let r1 = ArchReg::new(RegClass::Int, 1);
        let ci = RegClass::Int.index();
        match kind {
            CorruptKind::LeakPreg => {
                let leaked = self.t.free[ci].pop_any();
                debug_assert!(leaked.is_some(), "no free register to leak");
            }
            CorruptKind::StaleVersionTag => {
                let t = self.t.maps[0].get(r1);
                let counter = self.prt[ci].entry(t.preg).counter;
                self.t.maps[0].set(r1, TaggedReg::new(t.class, t.preg, counter + 1));
            }
            CorruptKind::RefcountOffByOne => {
                let t = self.t.maps[0].get(r1);
                self.prt[ci].map_inc(t.preg);
            }
            CorruptKind::CrossThreadLeak => {
                assert!(
                    self.t.threads() >= 2,
                    "cross-thread leak corruption needs at least two threads"
                );
                let stolen = self.t.maps[0].get(r1);
                let old = self.t.maps[1].set(r1, stolen);
                // Keep the reference counts self-consistent so only the
                // ownership invariant trips, not refcount conservation.
                self.prt[ci].map_inc(stolen.preg);
                if self.prt[ci].map_dec(old.preg) == 0 {
                    self.release(old.class, old.preg);
                }
            }
        }
    }

    /// The full invariant sweep behind [`crate::Renamer::audit`].
    pub(super) fn audit_invariants(&self) -> Result<(), String> {
        for class in RegClass::ALL {
            let ci = class.index();
            let banks = self.t.config.banks(class);
            let total = banks.total();
            let max_version = self.t.config.max_version();
            // Reference-count conservation: every PRT mapping count must
            // equal the references actually held — speculative map-table
            // entries plus the previous mappings kept alive by in-flight
            // rename records (they are decremented at commit).
            let mut expected = vec![0u32; total];
            // Cross-thread ownership: each physical register may be
            // reachable (speculative map or in-flight record) from at
            // most one thread, since reuse candidates are always the
            // renaming thread's own sources.
            let mut owner = vec![usize::MAX; total];
            let claim = |owner: &mut Vec<usize>, i: usize, h: usize| -> Result<(), String> {
                if owner[i] != usize::MAX && owner[i] != h {
                    return Err(format!(
                        "{class}: p{i} is referenced by both thread {} and thread {h} — \
                         a cross-thread register leak",
                        owner[i]
                    ));
                }
                owner[i] = h;
                Ok(())
            };
            for h in 0..self.t.threads() {
                for (_, tag) in self.t.maps[h].iter_class(class) {
                    expected[tag.preg.0 as usize] += 1;
                    claim(&mut owner, tag.preg.0 as usize, h)?;
                }
                for record in self.records[h].iter() {
                    for action in [&record.dst, &record.dst2] {
                        if let DstAction::Alloc { old_map, .. } | DstAction::Reuse { old_map, .. } =
                            action
                        {
                            if old_map.class == class {
                                expected[old_map.preg.0 as usize] += 1;
                                claim(&mut owner, old_map.preg.0 as usize, h)?;
                            }
                        }
                    }
                }
            }
            let free = self.t.free_bitmap(class)?;
            for i in 0..total {
                let p = PhysReg(i as u16);
                let count = self.prt[ci].mapcount(p) as u32;
                if count != expected[i] {
                    return Err(format!(
                        "{class}: {p} mapping count {count} != {} references held by \
                         the map table and in-flight renames",
                        expected[i]
                    ));
                }
                if free[i] && count != 0 {
                    return Err(format!(
                        "{class}: {p} is on the free list but still mapped {count} time(s)"
                    ));
                }
                if !free[i] && count == 0 {
                    return Err(format!(
                        "{class}: {p} leaked — mapping count is 0 but it is not on the free list"
                    ));
                }
                let counter = self.prt[ci].entry(p).counter;
                if counter > max_version {
                    return Err(format!(
                        "{class}: {p} version counter {counter} exceeds the maximum {max_version}"
                    ));
                }
            }
            // Version-tag sanity: no map may hold a version the PRT never
            // issued, nor one without a backing shadow cell.
            for h in 0..self.t.threads() {
                for (table, name) in [
                    (&self.t.maps[h], "map table"),
                    (&self.t.retire_maps[h], "retire map"),
                ] {
                    for (r, tag) in table.iter_class(class) {
                        let counter = self.prt[ci].entry(tag.preg).counter;
                        if tag.version > counter {
                            return Err(format!(
                                "{class}: {name} entry {r} (thread {h}) holds stale version \
                                 tag {tag} beyond PRT counter {counter}"
                            ));
                        }
                        let cells = banks.shadow_cells_of(tag.preg);
                        if tag.version > cells {
                            return Err(format!(
                                "{class}: {name} entry {r} (thread {h}) version {} exceeds \
                                 the {cells} shadow cell(s) of {}",
                                tag.version, tag.preg
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
