//! Supporting value types of the sharing renamer: per-register
//! allocation metadata, speculative-reuse decisions, the in-flight
//! rename record, and the stall-replay counter delta.

use crate::rename_common::{ReadMarks, SeqRecord};
use crate::renamer::{HintStats, RenameStats};
use crate::TaggedReg;
use regshare_isa::{ArchReg, ShareHint};

/// Per-physical-register allocation metadata, used for the predictor's
/// release-time feedback and the Fig. 12 accuracy accounting.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct PregMeta {
    /// Predictor entry used at allocation.
    pub(super) entry: usize,
    /// Entry value at allocation (the prediction).
    pub(super) predicted: u8,
    /// Reuses observed so far (decremented when a reuse is squashed).
    pub(super) reuses: u8,
    /// A single-use misprediction repair was triggered on this register.
    pub(super) multi_use: bool,
    /// A reuse attempt was blocked by missing shadow capacity.
    pub(super) blocked: bool,
    /// False for the initial architectural mappings (no allocating PC).
    pub(super) has_entry: bool,
    /// The bank was chosen by a static hint rather than the type
    /// predictor; release feedback then goes to [`HintStats`] instead of
    /// the predictor.
    pub(super) static_bank: bool,
    /// For each version created by a *speculative* (non-redefining)
    /// reuse: the single-use-predictor entry of the consumer that took
    /// it, for release-time reinforcement / repair-time correction.
    pub(super) spec_entries: [Option<u32>; 8],
    /// Versions created by a speculation granted by a static `SingleUse`
    /// proof (never trains the dynamic predictor).
    pub(super) spec_static: [bool; 8],
    /// The compiler's hint for the producer of each live version, used
    /// when this register is weighed as a reuse source. Cleared back to
    /// `Unknown` when the version is squashed.
    pub(super) version_hints: [ShareHint; 8],
}

/// Who authorised a speculative (non-redefining) reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum SpecSource {
    /// A static `SingleUse` proof from the hint table.
    Static,
    /// The dynamic single-use predictor.
    Dynamic,
}

/// Outcome of weighing a speculative-reuse candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum SpecDecision {
    Grant(SpecSource),
    /// Denied by an exact static proof (`NoReuse`/`Multi`) — counted in
    /// [`HintStats::static_denials`].
    DenyStatic,
    /// Denied without a static proof (predictor said no, or the policy
    /// has no grounds to speculate).
    Deny,
}

#[derive(Debug, Clone, Copy)]
pub(super) enum DstAction {
    None,
    /// A fresh allocation replacing `old_map`.
    Alloc {
        logical: ArchReg,
        old_map: TaggedReg,
        new_map: TaggedReg,
    },
    /// A reuse of a source register: version bumped from `prev_version`.
    Reuse {
        logical: ArchReg,
        old_map: TaggedReg,
        new_map: TaggedReg,
        prev_version: u8,
    },
}

#[derive(Debug, Clone, Copy)]
pub(super) struct Record {
    pub(super) seq: u64,
    /// Read bits set by this micro-op, with their previous values.
    pub(super) read_marks: ReadMarks,
    pub(super) dst: DstAction,
    /// Base-register writeback of post-increment operations.
    pub(super) dst2: DstAction,
}

impl SeqRecord for Record {
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// The statistics a failed rename attempt leaves behind: the stall
/// rollback restores every table, but the attempt's counters stand —
/// hardware counts attempted work, and a reuse taken in Phase C is a
/// reuse even when Phase D then stalls the instruction. While the
/// [`Renamer::state_epoch`] is unchanged a retry is bit-identical to the
/// recorded attempt, so [`Renamer::note_stall`] replays this delta
/// instead of re-running the rename.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct StallDelta {
    pub(super) reuses: u64,
    pub(super) safe_reuses: u64,
    pub(super) speculative_reuses: u64,
    pub(super) allocations: u64,
    pub(super) static_allocs: u64,
    pub(super) dynamic_allocs: u64,
    pub(super) static_speculations: u64,
    pub(super) dynamic_speculations: u64,
    pub(super) static_denials: u64,
}

impl StallDelta {
    /// Snapshot of every counter a failed attempt can bump.
    pub(super) fn capture(stats: &RenameStats, hints: &HintStats) -> Self {
        StallDelta {
            reuses: stats.reuses,
            safe_reuses: stats.safe_reuses,
            speculative_reuses: stats.speculative_reuses,
            allocations: stats.allocations,
            static_allocs: hints.static_allocs,
            dynamic_allocs: hints.dynamic_allocs,
            static_speculations: hints.static_speculations,
            dynamic_speculations: hints.dynamic_speculations,
            static_denials: hints.static_denials,
        }
    }

    pub(super) fn since(&self, before: &StallDelta) -> Self {
        StallDelta {
            reuses: self.reuses - before.reuses,
            safe_reuses: self.safe_reuses - before.safe_reuses,
            speculative_reuses: self.speculative_reuses - before.speculative_reuses,
            allocations: self.allocations - before.allocations,
            static_allocs: self.static_allocs - before.static_allocs,
            dynamic_allocs: self.dynamic_allocs - before.dynamic_allocs,
            static_speculations: self.static_speculations - before.static_speculations,
            dynamic_speculations: self.dynamic_speculations - before.dynamic_speculations,
            static_denials: self.static_denials - before.static_denials,
        }
    }
}
