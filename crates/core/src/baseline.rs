//! The conventional renaming scheme: merged register file with
//! release-on-commit (the paper's baseline, §II).

use crate::rename_common::{CheckpointStack, RenameTables, SeqRecord};
use crate::renamer::{RenameStats, Renamer, RenamerConfig, SquashOutcome, Uop, UopKind, UopVec};
use crate::{BankConfig, MapTable, TaggedReg};
use regshare_isa::{ArchReg, HartId, Inst, RegClass};

#[derive(Debug, Clone, Copy)]
struct DstChange {
    logical: ArchReg,
    old_map: TaggedReg,
    new_map: TaggedReg,
}

#[derive(Debug, Clone)]
struct Record {
    seq: u64,
    dst: Option<DstChange>,
    dst2: Option<DstChange>,
}

impl SeqRecord for Record {
    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Conventional register renaming: every destination gets a fresh physical
/// register; the previous register of the same logical register is
/// released when the redefining instruction commits. With
/// `RenamerConfig::threads` > 1, each hardware thread renames through its
/// own map table and checkpoint stack over the shared free lists.
///
/// # Examples
///
/// ```
/// use regshare_core::{BaselineRenamer, Renamer, RenamerConfig};
/// use regshare_isa::{Inst, Opcode, reg};
///
/// let mut r = BaselineRenamer::new(RenamerConfig::baseline(48));
/// let inst = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
/// let uops = r.rename(0, 0, &inst).unwrap();
/// assert_eq!(uops.len(), 1);
/// assert!(uops[0].dst.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct BaselineRenamer {
    t: RenameTables,
    /// One in-flight record stack per hardware thread: commits are in
    /// sequence order per thread, and a squash walks only the squashing
    /// thread's records.
    records: Vec<CheckpointStack<Record>>,
    /// Reused squash-outcome storage (`recovers` stays empty: the
    /// baseline never shares registers, so no recover commands).
    squash: SquashOutcome,
    /// Bumped by every mutating entry point except a failed rename; see
    /// [`Renamer::state_epoch`].
    epoch: u64,
}

impl BaselineRenamer {
    /// Creates a renamer with every logical register mapped to an initial
    /// physical register.
    ///
    /// # Panics
    ///
    /// Panics if a register file is smaller than the logical register
    /// count (no registers would remain for renaming).
    pub fn new(config: RenamerConfig) -> Self {
        let threads = config.threads;
        BaselineRenamer {
            t: RenameTables::new(config, |_, _| {}),
            records: (0..threads).map(|_| CheckpointStack::new()).collect(),
            squash: SquashOutcome::default(),
            epoch: 0,
        }
    }

    /// The current (speculative) rename map.
    pub fn map(&self) -> &MapTable {
        self.t.map()
    }

    /// The retirement (architectural) rename map.
    pub fn retire_map(&self) -> &MapTable {
        self.t.retire_map()
    }
}

impl Renamer for BaselineRenamer {
    fn threads(&self) -> usize {
        self.t.threads()
    }

    fn rename_on(&mut self, hart: HartId, seq: u64, _pc: u64, inst: &Inst) -> Option<UopVec> {
        let h = hart.index();
        // Sources first: read the thread's map.
        let mut srcs = [None; 3];
        for (slot, src) in srcs.iter_mut().zip(inst.raw_sources()) {
            if let Some(r) = src.filter(|r| !r.is_zero()) {
                *slot = Some(self.t.maps[h].get(r));
            }
        }
        // Destinations: allocate (post-increment ops have a second one).
        let allocate = |t: &mut RenameTables, logical: ArchReg| {
            let class = logical.class();
            let preg = t.free[class.index()].alloc(0)?;
            let new_map = TaggedReg::new(class, preg, 0);
            let old_map = t.maps[h].set(logical, new_map);
            t.stats.allocations += 1;
            Some(DstChange {
                logical,
                old_map,
                new_map,
            })
        };
        let dst_change = match inst.dst() {
            Some(logical) => match allocate(&mut self.t, logical) {
                Some(c) => Some(c),
                None => {
                    self.t.stats.stalls += 1;
                    return None;
                }
            },
            None => None,
        };
        let dst2_change = match inst.dst2() {
            Some(logical) => match allocate(&mut self.t, logical) {
                Some(c) => Some(c),
                None => {
                    // Roll the first allocation back before stalling.
                    if let Some(d) = dst_change {
                        self.t.maps[h].set(d.logical, d.old_map);
                        let class = d.new_map.class;
                        self.t.free[class.index()].free(d.new_map.preg, self.t.config.banks(class));
                        self.t.stats.allocations -= 1;
                    }
                    self.t.stats.stalls += 1;
                    return None;
                }
            },
            None => None,
        };
        let dst_tag = dst_change.as_ref().map(|d| d.new_map);
        let dst2_tag = dst2_change.as_ref().map(|d| d.new_map);
        self.records[h].push(Record {
            seq,
            dst: dst_change,
            dst2: dst2_change,
        });
        self.t.stats.renamed += 1;
        let mut uops = UopVec::new();
        uops.push(Uop {
            seq,
            kind: UopKind::Main,
            srcs,
            dst: dst_tag,
            dst2: dst2_tag,
        });
        Some(uops)
    }

    fn commit_on(&mut self, hart: HartId, seq: u64) {
        let h = hart.index();
        let record = self.records[h].commit_front(seq);
        for d in [record.dst, record.dst2].into_iter().flatten() {
            // Release-on-commit: the redefined mapping dies here. A freed
            // register is what a stalled rename waits for.
            self.epoch += 1;
            let class = d.old_map.class;
            self.t.free[class.index()].free(d.old_map.preg, self.t.config.banks(class));
            self.t.stats.releases += 1;
            self.t.stats.chain_lengths.record(0);
            self.t.retire_maps[h].set(d.logical, d.new_map);
        }
    }

    fn squash_after_on(&mut self, hart: HartId, seq: u64) -> &SquashOutcome {
        let h = hart.index();
        self.epoch += 1;
        self.squash.undone = 0;
        while let Some(record) = self.records[h].pop_younger(seq) {
            for d in [record.dst2, record.dst].into_iter().flatten() {
                self.t.maps[h].set(d.logical, d.old_map);
                let class = d.new_map.class;
                self.t.free[class.index()].free(d.new_map.preg, self.t.config.banks(class));
            }
            self.squash.undone += 1;
            self.t.stats.squashed += 1;
        }
        &self.squash
    }

    fn state_epoch(&self) -> u64 {
        self.epoch
    }

    fn note_stall_on(&mut self, _hart: HartId) {
        // A failed baseline rename rolls back fully; only the stall
        // counter survives the attempt.
        self.t.stats.stalls += 1;
    }

    fn stats(&self) -> &RenameStats {
        &self.t.stats
    }

    fn free_regs(&self, class: RegClass) -> usize {
        self.t.free_regs(class)
    }

    fn in_use_per_bank(&self, class: RegClass) -> Vec<usize> {
        self.t.in_use_per_bank(class)
    }

    fn in_use_per_bank_into(&self, class: RegClass, out: &mut Vec<usize>) {
        self.t.in_use_per_bank_into(class, out);
    }

    fn allocated_total(&self, class: RegClass) -> usize {
        self.t.allocated_total(class)
    }

    fn banks(&self, class: RegClass) -> &BankConfig {
        self.t.banks(class)
    }

    fn max_version(&self) -> u8 {
        self.t.max_version()
    }

    fn audit(&self) -> Result<(), String> {
        let threads = self.t.threads();
        for class in RegClass::ALL {
            let total = self.t.config.banks(class).total();
            // Every register is either free or referenced exactly once:
            // by one thread's current map entry, or by one thread's
            // in-flight record keeping the redefined mapping alive until
            // commit. Counting per thread also proves no register is
            // reachable from two threads at once.
            let mut refs = vec![0u32; total];
            let mut owner = vec![usize::MAX; total];
            let mut claim = |i: usize, h: usize| -> Result<(), String> {
                if owner[i] != usize::MAX && owner[i] != h {
                    return Err(format!(
                        "{class}: p{i} is referenced by both thread {} and thread {h} — \
                         a cross-thread register leak",
                        owner[i]
                    ));
                }
                owner[i] = h;
                refs[i] += 1;
                Ok(())
            };
            for h in 0..threads {
                for (_, tag) in self.t.maps[h].iter_class(class) {
                    claim(tag.preg.0 as usize, h)?;
                }
                for record in self.records[h].iter() {
                    for d in [&record.dst, &record.dst2].into_iter().flatten() {
                        if d.old_map.class == class {
                            claim(d.old_map.preg.0 as usize, h)?;
                        }
                    }
                }
            }
            let free = self.t.free_bitmap(class)?;
            for (i, (&r, &f)) in refs.iter().zip(free.iter()).enumerate() {
                match (r, f) {
                    (0, false) => {
                        return Err(format!(
                            "{class}: p{i} leaked — unreferenced but not on the free list"
                        ))
                    }
                    (1, false) | (0, true) => {}
                    (_, true) => {
                        return Err(format!(
                            "{class}: p{i} is on the free list but referenced {r} time(s)"
                        ))
                    }
                    _ => {
                        return Err(format!(
                            "{class}: p{i} referenced {r} times — the baseline never shares"
                        ))
                    }
                }
            }
            // Per-thread retire-map consistency: an architectural mapping
            // must never point at a free register.
            for h in 0..threads {
                for (r, tag) in self.t.retire_maps[h].iter_class(class) {
                    if free[tag.preg.0 as usize] {
                        return Err(format!(
                            "{class}: thread {h} retire map entry {r} points at free {}",
                            tag.preg
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn arch_map_on(&self, hart: HartId) -> Option<&MapTable> {
        Some(&self.t.retire_maps[hart.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Opcode};

    fn renamer() -> BaselineRenamer {
        BaselineRenamer::new(RenamerConfig::baseline(40))
    }

    #[test]
    fn initial_state_maps_all_logicals() {
        let r = renamer();
        assert_eq!(r.free_regs(RegClass::Int), 8);
        assert_eq!(r.free_regs(RegClass::Fp), 8);
        assert_eq!(r.in_use_per_bank(RegClass::Int), vec![32]);
    }

    #[test]
    fn rename_allocates_fresh_register_per_destination() {
        let mut r = renamer();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(1));
        let u1 = r.rename(0, 0, &i).unwrap()[0];
        let u2 = r.rename(1, 4, &i).unwrap()[0];
        assert_ne!(u1.dst.unwrap().preg, u2.dst.unwrap().preg);
        // Second rename's source is the first rename's destination.
        assert_eq!(u2.srcs[0].unwrap(), u1.dst.unwrap());
        assert_eq!(r.free_regs(RegClass::Int), 6);
    }

    #[test]
    fn commit_releases_previous_mapping() {
        let mut r = renamer();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        r.rename(0, 0, &i).unwrap();
        assert_eq!(r.free_regs(RegClass::Int), 7);
        r.commit(0);
        assert_eq!(r.free_regs(RegClass::Int), 8);
        assert_eq!(r.stats().releases, 1);
    }

    #[test]
    fn squash_restores_map_and_free_list() {
        let mut r = renamer();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        let before = r.map().get(reg::x(1));
        r.rename(0, 0, &i).unwrap();
        r.rename(1, 4, &i).unwrap();
        let out = r.squash_after(u64::MAX - 1); // squash nothing
        assert_eq!(out.undone, 0);
        let out = r.squash_after(0); // squash seq 1
        assert_eq!(out.undone, 1);
        let out = r.squash_after(u64::MAX); // no-op again
        assert_eq!(out.undone, 0);
        r.squash_after(0);
        // Squash everything younger than "before program start".
        let mut r2 = renamer();
        r2.rename(0, 0, &i).unwrap();
        let out = r2.squash_after(u64::MAX);
        assert_eq!(out.undone, 0);
        let mut r3 = renamer();
        r3.rename(5, 0, &i).unwrap();
        let out = r3.squash_after(4);
        assert_eq!(out.undone, 1);
        assert_eq!(r3.map().get(reg::x(1)), before);
        assert_eq!(r3.free_regs(RegClass::Int), 8);
    }

    #[test]
    fn stall_when_no_free_register() {
        let mut r = BaselineRenamer::new(RenamerConfig::baseline(33));
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        assert!(r.rename(0, 0, &i).is_some()); // takes the last register
        assert!(r.rename(1, 4, &i).is_none());
        assert_eq!(r.stats().stalls, 1);
        // Committing the first releases its old register and unblocks.
        r.commit(0);
        assert!(r.rename(1, 4, &i).is_some());
    }

    #[test]
    fn stores_and_branches_need_no_register() {
        let mut r = renamer();
        let s = Inst::store(Opcode::St, reg::x(1), reg::x(2), 0);
        let u = r.rename(0, 0, &s).unwrap()[0];
        assert!(u.dst.is_none());
        assert_eq!(u.srcs.iter().flatten().count(), 2);
        assert_eq!(r.free_regs(RegClass::Int), 8);
    }

    #[test]
    fn retire_map_follows_commits_only() {
        let mut r = renamer();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        let u = r.rename(0, 0, &i).unwrap()[0];
        assert_ne!(r.retire_map().get(reg::x(1)), u.dst.unwrap());
        r.commit(0);
        assert_eq!(r.retire_map().get(reg::x(1)), u.dst.unwrap());
    }

    #[test]
    #[should_panic(expected = "rename order")]
    fn out_of_order_commit_panics() {
        let mut r = renamer();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        r.rename(0, 0, &i).unwrap();
        r.rename(1, 4, &i).unwrap();
        r.commit(1);
    }

    #[test]
    fn audit_is_clean_through_rename_squash_commit() {
        let mut r = renamer();
        r.audit().unwrap();
        let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        r.rename(0, 0, &i).unwrap();
        r.rename(1, 4, &i).unwrap();
        r.audit().unwrap();
        r.squash_after(0);
        r.audit().unwrap();
        r.commit(0);
        r.audit().unwrap();
    }

    #[test]
    fn fp_and_int_free_lists_are_independent() {
        let mut r = renamer();
        let fi = Inst::rrr(Opcode::Fadd, reg::f(1), reg::f(2), reg::f(3));
        r.rename(0, 0, &fi).unwrap();
        assert_eq!(r.free_regs(RegClass::Fp), 7);
        assert_eq!(r.free_regs(RegClass::Int), 8);
    }
}
