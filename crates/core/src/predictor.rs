//! The register type predictor (§IV-D).

use serde::{Deserialize, Serialize};

/// Accuracy accounting for Fig. 12 of the paper.
///
/// Categories are recorded when a physical register is released, comparing
/// the predicted reuse count (the entry value at allocation) against the
/// observed behavior:
///
/// * *reuse predicted, correct* — predicted `k ≥ 1` reuses, observed
///   exactly `k`.
/// * *reuse predicted, incorrect* — predicted `k ≥ 1`, observed a
///   different count (including registers that turned out multi-use and
///   triggered a repair).
/// * *no-reuse predicted, correct* — predicted 0 and no reuse opportunity
///   was ever blocked on the register.
/// * *no-reuse predicted, incorrect* — predicted 0 but a reuse was
///   attempted and blocked (a lost opportunity, the paper's 2.28% class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predicted reusable and the reuse count matched.
    pub reuse_correct: u64,
    /// Predicted reusable but the count did not match.
    pub reuse_incorrect: u64,
    /// Predicted not reusable and no opportunity was lost.
    pub noreuse_correct: u64,
    /// Predicted not reusable but a reuse was blocked (lost opportunity).
    pub noreuse_incorrect: u64,
}

impl PredictorStats {
    /// Total classified releases.
    pub fn total(&self) -> u64 {
        self.reuse_correct + self.reuse_incorrect + self.noreuse_correct + self.noreuse_incorrect
    }

    /// Overall accuracy in `[0, 1]`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.reuse_correct + self.noreuse_correct) as f64 / t as f64
        }
    }
}

/// The PC-indexed register type predictor: a table of small saturating
/// counters whose value is the number of shadow cells (= expected reuses)
/// the next allocation by that instruction should receive.
///
/// Update rules (§IV-D):
///
/// 1. On release, if not all allocated shadow copies were used, the entry
///    is decremented ([`RegTypePredictor::on_release`]).
/// 2. If a register predicted single-use is observed to be multi-use, the
///    entry is reset to zero ([`RegTypePredictor::on_multi_use`]).
/// 3. If a reuse is attempted but no shadow cell is available, the entry
///    is incremented so the next allocation gets more shadow copies
///    ([`RegTypePredictor::on_blocked_reuse`]).
///
/// # Examples
///
/// ```
/// use regshare_core::RegTypePredictor;
///
/// let mut p = RegTypePredictor::new(512, 2);
/// let e = p.entry_index(0x40);
/// assert_eq!(p.predict(0x40), 0);      // cold: conventional register
/// p.on_blocked_reuse(e);               // a reuse was blocked
/// assert_eq!(p.predict(0x40), 1);      // next time: one shadow cell
/// ```
#[derive(Debug, Clone)]
pub struct RegTypePredictor {
    table: Vec<u8>,
    max_value: u8,
    stats: PredictorStats,
}

impl RegTypePredictor {
    /// Creates a predictor with `entries` counters of `bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `bits` is 0 or > 3.
    pub fn new(entries: usize, bits: u8) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor entries must be a power of two"
        );
        assert!((1..=3).contains(&bits), "predictor entries are 1–3 bits");
        RegTypePredictor {
            table: vec![0; entries],
            max_value: (1 << bits) - 1,
            stats: PredictorStats::default(),
        }
    }

    /// The table index used for a given instruction PC (the paper's
    /// "simple hashing function", Fig. 7).
    pub fn entry_index(&self, pc: u64) -> usize {
        let h = pc ^ (pc >> 9) ^ (pc >> 17);
        (h as usize) & (self.table.len() - 1)
    }

    /// Predicted shadow-cell count (bank) for an allocation at `pc`.
    pub fn predict(&self, pc: u64) -> u8 {
        self.table[self.entry_index(pc)]
    }

    /// Rule 1: release-time feedback. `predicted` is the entry value used
    /// at allocation; `actual_reuses` the number of reuses observed;
    /// `multi_use` whether the register triggered a single-use
    /// misprediction repair. Also classifies the release for Fig. 12.
    pub fn on_release(
        &mut self,
        entry: usize,
        predicted: u8,
        actual_reuses: u8,
        multi_use: bool,
        blocked: bool,
    ) {
        // Fig. 12 classification.
        if predicted == 0 {
            if blocked {
                self.stats.noreuse_incorrect += 1;
            } else {
                self.stats.noreuse_correct += 1;
            }
        } else if actual_reuses == predicted && !multi_use {
            self.stats.reuse_correct += 1;
        } else {
            self.stats.reuse_incorrect += 1;
        }
        // Learning.
        if multi_use {
            self.table[entry] = 0;
        } else if actual_reuses < predicted {
            let e = &mut self.table[entry];
            *e = e.saturating_sub(1);
        }
    }

    /// Rule 2: a predicted-single-use register was observed multi-use.
    pub fn on_multi_use(&mut self, entry: usize) {
        self.table[entry] = 0;
    }

    /// Rule 3: a reuse was attempted but no shadow cell was available.
    pub fn on_blocked_reuse(&mut self, entry: usize) {
        let e = &mut self.table[entry];
        if *e < self.max_value {
            *e += 1;
        }
    }

    /// Accuracy statistics (Fig. 12).
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Clears the Fig. 12 accounting, keeping the learned counters. Used
    /// when a functionally-warmed predictor is handed to a measurement
    /// window.
    pub fn reset_stats(&mut self) {
        self.stats = PredictorStats::default();
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table has no entries (never for valid configs).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// The single-use predictor consulted when the first consumer of a value
/// is *not* the redefining instruction (§IV-A2): it decides whether to
/// speculatively reuse the source's physical register.
///
/// Indexed by the consuming instruction's PC. Entries are 2-bit counters
/// starting weakly single-use; a reuse that later triggers a repair
/// resets the entry, a reuse that survives to release reinforces it.
///
/// # Examples
///
/// ```
/// use regshare_core::SingleUsePredictor;
///
/// let mut p = SingleUsePredictor::new(512);
/// let e = p.entry_index(0x40);
/// assert!(p.predict(0x40));  // optimistic cold start
/// p.on_wrong(e);
/// assert!(!p.predict(0x40)); // repaired once: stop speculating
/// ```
#[derive(Debug, Clone)]
pub struct SingleUsePredictor {
    table: Vec<u8>,
}

impl SingleUsePredictor {
    /// Creates a predictor with all entries weakly predicting single-use.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "predictor entries must be a power of two"
        );
        SingleUsePredictor {
            table: vec![2; entries],
        }
    }

    /// The table index for a consumer PC.
    pub fn entry_index(&self, pc: u64) -> usize {
        let h = pc ^ (pc >> 7) ^ (pc >> 15);
        (h as usize) & (self.table.len() - 1)
    }

    /// Whether the consumer at `pc` should speculatively reuse its
    /// first-use source.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.entry_index(pc)] >= 2
    }

    /// A speculative reuse recorded at `entry` survived to release.
    pub fn on_correct(&mut self, entry: usize) {
        let e = &mut self.table[entry];
        *e = (*e + 1).min(3);
    }

    /// A speculative reuse recorded at `entry` was repaired (the value
    /// had another consumer).
    pub fn on_wrong(&mut self, entry: usize) {
        self.table[entry] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_use_predictor_learns_both_ways() {
        let mut p = SingleUsePredictor::new(64);
        let e = p.entry_index(12);
        assert!(p.predict(12));
        p.on_wrong(e);
        assert!(!p.predict(12));
        p.on_correct(e);
        assert!(!p.predict(12)); // needs two confirmations from zero
        p.on_correct(e);
        assert!(p.predict(12));
        p.on_correct(e);
        p.on_correct(e); // saturates
        assert!(p.predict(12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn single_use_predictor_rejects_non_pow2() {
        SingleUsePredictor::new(3);
    }

    #[test]
    fn cold_predictor_predicts_conventional() {
        let p = RegTypePredictor::new(64, 2);
        assert_eq!(p.predict(0), 0);
        assert_eq!(p.predict(12345), 0);
    }

    #[test]
    fn blocked_reuse_increments_saturating() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = p.entry_index(100);
        for _ in 0..5 {
            p.on_blocked_reuse(e);
        }
        assert_eq!(p.predict(100), 3); // saturates at 2^2 - 1
    }

    #[test]
    fn under_use_decrements_on_release() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = p.entry_index(0);
        p.on_blocked_reuse(e);
        p.on_blocked_reuse(e); // entry = 2
        p.on_release(e, 2, 1, false, false); // only one reuse happened
        assert_eq!(p.predict(0), 1);
    }

    #[test]
    fn exact_use_keeps_entry() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = p.entry_index(0);
        p.on_blocked_reuse(e);
        p.on_release(e, 1, 1, false, false);
        assert_eq!(p.predict(0), 1);
        assert_eq!(p.stats().reuse_correct, 1);
    }

    #[test]
    fn multi_use_resets_entry() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = p.entry_index(0);
        p.on_blocked_reuse(e);
        p.on_blocked_reuse(e);
        p.on_multi_use(e);
        assert_eq!(p.predict(0), 0);
    }

    #[test]
    fn release_with_repair_counts_incorrect_and_resets() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = p.entry_index(0);
        p.on_blocked_reuse(e);
        p.on_release(e, 1, 1, true, false);
        assert_eq!(p.stats().reuse_incorrect, 1);
        assert_eq!(p.predict(0), 0);
    }

    #[test]
    fn fig12_categories_and_accuracy() {
        let mut p = RegTypePredictor::new(64, 2);
        let e = 0;
        p.on_release(e, 0, 0, false, false); // noreuse correct
        p.on_release(e, 0, 0, false, true); // lost opportunity
        p.on_release(e, 2, 2, false, false); // reuse correct
        p.on_release(e, 2, 0, false, false); // reuse incorrect
        let s = *p.stats();
        assert_eq!(s.noreuse_correct, 1);
        assert_eq!(s.noreuse_incorrect, 1);
        assert_eq!(s.reuse_correct, 1);
        assert_eq!(s.reuse_incorrect, 1);
        assert_eq!(s.total(), 4);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entry_index_is_stable_and_in_range() {
        let p = RegTypePredictor::new(512, 2);
        for pc in [0u64, 4, 8, 1 << 20, u64::MAX] {
            let e = p.entry_index(pc);
            assert!(e < 512);
            assert_eq!(e, p.entry_index(pc));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_panics() {
        RegTypePredictor::new(100, 2);
    }
}
