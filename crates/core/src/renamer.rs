//! The [`Renamer`] trait: the interface between the rename stage of the
//! out-of-order pipeline and a renaming scheme.

use crate::{BankConfig, MapTable, TaggedReg};
use regshare_isa::{HartId, Inst, RegClass, ShareHintTable, MAX_HARTS};
use regshare_stats::Histogram;
use serde::{Deserialize, Serialize};

/// How the renamer combines the compiler's static sharing hints with its
/// dynamic predictors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HintPolicy {
    /// Ignore static hints entirely — the paper's configuration. This is
    /// the default and is bit-identical to the pre-hint simulator.
    #[default]
    DynamicOnly,
    /// Trust only the static proofs: speculate exactly where the hint is
    /// `SingleUse`, pick banks from the hint, and never consult or train
    /// the dynamic predictors.
    StaticOnly,
    /// Exact static proofs override the dynamic predictors; `Unknown`
    /// sites fall back to them unchanged.
    Hybrid,
}

/// Accuracy accounting for the static-hint path, split by the source of
/// each decision (static proof vs dynamic predictor) — the Fig. 12
/// analogue for the hint study.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HintStats {
    /// Destination allocations whose bank was chosen by a static hint.
    pub static_allocs: u64,
    /// Destination allocations banked by the dynamic type predictor.
    pub dynamic_allocs: u64,
    /// Speculative reuses granted by a static `SingleUse` proof.
    pub static_speculations: u64,
    /// Speculative reuses granted by the dynamic single-use predictor.
    pub dynamic_speculations: u64,
    /// Speculation opportunities denied by an exact static negative
    /// proof (`Multi` / `NoReuse`).
    pub static_denials: u64,
    /// Statically-granted speculations that survived to release.
    pub static_correct: u64,
    /// Statically-granted speculations repaired by a misprediction.
    pub static_repaired: u64,
    /// Dynamically-granted speculations that survived to release.
    pub dynamic_correct: u64,
    /// Dynamically-granted speculations repaired by a misprediction.
    pub dynamic_repaired: u64,
    /// Releases of statically-banked registers whose reuse count matched
    /// the hint-derived bank (Fig. 12 "correct" for the static source).
    pub static_bank_correct: u64,
    /// Releases of statically-banked registers that mismatched.
    pub static_bank_incorrect: u64,
}

impl HintStats {
    /// Accuracy of statically-granted speculations in `[0, 1]`; 0 when
    /// none resolved.
    pub fn static_accuracy(&self) -> f64 {
        let t = self.static_correct + self.static_repaired;
        if t == 0 {
            0.0
        } else {
            self.static_correct as f64 / t as f64
        }
    }

    /// Accuracy of dynamically-granted speculations in `[0, 1]`; 0 when
    /// none resolved.
    pub fn dynamic_accuracy(&self) -> f64 {
        let t = self.dynamic_correct + self.dynamic_repaired;
        if t == 0 {
            0.0
        } else {
            self.dynamic_correct as f64 / t as f64
        }
    }
}

/// Configuration shared by both renaming schemes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenamerConfig {
    /// Integer register file bank layout.
    pub int_banks: BankConfig,
    /// Floating-point register file bank layout.
    pub fp_banks: BankConfig,
    /// Width of the version counter in bits (the paper's 2-bit counter);
    /// versions saturate at `2^counter_bits − 1`.
    pub counter_bits: u8,
    /// Register type predictor entries (512 in the paper).
    pub predictor_entries: usize,
    /// Register type predictor entry width in bits (2 in the paper).
    pub predictor_bits: u8,
    /// Allow speculative (non-redefining) reuse gated by the single-use
    /// predictor (§IV-A2). Disabling restricts the scheme to provably
    /// safe redefining reuses — an ablation of the paper's speculation.
    pub speculative_reuse: bool,
    /// How static sharing hints combine with the dynamic predictors.
    #[serde(default)]
    pub hint_policy: HintPolicy,
    /// Hardware-thread contexts sharing the physical register file
    /// (1..=[`MAX_HARTS`]). Each thread gets its own map table, retire
    /// map and checkpoint stack; the free lists, PRT and predictors are
    /// shared.
    pub threads: usize,
}

impl RenamerConfig {
    /// Baseline configuration: conventional single-bank files of `regs`
    /// registers per class.
    pub fn baseline(regs: usize) -> Self {
        RenamerConfig {
            int_banks: BankConfig::conventional(regs),
            fp_banks: BankConfig::conventional(regs),
            counter_bits: 2,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        }
    }

    /// The paper's proposed configuration at equal area to a baseline of
    /// `baseline_regs` registers per class (Table III).
    ///
    /// # Panics
    ///
    /// Panics for sizes not listed in Table III.
    pub fn paper(baseline_regs: usize) -> Self {
        let banks = BankConfig::paper_row(baseline_regs);
        RenamerConfig {
            int_banks: banks.clone(),
            fp_banks: banks,
            counter_bits: 2,
            predictor_entries: 512,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        }
    }

    /// A tiny configuration for unit tests and doc examples: 40 registers
    /// per class in banks of 34/2/2/2.
    pub fn small_test() -> Self {
        let banks = BankConfig::new(vec![34, 2, 2, 2]);
        RenamerConfig {
            int_banks: banks.clone(),
            fp_banks: banks,
            counter_bits: 2,
            predictor_entries: 64,
            predictor_bits: 2,
            speculative_reuse: true,
            hint_policy: HintPolicy::DynamicOnly,
            threads: 1,
        }
    }

    /// The bank layout for one class.
    pub fn banks(&self, class: RegClass) -> &BankConfig {
        match class {
            RegClass::Int => &self.int_banks,
            RegClass::Fp => &self.fp_banks,
        }
    }

    /// The version saturation value (`2^counter_bits − 1`).
    pub fn max_version(&self) -> u8 {
        (1u8 << self.counter_bits.min(3)) - 1
    }

    /// The same configuration resized for `threads` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds [`MAX_HARTS`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(
            (1..=MAX_HARTS).contains(&threads),
            "threads must be in 1..={MAX_HARTS}, got {threads}"
        );
        self.threads = threads;
        self
    }
}

/// The kind of a renamed micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopKind {
    /// The instruction itself.
    Main,
    /// A single-use-misprediction repair: moves the value of its source
    /// tag into its destination register (§IV-D1). The pipeline charges
    /// the 3-step cost of Fig. 8 when the value must come out of a shadow
    /// cell, 1 step otherwise.
    RepairMove,
}

/// A renamed micro-op: physical source/destination tags plus a sequence
/// number. `rename` returns the repairs (if any) first and the main op
/// last; each micro-op must be dispatched, committed and squashed like a
/// regular instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uop {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Main instruction or injected repair.
    pub kind: UopKind,
    /// Positional source tags (aligned with `Inst::raw_sources`; `None`
    /// for absent operands and zero-register reads).
    pub srcs: [Option<TaggedReg>; 3],
    /// Destination tag, if the micro-op writes a register.
    pub dst: Option<TaggedReg>,
    /// Second destination tag: the written-back base register of
    /// post-increment memory operations.
    pub dst2: Option<TaggedReg>,
}

/// Upper bound on the micro-op expansion of one instruction: one repair
/// per source slot (§IV-D1) plus the main micro-op.
pub const MAX_UOPS: usize = 4;

/// A fixed-capacity micro-op bundle — the result of renaming one
/// instruction. Inline storage ([`MAX_UOPS`] slots), `Copy`, and derefs
/// to `[Uop]`, so the rename hot path never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UopVec {
    buf: [Uop; MAX_UOPS],
    len: u8,
}

impl UopVec {
    const FILLER: Uop = Uop {
        seq: 0,
        kind: UopKind::Main,
        srcs: [None; 3],
        dst: None,
        dst2: None,
    };

    /// An empty bundle.
    pub const fn new() -> Self {
        UopVec {
            buf: [Self::FILLER; MAX_UOPS],
            len: 0,
        }
    }

    /// Appends a micro-op.
    ///
    /// # Panics
    ///
    /// Panics if the bundle already holds [`MAX_UOPS`] micro-ops.
    pub fn push(&mut self, uop: Uop) {
        self.buf[self.len as usize] = uop;
        self.len += 1;
    }
}

impl Default for UopVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for UopVec {
    type Target = [Uop];

    fn deref(&self) -> &[Uop] {
        &self.buf[..self.len as usize]
    }
}

impl<'a> IntoIterator for &'a UopVec {
    type Item = &'a Uop;
    type IntoIter = std::slice::Iter<'a, Uop>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The result of a squash: what the pipeline must repair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SquashOutcome {
    /// Number of micro-ops whose rename effects were undone.
    pub undone: u64,
    /// Registers whose version counter was rolled back; the register file
    /// may need a recover command for each (`RegFile::recover` decides and
    /// the pipeline charges the cycles). The version in each tag is the
    /// *restored* version.
    pub recovers: Vec<TaggedReg>,
}

/// Statistics kept by a renaming scheme.
#[derive(Debug, Clone)]
pub struct RenameStats {
    /// Micro-ops successfully renamed (repairs included).
    pub renamed: u64,
    /// Fresh physical register allocations.
    pub allocations: u64,
    /// Destinations that reused a source's physical register.
    pub reuses: u64,
    /// Reuses where the instruction redefined the source logical register
    /// (guaranteed-safe reuses).
    pub safe_reuses: u64,
    /// Speculative reuses (single-use predicted).
    pub speculative_reuses: u64,
    /// Reuse opportunities blocked by missing shadow cells or a saturated
    /// version counter.
    pub blocked_reuses: u64,
    /// Rename stalls due to register-file exhaustion.
    pub stalls: u64,
    /// Injected single-use-misprediction repair micro-ops.
    pub repairs: u64,
    /// Physical registers released.
    pub releases: u64,
    /// Micro-ops squashed (rename effects undone).
    pub squashed: u64,
    /// Reuse-chain length (number of reuses) observed at each register
    /// release; buckets 0..=7.
    pub chain_lengths: Histogram,
}

impl RenameStats {
    pub(crate) fn new() -> Self {
        RenameStats {
            renamed: 0,
            allocations: 0,
            reuses: 0,
            safe_reuses: 0,
            speculative_reuses: 0,
            blocked_reuses: 0,
            stalls: 0,
            repairs: 0,
            releases: 0,
            squashed: 0,
            chain_lengths: Histogram::new("reuse_chain_lengths", 7),
        }
    }

    /// Fraction of destination renames that avoided an allocation.
    pub fn reuse_fraction(&self) -> f64 {
        let denom = self.allocations + self.reuses;
        if denom == 0 {
            0.0
        } else {
            self.reuses as f64 / denom as f64
        }
    }
}

impl Default for RenameStats {
    fn default() -> Self {
        RenameStats::new()
    }
}

/// A register renaming scheme, driven by the pipeline in three in-order
/// streams: [`Renamer::rename`] at the rename stage, [`Renamer::commit`]
/// at retirement, and [`Renamer::squash_after`] on branch mispredictions
/// and exceptions.
///
/// Sequence numbers are global, strictly increasing micro-op identifiers
/// assigned by the pipeline. `rename` may expand one instruction into
/// several micro-ops (repairs); each consumes one sequence number starting
/// at the `seq` passed in, with the main op last.
///
/// # Hardware threads
///
/// A scheme that maintains multiple thread contexts ([`Renamer::threads`]
/// > 1) keeps one map table, retire map and checkpoint stack per
/// [`HartId`] over the shared free lists and PRT. The `*_on` methods take
/// the hart explicitly; the un-suffixed convenience forms operate on hart
/// 0 and exist so single-threaded callers read naturally. Commit order
/// must be sequence order *within* each hart (harts interleave freely).
pub trait Renamer {
    /// Hardware-thread contexts this scheme instance maintains.
    fn threads(&self) -> usize {
        1
    }

    /// Renames one instruction fetched by `hart`. Returns `None` when the
    /// rename stage must stall (no free physical register and no reuse
    /// possible); in that case every table mutation was rolled back —
    /// only the statistics counters of the attempt remain (hardware
    /// counts attempted work).
    fn rename_on(&mut self, hart: HartId, seq: u64, pc: u64, inst: &Inst) -> Option<UopVec>;

    /// [`Renamer::rename_on`] for hart 0.
    fn rename(&mut self, seq: u64, pc: u64, inst: &Inst) -> Option<UopVec> {
        self.rename_on(HartId::ZERO, seq, pc, inst)
    }

    /// Commits `hart`'s micro-op with sequence number `seq`. Must be
    /// called in sequence order for every renamed micro-op of that hart
    /// that is not squashed.
    fn commit_on(&mut self, hart: HartId, seq: u64);

    /// [`Renamer::commit_on`] for hart 0.
    fn commit(&mut self, seq: u64) {
        self.commit_on(HartId::ZERO, seq)
    }

    /// Undoes the rename effects of every micro-op of `hart` with a
    /// sequence number greater than `seq` (youngest first). Other harts'
    /// state is untouched. The returned outcome borrows scheme-owned
    /// storage and is valid until the next squash call — the scheme
    /// reuses it so squashes never allocate.
    fn squash_after_on(&mut self, hart: HartId, seq: u64) -> &SquashOutcome;

    /// [`Renamer::squash_after_on`] for hart 0.
    fn squash_after(&mut self, seq: u64) -> &SquashOutcome {
        self.squash_after_on(HartId::ZERO, seq)
    }

    /// A counter that advances whenever renamer state changes through any
    /// entry point other than a failed [`Renamer::rename`] — commit,
    /// squash, read/writeback notifications, the non-speculative
    /// boundary. Renaming is a deterministic function of renamer state
    /// and the instruction, so while the epoch stands still a stalled
    /// rename would only fail again, identically; the rename stage uses
    /// this to skip such retries and charge [`Renamer::note_stall`]
    /// instead of re-running the full rename.
    fn state_epoch(&self) -> u64;

    /// Records one gated retry cycle of `hart`'s stalled rename without
    /// re-running it. Applies exactly the statistics deltas the skipped
    /// (identical) failed attempt would have applied, so gated and
    /// ungated runs produce byte-identical reports.
    fn note_stall_on(&mut self, hart: HartId);

    /// [`Renamer::note_stall_on`] for hart 0.
    fn note_stall(&mut self) {
        self.note_stall_on(HartId::ZERO)
    }

    /// Statistics accumulated so far.
    fn stats(&self) -> &RenameStats;

    /// Free registers currently available in one class.
    fn free_regs(&self, class: RegClass) -> usize;

    /// In-use (allocated) register counts per bank for one class, indexed
    /// by shadow-cell count — the occupancy signal behind Fig. 9.
    fn in_use_per_bank(&self, class: RegClass) -> Vec<usize>;

    /// Writes the per-bank in-use counts into `out` (cleared first) — the
    /// reusable-buffer form of [`Renamer::in_use_per_bank`] the pipeline's
    /// occupancy sampler calls on its periodic path, so sampling never
    /// allocates once `out` has warmed to the bank count.
    fn in_use_per_bank_into(&self, class: RegClass, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.in_use_per_bank(class));
    }

    /// Total allocated physical registers of one class. The per-bank
    /// counts of [`Renamer::in_use_per_bank`] must sum to exactly this
    /// value; the pipeline audit cross-checks the two readouts.
    fn allocated_total(&self, class: RegClass) -> usize {
        self.banks(class).total() - self.free_regs(class)
    }

    /// The bank layout of one class.
    fn banks(&self, class: RegClass) -> &BankConfig;

    /// The version saturation value of the scheme's version counter
    /// (`2^counter_bits − 1`). The pipeline sizes its scoreboard to
    /// exactly `max_version() + 1` slots per physical register.
    fn max_version(&self) -> u8;

    /// Register-type predictor accuracy (Fig. 12); zeroes for schemes
    /// without a predictor.
    fn predictor_stats(&self) -> crate::PredictorStats {
        crate::PredictorStats::default()
    }

    /// Notification that the micro-op `seq` has issued and read its
    /// source operands. Default: ignored. Early-release schemes use this
    /// to track pending reads per physical register.
    fn on_operands_read(&mut self, seq: u64) {
        let _ = seq;
    }

    /// Notification that every micro-op of `hart` with a sequence number
    /// **below** `boundary` can no longer be squashed by a branch
    /// misprediction (all of that hart's older branches have resolved).
    /// Default: ignored.
    fn advance_nonspeculative_on(&mut self, hart: HartId, boundary: u64) {
        let _ = (hart, boundary);
    }

    /// [`Renamer::advance_nonspeculative_on`] for hart 0.
    fn advance_nonspeculative(&mut self, boundary: u64) {
        self.advance_nonspeculative_on(HartId::ZERO, boundary)
    }

    /// Notification that the micro-op `seq` wrote its destination
    /// register(s) back. Default: ignored. Early-release schemes must not
    /// release a register whose previous owner's producer has not written
    /// yet — a reallocation would otherwise be clobbered by the late
    /// write.
    fn on_writeback(&mut self, seq: u64) {
        let _ = seq;
    }

    /// Checks the scheme's internal bookkeeping invariants — free-list /
    /// map-table / reference-count consistency. Returns `Err` with a
    /// human-readable diagnostic on the first violation found. Default:
    /// vacuously `Ok` for schemes without auditable state.
    ///
    /// Called by the pipeline's invariant auditor every
    /// `SimConfig::audit_interval` cycles; must not mutate state.
    fn audit(&self) -> Result<(), String> {
        Ok(())
    }

    /// The architectural (retire-time) map table of `hart`, if the scheme
    /// maintains one precise enough for an architectural register-state
    /// diff. Default: `None` (the oracle then skips register diffs).
    fn arch_map_on(&self, hart: HartId) -> Option<&MapTable> {
        let _ = hart;
        None
    }

    /// [`Renamer::arch_map_on`] for hart 0.
    fn arch_map(&self) -> Option<&MapTable> {
        self.arch_map_on(HartId::ZERO)
    }

    /// Installs functionally-warmed predictor tables into the scheme,
    /// clearing their accuracy accounting so a measurement window starts
    /// from trained-but-unmeasured predictors. Default: ignored — the
    /// baseline scheme has no predictors to warm.
    fn install_predictors(
        &mut self,
        predictor: &crate::RegTypePredictor,
        single_use: &crate::SingleUsePredictor,
    ) {
        let _ = (predictor, single_use);
    }

    /// Installs the program's static sharing-hint table. Default:
    /// ignored — schemes without a hint path (and the baseline) simply
    /// never consult hints.
    fn install_hints(&mut self, hints: &ShareHintTable) {
        let _ = hints;
    }

    /// Accuracy accounting for the static-hint path, split by decision
    /// source. Default: all zero for schemes without a hint path.
    fn hint_stats(&self) -> HintStats {
        HintStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let b = RenamerConfig::baseline(64);
        assert_eq!(b.int_banks.total(), 64);
        assert_eq!(b.int_banks.num_banks(), 1);
        let p = RenamerConfig::paper(64);
        assert_eq!(p.int_banks.num_banks(), 4);
        assert_eq!(p.max_version(), 3);
    }

    #[test]
    fn max_version_by_counter_bits() {
        let mut c = RenamerConfig::small_test();
        c.counter_bits = 1;
        assert_eq!(c.max_version(), 1);
        c.counter_bits = 3;
        assert_eq!(c.max_version(), 7);
    }

    #[test]
    fn reuse_fraction_handles_empty() {
        let s = RenameStats::new();
        assert_eq!(s.reuse_fraction(), 0.0);
    }

    #[test]
    fn banks_accessor_selects_class() {
        let c = RenamerConfig::baseline(48);
        assert_eq!(c.banks(RegClass::Int).total(), 48);
        assert_eq!(c.banks(RegClass::Fp).total(), 48);
    }
}
