//! An early-register-release comparator scheme (related work, §VII).
//!
//! The paper positions physical-register sharing against the classic
//! early-release proposals of Moudgill et al. and Monreal et al.: keep
//! conventional one-register-per-destination renaming, but release the
//! *previous* register of a redefined logical register as soon as
//!
//! 1. the redefining instruction is **non-speculative** (every older
//!    branch has resolved, so it can no longer be squashed), and
//! 2. every reader of the previous value has **issued** (read the value),
//!
//! instead of waiting for the redefining instruction to *commit*. Pending
//! reads are tracked with per-register counters (Moudgill-style); the
//! non-speculative boundary comes from the pipeline
//! ([`Renamer::advance_nonspeculative`]).
//!
//! As the paper notes, these schemes **do not support precise
//! exceptions**: a released register may be reallocated and overwritten
//! while an older instruction can still fault, making the old value
//! unrecoverable. This implementation therefore must not be combined with
//! exception injection; branch-misprediction recovery *is* fully
//! supported (condition 1 guarantees a releasing redefiner cannot be
//! squashed by a branch).

use crate::renamer::{RenameStats, Renamer, RenamerConfig, SquashOutcome, Uop, UopKind, UopVec};
use crate::{BankConfig, FreeList, MapTable, PhysReg, TaggedReg};
use regshare_isa::{ArchReg, HartId, Inst, RegClass};
use regshare_stats::FastHashMap;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct DstChange {
    logical: ArchReg,
    old_map: TaggedReg,
    new_map: TaggedReg,
}

#[derive(Debug, Clone)]
struct Record {
    seq: u64,
    dst: Option<DstChange>,
    dst2: Option<DstChange>,
}

#[derive(Debug, Clone, Copy)]
struct PendingRelease {
    redefiner_seq: u64,
    class: RegClass,
    preg: PhysReg,
}

/// Conventional renaming with Moudgill/Monreal-style early release:
/// the baseline's release-on-commit replaced by
/// release-on-(non-speculative ∧ reads-done).
///
/// # Examples
///
/// ```
/// use regshare_core::{EarlyReleaseRenamer, Renamer, RenamerConfig};
/// use regshare_isa::{Inst, Opcode, reg};
///
/// let mut r = EarlyReleaseRenamer::new(RenamerConfig::baseline(48));
/// let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
/// let free_before = r.free_regs(regshare_isa::RegClass::Int);
/// r.rename(1, 0, &def).unwrap();
/// r.on_writeback(1); // the producer writes its value
/// // Redefine r1: the old register becomes releasable once this rename
/// // is non-speculative (no reads are pending on it).
/// r.rename(2, 4, &def).unwrap();
/// // Both replaced mappings release once the renames are non-speculative
/// // — no commit required.
/// r.advance_nonspeculative(10);
/// assert_eq!(r.free_regs(regshare_isa::RegClass::Int), free_before - 2 + 2);
/// ```
#[derive(Debug, Clone)]
pub struct EarlyReleaseRenamer {
    config: RenamerConfig,
    map: MapTable,
    retire_map: MapTable,
    free: [FreeList; 2],
    records: VecDeque<Record>,
    /// Pending reads per physical register.
    pending_reads: [Vec<u32>; 2],
    /// Sources each in-flight micro-op has not read yet (inline — a
    /// micro-op has at most three sources — so the per-rename hot path
    /// never touches the allocator).
    unread: FastHashMap<u64, [Option<(RegClass, PhysReg)>; 3]>,
    /// Old registers whose redefiner is still speculative, in rename
    /// (sequence) order — the non-speculative boundary releases them
    /// from the front as it advances.
    spec_releases: VecDeque<PendingRelease>,
    /// Old registers past the boundary but still blocked on pending
    /// reads or an in-flight producer write. Usually near-empty: most
    /// registers release the moment they become non-speculative.
    blocked_releases: Vec<PendingRelease>,
    /// Whether each register's current producer has written back; a
    /// register must not be released (and reallocated) while its value is
    /// still in flight, or the late write would clobber the new owner.
    producer_written: [Vec<bool>; 2],
    /// Registers each in-flight micro-op will write at its writeback.
    pending_writes: FastHashMap<u64, [Option<(RegClass, PhysReg)>; 2]>,
    ns_boundary: u64,
    stats: RenameStats,
    /// Reused squash-outcome storage (`recovers` stays empty: without
    /// version sharing there are no shadow-cell recover commands).
    squash: SquashOutcome,
    /// Bumped by every mutating entry point except a failed rename; see
    /// [`Renamer::state_epoch`].
    epoch: u64,
}

impl EarlyReleaseRenamer {
    /// Creates a renamer with every logical register mapped (conventional
    /// single-bank layouts; bank splits are ignored beyond totals).
    ///
    /// # Panics
    ///
    /// Panics if a register file is not larger than the logical register
    /// count.
    pub fn new(config: RenamerConfig) -> Self {
        let mut map = MapTable::new();
        let mut free = [
            FreeList::new(&config.int_banks),
            FreeList::new(&config.fp_banks),
        ];
        for class in RegClass::ALL {
            assert!(
                config.banks(class).total() > class.num_regs(),
                "{class} register file must exceed the {} logical registers",
                class.num_regs()
            );
            for i in 0..class.num_regs() {
                let preg = free[class.index()]
                    .alloc(0)
                    .expect("initial mapping fits by the assertion above");
                map.set(ArchReg::new(class, i as u8), TaggedReg::new(class, preg, 0));
            }
        }
        let retire_map = map.clone();
        let pending_reads = [
            vec![0u32; config.int_banks.total()],
            vec![0u32; config.fp_banks.total()],
        ];
        // Initial architectural state counts as written.
        let producer_written = [
            vec![true; config.int_banks.total()],
            vec![true; config.fp_banks.total()],
        ];
        EarlyReleaseRenamer {
            config,
            map,
            retire_map,
            free,
            records: VecDeque::new(),
            pending_reads,
            unread: FastHashMap::default(),
            spec_releases: VecDeque::new(),
            blocked_releases: Vec::new(),
            producer_written,
            pending_writes: FastHashMap::default(),
            ns_boundary: 0,
            stats: RenameStats::new(),
            squash: SquashOutcome::default(),
            epoch: 0,
        }
    }

    /// The current (speculative) rename map.
    pub fn map(&self) -> &MapTable {
        &self.map
    }

    /// Registers currently awaiting their early-release conditions.
    pub fn pending_release_count(&self) -> usize {
        self.spec_releases.len() + self.blocked_releases.len()
    }

    fn releasable(&self, p: PendingRelease) -> bool {
        self.pending_reads[p.class.index()][p.preg.0 as usize] == 0
            && self.producer_written[p.class.index()][p.preg.0 as usize]
    }

    fn free_released(&mut self, p: PendingRelease) {
        // A freed register is what a stalled rename waits for.
        self.epoch += 1;
        self.free[p.class.index()].free(p.preg, self.config.banks(p.class));
        self.stats.releases += 1;
        self.stats.chain_lengths.record(0);
    }

    /// Releases every blocked entry whose conditions now hold. Called
    /// after a pending-read counter drops or a producer writes back —
    /// the only events that can unblock an entry, which keeps the
    /// release check off the every-cycle path the old full scan sat on.
    fn release_unblocked(&mut self) {
        let mut i = 0;
        while i < self.blocked_releases.len() {
            let p = self.blocked_releases[i];
            if self.releasable(p) {
                self.free_released(p);
                self.blocked_releases.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn force_release(&mut self, redefiner_seq: u64) {
        // At commit the redefiner is trivially non-speculative and all
        // older readers have committed (in-order commit), so any entry it
        // queued can be released unconditionally. In-order commit also
        // means no older redefiner can still be queued, so its entries
        // sit at the front of the speculative queue (when the boundary
        // has not overtaken it yet) or in the blocked set.
        while let Some(&p) = self.spec_releases.front() {
            if p.redefiner_seq != redefiner_seq {
                debug_assert!(
                    p.redefiner_seq > redefiner_seq,
                    "an older redefiner outlived a younger commit"
                );
                break;
            }
            self.check_commit_released(p);
            self.free_released(p);
            self.spec_releases.pop_front();
        }
        let mut i = 0;
        while i < self.blocked_releases.len() {
            let p = self.blocked_releases[i];
            if p.redefiner_seq == redefiner_seq {
                self.check_commit_released(p);
                self.free_released(p);
                self.blocked_releases.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn check_commit_released(&self, p: PendingRelease) {
        debug_assert_eq!(
            self.pending_reads[p.class.index()][p.preg.0 as usize],
            0,
            "older readers must have issued before the redefiner commits"
        );
        debug_assert!(
            self.producer_written[p.class.index()][p.preg.0 as usize],
            "the old producer must have written before the redefiner commits"
        );
    }
}

impl Renamer for EarlyReleaseRenamer {
    fn rename_on(&mut self, hart: HartId, seq: u64, _pc: u64, inst: &Inst) -> Option<UopVec> {
        debug_assert_eq!(
            hart,
            HartId::ZERO,
            "the early-release oracle renamer is single-threaded"
        );
        let mut srcs = [None; 3];
        let mut read_list = [None; 3];
        let mut n_reads = 0;
        for (slot, src) in srcs.iter_mut().zip(inst.raw_sources()) {
            if let Some(r) = src.filter(|r| !r.is_zero()) {
                let tag = self.map.get(r);
                *slot = Some(tag);
                if !read_list.contains(&Some((tag.class, tag.preg))) {
                    read_list[n_reads] = Some((tag.class, tag.preg));
                    n_reads += 1;
                }
            }
        }

        let allocate = |this: &mut Self, logical: ArchReg| -> Option<DstChange> {
            let class = logical.class();
            let preg = this.free[class.index()].alloc(0)?;
            let new_map = TaggedReg::new(class, preg, 0);
            let old_map = this.map.set(logical, new_map);
            this.stats.allocations += 1;
            Some(DstChange {
                logical,
                old_map,
                new_map,
            })
        };
        let rollback = |this: &mut Self, d: DstChange| {
            this.map.set(d.logical, d.old_map);
            let class = d.new_map.class;
            this.free[class.index()].free(d.new_map.preg, this.config.banks(class));
            this.stats.allocations -= 1;
        };

        let dst_change = match inst.dst() {
            Some(logical) => match allocate(self, logical) {
                Some(c) => Some(c),
                None => {
                    self.stats.stalls += 1;
                    return None;
                }
            },
            None => None,
        };
        let dst2_change = match inst.dst2() {
            Some(logical) => match allocate(self, logical) {
                Some(c) => Some(c),
                None => {
                    if let Some(d) = dst_change {
                        rollback(self, d);
                    }
                    self.stats.stalls += 1;
                    return None;
                }
            },
            None => None,
        };

        // Commit to this rename: count the pending reads, mark the new
        // registers as not-yet-written, and queue the early releases of
        // the replaced mappings.
        for (class, preg) in read_list.iter().flatten() {
            self.pending_reads[class.index()][preg.0 as usize] += 1;
        }
        if n_reads > 0 {
            self.unread.insert(seq, read_list);
        }
        let mut writes = [None; 2];
        for (w, d) in writes
            .iter_mut()
            .zip([dst_change, dst2_change].into_iter().flatten())
        {
            self.producer_written[d.new_map.class.index()][d.new_map.preg.0 as usize] = false;
            *w = Some((d.new_map.class, d.new_map.preg));
            self.spec_releases.push_back(PendingRelease {
                redefiner_seq: seq,
                class: d.old_map.class,
                preg: d.old_map.preg,
            });
        }
        if writes[0].is_some() {
            self.pending_writes.insert(seq, writes);
        }

        let dst_tag = dst_change.map(|d| d.new_map);
        let dst2_tag = dst2_change.map(|d| d.new_map);
        self.records.push_back(Record {
            seq,
            dst: dst_change,
            dst2: dst2_change,
        });
        self.stats.renamed += 1;
        let mut uops = UopVec::new();
        uops.push(Uop {
            seq,
            kind: UopKind::Main,
            srcs,
            dst: dst_tag,
            dst2: dst2_tag,
        });
        Some(uops)
    }

    fn commit_on(&mut self, _hart: HartId, seq: u64) {
        let record = self
            .records
            .pop_front()
            .expect("commit without an in-flight rename record");
        assert_eq!(record.seq, seq, "commits must arrive in rename order");
        // A committed reader always issued first, but drain any leftover
        // bookkeeping properly so a counter can never leak and pin a
        // register forever.
        if let Some(reads) = self.unread.remove(&seq) {
            for (class, preg) in reads.into_iter().flatten() {
                let c = &mut self.pending_reads[class.index()][preg.0 as usize];
                *c = c.saturating_sub(1);
            }
        }
        for d in [record.dst, record.dst2].into_iter().flatten() {
            self.retire_map.set(d.logical, d.new_map);
        }
        self.force_release(seq);
    }

    fn squash_after_on(&mut self, _hart: HartId, seq: u64) -> &SquashOutcome {
        self.epoch += 1;
        self.squash.undone = 0;
        while let Some(record) = self.records.back() {
            if record.seq <= seq {
                break;
            }
            let record = self.records.pop_back().expect("just checked non-empty");
            // Give back the reads this micro-op never performed.
            if let Some(reads) = self.unread.remove(&record.seq) {
                for (class, preg) in reads.into_iter().flatten() {
                    let c = &mut self.pending_reads[class.index()][preg.0 as usize];
                    debug_assert!(*c > 0, "pending-read underflow on squash");
                    *c -= 1;
                }
            }
            // Its own registers will never be written now; they return to
            // the free list below and the flag resets at reallocation.
            self.pending_writes.remove(&record.seq);
            for d in [record.dst2, record.dst].into_iter().flatten() {
                self.map.set(d.logical, d.old_map);
                let class = d.new_map.class;
                self.free[class.index()].free(d.new_map.preg, self.config.banks(class));
            }
            self.squash.undone += 1;
            self.stats.squashed += 1;
        }
        // Cancel the squashed micro-ops' queued releases (condition 1
        // guarantees none was released yet: a releasing redefiner is
        // non-speculative and cannot be squashed, so every casualty is
        // still in the speculative suffix).
        while self
            .spec_releases
            .back()
            .is_some_and(|p| p.redefiner_seq > seq)
        {
            self.spec_releases.pop_back();
        }
        debug_assert!(
            self.blocked_releases.iter().all(|p| p.redefiner_seq <= seq),
            "a non-speculative release entry was squashed"
        );
        // The restored read counters may have unblocked an older entry.
        self.release_unblocked();
        &self.squash
    }

    fn on_writeback(&mut self, seq: u64) {
        if let Some(writes) = self.pending_writes.remove(&seq) {
            for (class, preg) in writes.into_iter().flatten() {
                self.producer_written[class.index()][preg.0 as usize] = true;
            }
            self.release_unblocked();
        }
    }

    fn on_operands_read(&mut self, seq: u64) {
        if let Some(reads) = self.unread.remove(&seq) {
            for (class, preg) in reads.into_iter().flatten() {
                let c = &mut self.pending_reads[class.index()][preg.0 as usize];
                debug_assert!(*c > 0, "pending-read underflow on issue");
                *c -= 1;
            }
            self.release_unblocked();
        }
    }

    fn advance_nonspeculative_on(&mut self, _hart: HartId, boundary: u64) {
        if boundary <= self.ns_boundary {
            return;
        }
        self.ns_boundary = boundary;
        while self
            .spec_releases
            .front()
            .is_some_and(|p| p.redefiner_seq < boundary)
        {
            let p = self.spec_releases.pop_front().expect("front checked above");
            if self.releasable(p) {
                self.free_released(p);
            } else {
                self.blocked_releases.push(p);
            }
        }
    }

    fn state_epoch(&self) -> u64 {
        self.epoch
    }

    fn note_stall_on(&mut self, _hart: HartId) {
        // A failed early-release rename rolls back fully; only the stall
        // counter survives the attempt.
        self.stats.stalls += 1;
    }

    fn stats(&self) -> &RenameStats {
        &self.stats
    }

    fn free_regs(&self, class: RegClass) -> usize {
        self.free[class.index()].free_total()
    }

    fn in_use_per_bank(&self, class: RegClass) -> Vec<usize> {
        let mut out = Vec::new();
        self.in_use_per_bank_into(class, &mut out);
        out
    }

    fn in_use_per_bank_into(&self, class: RegClass, out: &mut Vec<usize>) {
        let banks = self.config.banks(class);
        let free = &self.free[class.index()];
        out.clear();
        out.extend((0..banks.num_banks()).map(|k| banks.sizes()[k] - free.free_in_bank(k)));
    }

    fn banks(&self, class: RegClass) -> &BankConfig {
        self.config.banks(class)
    }

    fn max_version(&self) -> u8 {
        self.config.max_version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Opcode};

    fn renamer() -> EarlyReleaseRenamer {
        EarlyReleaseRenamer::new(RenamerConfig::baseline(40))
    }

    #[test]
    fn releases_before_commit_once_nonspeculative_and_read() {
        let mut r = renamer();
        let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        r.rename(1, 0, &def).unwrap();
        r.on_writeback(1);
        r.rename(2, 4, &def).unwrap(); // redefines x1: old preg queued
        r.on_writeback(2);
        assert_eq!(r.free_regs(RegClass::Int), 6);
        assert_eq!(r.pending_release_count(), 2);
        // Nothing released while both renames are still speculative.
        r.advance_nonspeculative(1);
        assert_eq!(r.free_regs(RegClass::Int), 6);
        // Seq 1 non-speculative: its replaced mapping (x1's initial
        // register, never read) is released.
        r.advance_nonspeculative(2);
        assert_eq!(r.free_regs(RegClass::Int), 7);
        // Past both renames: both old mappings (x1-initial, seq1's reg)
        // are free long before any commit.
        r.advance_nonspeculative(5);
        assert_eq!(r.free_regs(RegClass::Int), 8);
        assert_eq!(r.stats().releases, 2);
        // Commit must not double-release.
        r.commit(1);
        r.commit(2);
        assert_eq!(r.free_regs(RegClass::Int), 8);
    }

    #[test]
    fn pending_reads_block_early_release() {
        let mut r = renamer();
        let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        let use_x1 = Inst::store(Opcode::St, reg::x(1), reg::x(4), 0);
        r.rename(1, 0, &def).unwrap();
        r.on_writeback(1);
        r.rename(2, 4, &use_x1).unwrap(); // reads seq-1's register
        r.rename(3, 8, &def).unwrap(); // redefines x1
        r.on_writeback(3);
        r.advance_nonspeculative(10);
        // seq-1's register has a pending read from seq 2: not released.
        // (The initial mapping of x1 was released by seq 1's queue entry.)
        assert_eq!(r.free_regs(RegClass::Int), 7);
        r.on_operands_read(2);
        assert_eq!(r.free_regs(RegClass::Int), 8);
    }

    #[test]
    fn squash_cancels_queued_releases_and_restores_reads() {
        let mut r = renamer();
        let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        let use_x1 = Inst::store(Opcode::St, reg::x(1), reg::x(4), 0);
        r.rename(1, 0, &def).unwrap();
        let free_after_one = r.free_regs(RegClass::Int);
        r.rename(2, 4, &use_x1).unwrap();
        r.rename(3, 8, &def).unwrap();
        r.squash_after(1); // kill the reader and the redefiner
        assert_eq!(r.free_regs(RegClass::Int), free_after_one);
        assert_eq!(r.pending_release_count(), 1); // only seq 1's entry
                                                  // The reader's pending count was restored; advancing the boundary
                                                  // releases seq 1's old mapping only.
        r.advance_nonspeculative(10);
        assert_eq!(r.free_regs(RegClass::Int), free_after_one + 1);
    }

    #[test]
    fn early_release_frees_sooner_than_baseline() {
        use crate::BaselineRenamer;
        // A chain of redefinitions with no commits and resolved branches:
        // early release keeps the free list full, the baseline drains it.
        let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
        let mut early = renamer();
        let mut base = BaselineRenamer::new(RenamerConfig::baseline(40));
        for seq in 1..=6 {
            early.rename(seq, seq * 4, &def).unwrap();
            early.on_writeback(seq);
            early.advance_nonspeculative(seq + 1);
            base.rename(seq, seq * 4, &def).unwrap();
        }
        assert!(early.free_regs(RegClass::Int) > base.free_regs(RegClass::Int));
    }
}
