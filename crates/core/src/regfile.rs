//! The check-pointed physical register file with shadow bit-cells (§IV-C).

use crate::{BankConfig, PhysReg, MAX_SHADOW_CELLS};

/// A value-carrying physical register file whose registers may embed
/// shadow cells.
///
/// Unlike the cache/DRAM models, the register file carries **real
/// values** (64-bit patterns): register sharing is a correctness-critical
/// mechanism, so the simulator executes through this structure and the
/// test suite checks that shared registers never corrupt program results.
///
/// Semantics follow the paper:
///
/// * Writing version `v > 0` of a register first checkpoints the current
///   main-cell contents (version `v−1`) into shadow cell `v−1` — "the
///   value of a register is stored in parallel to the appropriate shadow
///   cell, so no extra latency is added to the write" (§IV-C2).
/// * [`RegFile::recover`] copies shadow cell `v` back into the main cell —
///   the *recover command* issued during branch-misprediction / exception
///   recovery. The caller charges cycles for these.
/// * [`RegFile::read_version`] returns the value of a *specific* version,
///   whether it currently lives in the main cell or a shadow cell — used
///   by the single-use misprediction repair micro-ops (§IV-D1).
///
/// # Examples
///
/// ```
/// use regshare_core::{BankConfig, PhysReg, RegFile};
///
/// let mut rf = RegFile::new(&BankConfig::new(vec![0, 2])); // 2 regs, 1 shadow each
/// let p = PhysReg(0);
/// rf.write(p, 0, 111);
/// rf.write(p, 1, 222);              // checkpoints 111 into shadow 0
/// assert_eq!(rf.read_current(p), 222);
/// assert_eq!(rf.read_version(p, 0), 111);
/// rf.recover(p, 0);                 // misprediction: roll back to v0
/// assert_eq!(rf.read_current(p), 111);
/// ```
#[derive(Debug, Clone)]
pub struct RegFile {
    banks: BankConfig,
    main: Vec<u64>,
    main_version: Vec<u8>,
    shadow: Vec<[u64; MAX_SHADOW_CELLS as usize]>,
    recovers: u64,
}

impl RegFile {
    /// Creates a zeroed register file with the given bank layout.
    pub fn new(banks: &BankConfig) -> Self {
        let n = banks.total();
        RegFile {
            banks: banks.clone(),
            main: vec![0; n],
            main_version: vec![0; n],
            shadow: vec![[0; MAX_SHADOW_CELLS as usize]; n],
            recovers: 0,
        }
    }

    /// The bank layout.
    pub fn banks(&self) -> &BankConfig {
        &self.banks
    }

    /// Number of shadow cells embedded in `preg`.
    pub fn shadow_cells_of(&self, preg: PhysReg) -> u8 {
        self.banks.shadow_cells_of(preg)
    }

    /// Writes `bits` as version `version` of `preg`, checkpointing the
    /// previous version into its shadow cell when `version > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `version` exceeds the register's shadow capacity — the
    /// renamer must never create such a version.
    pub fn write(&mut self, preg: PhysReg, version: u8, bits: u64) {
        let idx = preg.0 as usize;
        if version > 0 {
            let cells = self.banks.shadow_cells_of(preg);
            assert!(
                version <= cells,
                "version {version} written to {preg} which has only {cells} shadow cells"
            );
            self.shadow[idx][(version - 1) as usize] = self.main[idx];
        }
        self.main[idx] = bits;
        self.main_version[idx] = version;
    }

    /// The main-cell value (most recent write).
    pub fn read_current(&self, preg: PhysReg) -> u64 {
        self.main[preg.0 as usize]
    }

    /// The version currently held by the main cell.
    pub fn current_version(&self, preg: PhysReg) -> u8 {
        self.main_version[preg.0 as usize]
    }

    /// Reads the value of a specific version: the main cell if it still
    /// holds that version (or an older one not yet overwritten), otherwise
    /// the corresponding shadow cell.
    pub fn read_version(&self, preg: PhysReg, version: u8) -> u64 {
        let idx = preg.0 as usize;
        if self.main_version[idx] <= version {
            self.main[idx]
        } else {
            self.shadow[idx][version as usize]
        }
    }

    /// True when restoring `version` as the current contents would require
    /// a recover command (the main cell has been overwritten by a younger
    /// version).
    pub fn needs_recover(&self, preg: PhysReg, version: u8) -> bool {
        self.main_version[preg.0 as usize] > version
    }

    /// Issues a recover command: copies shadow cell `version` back to the
    /// main cell if a younger version overwrote it. Returns whether a
    /// recover was actually performed (for cycle accounting).
    pub fn recover(&mut self, preg: PhysReg, version: u8) -> bool {
        let idx = preg.0 as usize;
        if self.main_version[idx] > version {
            self.main[idx] = self.shadow[idx][version as usize];
            self.main_version[idx] = version;
            self.recovers += 1;
            true
        } else {
            false
        }
    }

    /// Resets version bookkeeping for a fresh allocation of `preg`.
    pub fn reset_on_alloc(&mut self, preg: PhysReg) {
        self.main_version[preg.0 as usize] = 0;
    }

    /// Total recover commands issued so far.
    pub fn recovers(&self) -> u64 {
        self.recovers
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.main.len()
    }

    /// True when the file has no registers (never for valid configs).
    pub fn is_empty(&self) -> bool {
        self.main.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf3() -> RegFile {
        // One register with 3 shadow cells.
        RegFile::new(&BankConfig::new(vec![0, 0, 0, 1]))
    }

    #[test]
    fn chain_of_writes_checkpoints_each_version() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 10);
        rf.write(p, 1, 11);
        rf.write(p, 2, 12);
        rf.write(p, 3, 13);
        assert_eq!(rf.read_current(p), 13);
        assert_eq!(rf.read_version(p, 0), 10);
        assert_eq!(rf.read_version(p, 1), 11);
        assert_eq!(rf.read_version(p, 2), 12);
        assert_eq!(rf.read_version(p, 3), 13);
    }

    #[test]
    fn read_version_uses_main_when_not_overwritten() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 42);
        // Version 1 has not been written: version 0 still lives in main.
        assert_eq!(rf.read_version(p, 0), 42);
        assert!(!rf.needs_recover(p, 0));
    }

    #[test]
    fn recover_rolls_back_and_counts() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 1);
        rf.write(p, 1, 2);
        rf.write(p, 2, 3);
        assert!(rf.needs_recover(p, 1));
        assert!(rf.recover(p, 1));
        assert_eq!(rf.read_current(p), 2);
        assert_eq!(rf.current_version(p), 1);
        // Idempotent: already at version 1.
        assert!(!rf.recover(p, 1));
        assert_eq!(rf.recovers(), 1);
    }

    #[test]
    fn recover_to_older_version_after_partial_rollback() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 1);
        rf.write(p, 1, 2);
        rf.write(p, 2, 3);
        rf.recover(p, 0);
        assert_eq!(rf.read_current(p), 1);
    }

    #[test]
    fn rewrite_after_recover_checkpoints_again() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 1);
        rf.write(p, 1, 2);
        rf.recover(p, 0);
        rf.write(p, 1, 99); // new speculation down a different path
        assert_eq!(rf.read_version(p, 0), 1);
        assert_eq!(rf.read_current(p), 99);
    }

    #[test]
    #[should_panic(expected = "shadow cells")]
    fn writing_beyond_shadow_capacity_panics() {
        let mut rf = RegFile::new(&BankConfig::new(vec![1])); // conventional reg
        rf.write(PhysReg(0), 1, 5);
    }

    #[test]
    fn fresh_allocation_resets_version() {
        let mut rf = rf3();
        let p = PhysReg(0);
        rf.write(p, 0, 1);
        rf.write(p, 1, 2);
        rf.reset_on_alloc(p);
        assert_eq!(rf.current_version(p), 0);
        rf.write(p, 0, 7);
        assert_eq!(rf.read_current(p), 7);
    }
}
