//! Register-file bank layout: how many registers carry how many shadow
//! cells (§IV-C of the paper).

use crate::preg::{PhysReg, MAX_SHADOW_CELLS};
use serde::{Deserialize, Serialize};

/// Sizes of the register-file banks, indexed by embedded shadow-cell count.
///
/// `sizes[k]` registers have `k` shadow cells and can therefore be reused
/// up to `k` times (each reuse must checkpoint the previous version into a
/// free shadow cell). The paper's proposed configuration uses four banks
/// (0, 1, 2 and 3 shadow cells, Table III); the baseline is a single bank
/// of conventional registers.
///
/// Physical register indices are laid out bank by bank: registers
/// `0..sizes[0]` are conventional, the next `sizes[1]` have one shadow
/// cell, and so on.
///
/// # Examples
///
/// ```
/// use regshare_core::BankConfig;
///
/// let banks = BankConfig::paper_row(64); // Table III: 36/6/6/6
/// assert_eq!(banks.total(), 54);
/// assert_eq!(banks.shadow_cells_of(regshare_core::PhysReg(0)), 0);
/// assert_eq!(banks.shadow_cells_of(regshare_core::PhysReg(40)), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankConfig {
    sizes: Vec<usize>,
}

impl BankConfig {
    /// Creates a layout from per-bank sizes (`sizes[k]` = registers with
    /// `k` shadow cells). Trailing empty banks are allowed.
    ///
    /// # Panics
    ///
    /// Panics if more than `MAX_SHADOW_CELLS + 1` banks are given or the
    /// total register count is zero.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(
            sizes.len() <= (MAX_SHADOW_CELLS as usize + 1),
            "at most {} banks supported",
            MAX_SHADOW_CELLS + 1
        );
        let total: usize = sizes.iter().sum();
        assert!(total > 0, "register file cannot be empty");
        BankConfig { sizes }
    }

    /// A conventional single-bank register file of `n` registers (the
    /// baseline configuration).
    pub fn conventional(n: usize) -> Self {
        BankConfig::new(vec![n])
    }

    /// The equal-area 4-bank configurations of Table III, keyed by the
    /// baseline register file size they correspond to.
    ///
    /// # Panics
    ///
    /// Panics for a size not listed in Table III
    /// (48/56/64/72/80/96/112).
    pub fn paper_row(baseline_regs: usize) -> Self {
        let sizes = match baseline_regs {
            48 => [28, 4, 4, 4],
            56 => [28, 6, 6, 6],
            64 => [36, 6, 6, 6],
            72 => [36, 8, 8, 8],
            80 => [42, 8, 8, 8],
            96 => [58, 8, 8, 8],
            112 => [75, 8, 8, 8],
            other => panic!("no Table III row for a baseline of {other} registers"),
        };
        BankConfig::new(sizes.to_vec())
    }

    /// The baseline register-file sizes evaluated in the paper (Fig. 10).
    pub const PAPER_SIZES: [usize; 7] = [48, 56, 64, 72, 80, 96, 112];

    /// Per-bank sizes, indexed by shadow-cell count.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of physical registers.
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Number of banks (including empty ones).
    pub fn num_banks(&self) -> usize {
        self.sizes.len()
    }

    /// The shadow-cell count (= bank index) of a physical register.
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn shadow_cells_of(&self, preg: PhysReg) -> u8 {
        let mut idx = preg.0 as usize;
        for (bank, size) in self.sizes.iter().enumerate() {
            if idx < *size {
                return bank as u8;
            }
            idx -= size;
        }
        panic!(
            "physical register {preg} out of range for {} registers",
            self.total()
        );
    }

    /// The physical register index range `[start, end)` of bank `k`.
    pub fn bank_range(&self, k: usize) -> std::ops::Range<u16> {
        let start: usize = self.sizes[..k].iter().sum();
        let end = start + self.sizes[k];
        (start as u16)..(end as u16)
    }

    /// Total number of shadow cells across the file (used by the area
    /// model).
    pub fn total_shadow_cells(&self) -> usize {
        self.sizes.iter().enumerate().map(|(k, n)| k * n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_layout() {
        let b = BankConfig::conventional(128);
        assert_eq!(b.total(), 128);
        assert_eq!(b.num_banks(), 1);
        assert_eq!(b.shadow_cells_of(PhysReg(127)), 0);
        assert_eq!(b.total_shadow_cells(), 0);
    }

    #[test]
    fn bank_membership_by_index() {
        let b = BankConfig::new(vec![2, 3, 1]);
        assert_eq!(b.shadow_cells_of(PhysReg(0)), 0);
        assert_eq!(b.shadow_cells_of(PhysReg(1)), 0);
        assert_eq!(b.shadow_cells_of(PhysReg(2)), 1);
        assert_eq!(b.shadow_cells_of(PhysReg(4)), 1);
        assert_eq!(b.shadow_cells_of(PhysReg(5)), 2);
        assert_eq!(b.total_shadow_cells(), 3 + 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_preg_panics() {
        BankConfig::new(vec![2]).shadow_cells_of(PhysReg(2));
    }

    #[test]
    fn bank_ranges_partition_the_file() {
        let b = BankConfig::new(vec![2, 3, 1]);
        assert_eq!(b.bank_range(0), 0..2);
        assert_eq!(b.bank_range(1), 2..5);
        assert_eq!(b.bank_range(2), 5..6);
    }

    #[test]
    fn all_table_iii_rows_construct() {
        for n in BankConfig::PAPER_SIZES {
            let b = BankConfig::paper_row(n);
            assert_eq!(b.num_banks(), 4);
            assert!(
                b.total() < n,
                "proposed config trades registers for shadow cells"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no Table III row")]
    fn unknown_table_row_panics() {
        BankConfig::paper_row(100);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_file_panics() {
        BankConfig::new(vec![0, 0]);
    }
}
