//! The Physical Register Table (PRT) of §IV-A.

use crate::preg::PhysReg;

/// One PRT entry: a read bit, the current version counter, and a mapping
/// reference count.
///
/// * **read bit** — set when an in-flight (or committed) instruction has
///   read the current version of the register; cleared when the register
///   is (re)allocated or reused. A clear read bit identifies the *first
///   consumer* of a value.
/// * **counter** — the n-bit version counter: the most recent version of
///   the register. Saturates at the configured maximum; a saturated
///   counter blocks further reuse.
/// * **mapcount** — how many rename-map entries currently reference this
///   physical register. The register is released when the count returns
///   to zero (the version-aware generalization of release-on-commit: with
///   no sharing it behaves exactly like the conventional scheme).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrtEntry {
    /// Read bit for the current version.
    pub read: bool,
    /// Current (most recent) version of the register.
    pub counter: u8,
    /// Number of rename-map entries referencing the register.
    pub mapcount: u16,
}

/// The Physical Register Table: one entry per physical register of one
/// register class.
///
/// # Examples
///
/// ```
/// use regshare_core::{PhysReg, Prt};
///
/// let mut prt = Prt::new(8, 3); // 8 registers, 2-bit counters (max 3)
/// let p = PhysReg(2);
/// assert!(!prt.entry(p).read);
/// prt.mark_read(p);
/// assert!(prt.entry(p).read);
/// assert!(prt.can_bump(p));
/// prt.bump(p); // a reuse: version 0 -> 1, read bit cleared
/// assert_eq!(prt.entry(p).counter, 1);
/// assert!(!prt.entry(p).read);
/// ```
#[derive(Debug, Clone)]
pub struct Prt {
    entries: Vec<PrtEntry>,
    max_version: u8,
}

impl Prt {
    /// Creates a PRT for `num_regs` registers with versions saturating at
    /// `max_version` (`2^n − 1` for an n-bit counter).
    ///
    /// # Panics
    ///
    /// Panics if `max_version` exceeds
    /// [`MAX_SHADOW_CELLS`](crate::MAX_SHADOW_CELLS).
    pub fn new(num_regs: usize, max_version: u8) -> Self {
        assert!(
            max_version <= crate::MAX_SHADOW_CELLS,
            "version counter beyond supported shadow depth"
        );
        Prt {
            entries: vec![PrtEntry::default(); num_regs],
            max_version,
        }
    }

    /// The saturation value of the version counter.
    pub fn max_version(&self) -> u8 {
        self.max_version
    }

    /// Reads an entry.
    ///
    /// # Panics
    ///
    /// Panics if `preg` is out of range.
    pub fn entry(&self, preg: PhysReg) -> PrtEntry {
        self.entries[preg.0 as usize]
    }

    /// Sets the read bit; returns its previous value (needed for squash
    /// undo).
    pub fn mark_read(&mut self, preg: PhysReg) -> bool {
        let e = &mut self.entries[preg.0 as usize];
        std::mem::replace(&mut e.read, true)
    }

    /// Restores the read bit to a recorded value (squash undo).
    pub fn set_read(&mut self, preg: PhysReg, value: bool) {
        self.entries[preg.0 as usize].read = value;
    }

    /// True when the version counter can advance (not saturated).
    pub fn can_bump(&self, preg: PhysReg) -> bool {
        self.entries[preg.0 as usize].counter < self.max_version
    }

    /// Advances the version (a reuse): increments the counter and clears
    /// the read bit for the new version. Returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if the counter is saturated — callers must check
    /// [`Prt::can_bump`] first.
    pub fn bump(&mut self, preg: PhysReg) -> u8 {
        let max = self.max_version;
        let e = &mut self.entries[preg.0 as usize];
        assert!(e.counter < max, "version counter saturated for {preg}");
        e.counter += 1;
        e.read = false;
        e.counter
    }

    /// Rolls the version counter back to `version` with the recorded read
    /// bit (squash undo of a reuse).
    pub fn rollback(&mut self, preg: PhysReg, version: u8, read: bool) {
        let e = &mut self.entries[preg.0 as usize];
        e.counter = version;
        e.read = read;
    }

    /// Resets the entry for a fresh allocation: version 0, read bit clear.
    /// The mapping count is not touched (tracked separately).
    pub fn reset_on_alloc(&mut self, preg: PhysReg) {
        let e = &mut self.entries[preg.0 as usize];
        e.counter = 0;
        e.read = false;
    }

    /// Increments the mapping reference count.
    pub fn map_inc(&mut self, preg: PhysReg) {
        self.entries[preg.0 as usize].mapcount += 1;
    }

    /// Decrements the mapping reference count; returns the new value.
    ///
    /// # Panics
    ///
    /// Panics on underflow, which would indicate a double release.
    pub fn map_dec(&mut self, preg: PhysReg) -> u16 {
        let e = &mut self.entries[preg.0 as usize];
        assert!(e.mapcount > 0, "mapping count underflow for {preg}");
        e.mapcount -= 1;
        e.mapcount
    }

    /// The current mapping reference count.
    pub fn mapcount(&self, preg: PhysReg) -> u16 {
        self.entries[preg.0 as usize].mapcount
    }

    /// Number of registers tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the PRT tracks no registers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_bit_set_and_restore() {
        let mut prt = Prt::new(4, 3);
        let p = PhysReg(1);
        assert!(!prt.mark_read(p));
        assert!(prt.mark_read(p)); // second read reports the old value
        prt.set_read(p, false);
        assert!(!prt.entry(p).read);
    }

    #[test]
    fn bump_saturates_at_max_version() {
        let mut prt = Prt::new(2, 2);
        let p = PhysReg(0);
        assert_eq!(prt.bump(p), 1);
        assert_eq!(prt.bump(p), 2);
        assert!(!prt.can_bump(p));
    }

    #[test]
    #[should_panic(expected = "saturated")]
    fn bump_past_max_panics() {
        let mut prt = Prt::new(1, 1);
        prt.bump(PhysReg(0));
        prt.bump(PhysReg(0));
    }

    #[test]
    fn bump_clears_read_bit() {
        let mut prt = Prt::new(1, 3);
        let p = PhysReg(0);
        prt.mark_read(p);
        prt.bump(p);
        assert!(!prt.entry(p).read);
    }

    #[test]
    fn rollback_restores_counter_and_read() {
        let mut prt = Prt::new(1, 3);
        let p = PhysReg(0);
        prt.mark_read(p);
        prt.bump(p);
        prt.rollback(p, 0, true);
        assert_eq!(prt.entry(p).counter, 0);
        assert!(prt.entry(p).read);
    }

    #[test]
    fn mapcount_round_trip() {
        let mut prt = Prt::new(1, 3);
        let p = PhysReg(0);
        prt.map_inc(p);
        prt.map_inc(p);
        assert_eq!(prt.mapcount(p), 2);
        assert_eq!(prt.map_dec(p), 1);
        assert_eq!(prt.map_dec(p), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn mapcount_underflow_panics() {
        Prt::new(1, 3).map_dec(PhysReg(0));
    }

    #[test]
    fn reset_on_alloc_clears_version_state() {
        let mut prt = Prt::new(1, 3);
        let p = PhysReg(0);
        prt.mark_read(p);
        prt.bump(p);
        prt.reset_on_alloc(p);
        assert_eq!(
            prt.entry(p),
            PrtEntry {
                read: false,
                counter: 0,
                mapcount: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "beyond supported shadow depth")]
    fn excessive_counter_width_panics() {
        Prt::new(1, 8);
    }
}
