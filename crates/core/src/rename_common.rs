//! Machinery shared by every renaming scheme: the speculative and
//! retirement map tables, per-class free lists, the in-flight rename
//! record stack (checkpoint/rollback), and the audit cross-checks all
//! schemes perform identically.
//!
//! [`BaselineRenamer`](crate::BaselineRenamer) and
//! [`ReuseRenamer`](crate::ReuseRenamer) both compose a [`RenameTables`]
//! for the table/free-list state and a [`CheckpointStack`] for their
//! scheme-specific rename records, keeping only the paper-specific
//! policy (sharing, version tags, predictors) in their own modules.

use crate::renamer::{RenameStats, RenamerConfig};
use crate::{BankConfig, FreeList, MapTable, PhysReg, TaggedReg};
use regshare_isa::{ArchReg, HartId, RegClass, MAX_HARTS};
use std::collections::VecDeque;

/// The rename-table state every scheme owns: one speculative map table
/// and one retirement (architectural) map table **per hardware thread**,
/// one free list per register class shared by all threads, and the
/// scheme's [`RenameStats`].
///
/// The per-thread tables are what make SMT renaming safe over a shared
/// physical register file: a thread can only ever reach physical
/// registers through its own map table, so ownership never crosses
/// threads (the audits verify this).
#[derive(Debug, Clone)]
pub struct RenameTables {
    pub(crate) config: RenamerConfig,
    pub(crate) maps: Vec<MapTable>,
    pub(crate) retire_maps: Vec<MapTable>,
    pub(crate) free: [FreeList; 2],
    pub(crate) stats: RenameStats,
}

impl RenameTables {
    /// Builds the tables with every logical register of every thread
    /// mapped to an initial physical register (version 0), calling
    /// `on_init` for each initial allocation so schemes with extra
    /// per-register bookkeeping (e.g. the PRT mapping counts) can mirror
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the thread count is outside `1..=MAX_HARTS`, or if a
    /// register file is not larger than `threads ×` the logical register
    /// count (no registers would remain for renaming).
    pub fn new(config: RenamerConfig, mut on_init: impl FnMut(RegClass, PhysReg)) -> Self {
        let threads = config.threads;
        assert!(
            (1..=MAX_HARTS).contains(&threads),
            "thread count must be in 1..={MAX_HARTS}, got {threads}"
        );
        let mut free = [
            FreeList::new(&config.int_banks),
            FreeList::new(&config.fp_banks),
        ];
        for class in RegClass::ALL {
            assert!(
                config.banks(class).total() > threads * class.num_regs(),
                "{class} register file must exceed the {} logical registers of {threads} thread(s)",
                threads * class.num_regs()
            );
        }
        let mut maps = Vec::with_capacity(threads);
        for _ in 0..threads {
            let mut map = MapTable::new();
            for class in RegClass::ALL {
                for i in 0..class.num_regs() {
                    let preg = free[class.index()]
                        .alloc(0)
                        .expect("initial mapping fits by the assertion above");
                    on_init(class, preg);
                    map.set(ArchReg::new(class, i as u8), TaggedReg::new(class, preg, 0));
                }
            }
            maps.push(map);
        }
        let retire_maps = maps.clone();
        RenameTables {
            config,
            maps,
            retire_maps,
            free,
            stats: RenameStats::new(),
        }
    }

    /// Hardware-thread contexts these tables maintain.
    pub fn threads(&self) -> usize {
        self.maps.len()
    }

    /// The current (speculative) rename map of hart 0.
    pub fn map(&self) -> &MapTable {
        &self.maps[0]
    }

    /// The current (speculative) rename map of one hart.
    pub fn map_of(&self, hart: HartId) -> &MapTable {
        &self.maps[hart.index()]
    }

    /// The retirement (architectural) rename map of hart 0.
    pub fn retire_map(&self) -> &MapTable {
        &self.retire_maps[0]
    }

    /// The retirement (architectural) rename map of one hart.
    pub fn retire_map_of(&self, hart: HartId) -> &MapTable {
        &self.retire_maps[hart.index()]
    }

    /// The bank layout of one register class.
    pub fn banks(&self, class: RegClass) -> &BankConfig {
        self.config.banks(class)
    }

    /// The largest version tag the configuration can represent.
    pub fn max_version(&self) -> u8 {
        self.config.max_version()
    }

    /// Free physical registers of one class, across all banks.
    pub fn free_regs(&self, class: RegClass) -> usize {
        self.free[class.index()].free_total()
    }

    /// Allocated (in-use) physical registers of one class, per bank —
    /// the occupancy readout the pipeline samples for Fig. 11.
    pub fn in_use_per_bank(&self, class: RegClass) -> Vec<usize> {
        let mut out = Vec::new();
        self.in_use_per_bank_into(class, &mut out);
        out
    }

    /// [`Self::in_use_per_bank`] into a caller-owned buffer (cleared
    /// first), so the periodic occupancy sample never allocates.
    pub fn in_use_per_bank_into(&self, class: RegClass, out: &mut Vec<usize>) {
        let banks = self.config.banks(class);
        let free = &self.free[class.index()];
        out.clear();
        out.extend((0..banks.num_banks()).map(|k| banks.sizes()[k] - free.free_in_bank(k)));
    }

    /// Total allocated physical registers of one class; by construction
    /// the per-bank occupancies of [`Self::in_use_per_bank`] must sum to
    /// exactly this value (the pipeline audit cross-checks it).
    pub fn allocated_total(&self, class: RegClass) -> usize {
        self.config.banks(class).total() - self.free[class.index()].free_total()
    }

    /// Builds the free-register bitmap of one class for audits, failing
    /// on a duplicated free-list entry.
    pub fn free_bitmap(&self, class: RegClass) -> Result<Vec<bool>, String> {
        let total = self.config.banks(class).total();
        let mut free = vec![false; total];
        for p in self.free[class.index()].iter() {
            if free[p.0 as usize] {
                return Err(format!("{class}: {p} appears twice in the free list"));
            }
            free[p.0 as usize] = true;
        }
        Ok(free)
    }
}

/// An in-flight rename record: anything pushed onto a
/// [`CheckpointStack`] carries the sequence number of the micro-op that
/// created it.
pub trait SeqRecord {
    /// The sequence number of the micro-op this record belongs to.
    fn seq(&self) -> u64;
}

/// The in-flight rename record stack: pushed in rename order, drained
/// from the front at commit and from the back at squash. This is the
/// scheme's checkpoint structure — each record holds exactly the state
/// needed to undo (squash) or finalise (commit) one rename.
#[derive(Debug, Clone)]
pub struct CheckpointStack<R> {
    records: VecDeque<R>,
}

impl<R: SeqRecord> CheckpointStack<R> {
    /// An empty stack.
    pub fn new() -> Self {
        CheckpointStack {
            records: VecDeque::new(),
        }
    }

    /// Pushes the youngest record.
    pub fn push(&mut self, record: R) {
        self.records.push_back(record);
    }

    /// Pushes a batch of records renamed together (oldest first).
    pub fn extend(&mut self, records: impl IntoIterator<Item = R>) {
        self.records.extend(records);
    }

    /// Pops the oldest record at commit, asserting in-order retirement.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty or the oldest record is not `seq`.
    pub fn commit_front(&mut self, seq: u64) -> R {
        let record = self
            .records
            .pop_front()
            .expect("commit without an in-flight rename record");
        assert_eq!(record.seq(), seq, "commits must arrive in rename order");
        record
    }

    /// Pops the youngest record if it is younger than `seq` — the squash
    /// walk: call until `None` to undo everything after a recovery point.
    pub fn pop_younger(&mut self, seq: u64) -> Option<R> {
        if self.records.back().is_some_and(|r| r.seq() > seq) {
            self.records.pop_back()
        } else {
            None
        }
    }

    /// Iterates the in-flight records, oldest first (audits only).
    pub fn iter(&self) -> impl Iterator<Item = &R> {
        self.records.iter()
    }

    /// Number of in-flight records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no rename is in flight.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl<R: SeqRecord> Default for CheckpointStack<R> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Rec(u64);
    impl SeqRecord for Rec {
        fn seq(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn checkpoint_stack_commits_in_order_and_squashes_youngest_first() {
        let mut s = CheckpointStack::new();
        s.extend([Rec(0), Rec(1), Rec(2), Rec(3)]);
        assert_eq!(s.commit_front(0), Rec(0));
        assert_eq!(s.pop_younger(1), Some(Rec(3)));
        assert_eq!(s.pop_younger(1), Some(Rec(2)));
        assert_eq!(s.pop_younger(1), None);
        assert_eq!(s.len(), 1);
        assert_eq!(s.commit_front(1), Rec(1));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "rename order")]
    fn out_of_order_commit_panics() {
        let mut s = CheckpointStack::new();
        s.push(Rec(5));
        s.commit_front(4);
    }

    #[test]
    fn tables_report_consistent_occupancy() {
        let t = RenameTables::new(RenamerConfig::baseline(48), |_, _| {});
        for class in RegClass::ALL {
            let per_bank: usize = t.in_use_per_bank(class).iter().sum();
            assert_eq!(per_bank, t.allocated_total(class));
            assert_eq!(t.allocated_total(class) + t.free_regs(class), 48);
        }
    }
}

/// Read bits set by one micro-op, with their previous values — at most
/// one per source slot, stored inline so rename records never touch the
/// heap.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadMarks {
    buf: [(RegClass, PhysReg, bool); 3],
    len: u8,
}

impl ReadMarks {
    pub(crate) const EMPTY: ReadMarks = ReadMarks {
        buf: [(RegClass::Int, PhysReg(0), false); 3],
        len: 0,
    };

    pub(crate) fn push(&mut self, class: RegClass, preg: PhysReg, prev: bool) {
        self.buf[self.len as usize] = (class, preg, prev);
        self.len += 1;
    }

    /// The previous read-bit value recorded for `preg`, if this rename
    /// marked it.
    pub(crate) fn prev_read(&self, class: RegClass, preg: PhysReg) -> Option<bool> {
        self.buf[..self.len as usize]
            .iter()
            .find(|&&(c, p, _)| c == class && p == preg)
            .map(|&(_, _, prev)| prev)
    }

    pub(crate) fn iter(&self) -> impl DoubleEndedIterator<Item = &(RegClass, PhysReg, bool)> {
        self.buf[..self.len as usize].iter()
    }
}
