//! The register map table: logical register → versioned physical tag.

use crate::preg::TaggedReg;
use regshare_isa::{ArchReg, RegClass};

/// The rename map for both register classes.
///
/// Each logical register maps to a [`TaggedReg`] — physical register *and
/// version*, because under register sharing the same physical register id
/// can name several values. The retirement copy used for exception
/// bookkeeping is a second instance of this type.
///
/// # Examples
///
/// ```
/// use regshare_core::{MapTable, PhysReg, TaggedReg};
/// use regshare_isa::{reg, RegClass};
///
/// let mut map = MapTable::new();
/// let t = TaggedReg::new(RegClass::Int, PhysReg(5), 0);
/// let old = map.set(reg::x(1), t);
/// assert_eq!(map.get(reg::x(1)), t);
/// assert_ne!(old, t);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapTable {
    int: Vec<TaggedReg>,
    fp: Vec<TaggedReg>,
}

impl MapTable {
    /// Creates a map with every logical register mapped to a placeholder
    /// tag (physical register 0 of its class, version 0). Renamers
    /// initialize real mappings at reset.
    pub fn new() -> Self {
        let mk =
            |class: RegClass| vec![TaggedReg::new(class, crate::PhysReg(0), 0); class.num_regs()];
        MapTable {
            int: mk(RegClass::Int),
            fp: mk(RegClass::Fp),
        }
    }

    /// Current mapping of a logical register.
    pub fn get(&self, reg: ArchReg) -> TaggedReg {
        match reg.class() {
            RegClass::Int => self.int[reg.index() as usize],
            RegClass::Fp => self.fp[reg.index() as usize],
        }
    }

    /// Replaces the mapping; returns the previous one.
    ///
    /// # Panics
    ///
    /// Panics if the tag's class does not match the logical register's.
    pub fn set(&mut self, reg: ArchReg, tag: TaggedReg) -> TaggedReg {
        assert_eq!(
            reg.class(),
            tag.class,
            "mapping {reg} to a tag of the wrong class"
        );
        let slot = match reg.class() {
            RegClass::Int => &mut self.int[reg.index() as usize],
            RegClass::Fp => &mut self.fp[reg.index() as usize],
        };
        std::mem::replace(slot, tag)
    }

    /// Iterates `(logical register, mapping)` over one class.
    pub fn iter_class(&self, class: RegClass) -> impl Iterator<Item = (ArchReg, TaggedReg)> + '_ {
        let regs = match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        };
        regs.iter()
            .enumerate()
            .map(move |(i, t)| (ArchReg::new(class, i as u8), *t))
    }

    /// Logical registers whose mapping differs from `other` — the set the
    /// paper's exception recovery walks ("any entry that differs indicates
    /// a logical register whose correct state needs to be recovered",
    /// §IV-B).
    pub fn diff(&self, other: &MapTable) -> Vec<ArchReg> {
        let mut out = Vec::new();
        for class in RegClass::ALL {
            for (reg, tag) in self.iter_class(class) {
                if other.get(reg) != tag {
                    out.push(reg);
                }
            }
        }
        out
    }
}

impl Default for MapTable {
    fn default() -> Self {
        MapTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PhysReg;
    use regshare_isa::reg;

    #[test]
    fn set_returns_previous_mapping() {
        let mut m = MapTable::new();
        let a = TaggedReg::new(RegClass::Int, PhysReg(3), 0);
        let b = TaggedReg::new(RegClass::Int, PhysReg(3), 1);
        m.set(reg::x(4), a);
        assert_eq!(m.set(reg::x(4), b), a);
        assert_eq!(m.get(reg::x(4)), b);
    }

    #[test]
    fn classes_are_independent() {
        let mut m = MapTable::new();
        m.set(reg::x(2), TaggedReg::new(RegClass::Int, PhysReg(9), 0));
        m.set(reg::f(2), TaggedReg::new(RegClass::Fp, PhysReg(7), 0));
        assert_eq!(m.get(reg::x(2)).preg, PhysReg(9));
        assert_eq!(m.get(reg::f(2)).preg, PhysReg(7));
    }

    #[test]
    #[should_panic(expected = "wrong class")]
    fn class_mismatch_panics() {
        let mut m = MapTable::new();
        m.set(reg::x(0), TaggedReg::new(RegClass::Fp, PhysReg(0), 0));
    }

    #[test]
    fn diff_lists_changed_registers() {
        let mut a = MapTable::new();
        let b = a.clone();
        assert!(a.diff(&b).is_empty());
        a.set(reg::x(1), TaggedReg::new(RegClass::Int, PhysReg(8), 2));
        a.set(reg::f(3), TaggedReg::new(RegClass::Fp, PhysReg(8), 1));
        let d = a.diff(&b);
        assert_eq!(d, vec![reg::x(1), reg::f(3)]);
    }

    #[test]
    fn iter_class_covers_all_registers() {
        let m = MapTable::new();
        assert_eq!(m.iter_class(RegClass::Int).count(), 32);
        assert_eq!(m.iter_class(RegClass::Fp).count(), 32);
    }
}
