#![warn(missing_docs)]

//! Register renaming with physical register sharing — the primary
//! contribution of *"A Novel Register Renaming Technique for Out-of-Order
//! Processors"* (HPCA 2018).
//!
//! # The technique in one paragraph
//!
//! More than half of SPECfp values (and ~a third of SPECint values) are
//! consumed by exactly one instruction. When the renamer can see that the
//! instruction it is renaming is the *first* consumer of a source value
//! (the Physical Register Table's read bit is clear) and the *last* one
//! (it redefines the same logical register, or a predictor says the value
//! is single-use), the destination can **reuse the source's physical
//! register** instead of allocating a new one. A small version counter
//! appended to the register tag keeps RAW dependences unambiguous in the
//! issue queue, and shadow bit-cells in the register file preserve the
//! overwritten values so branch mispredictions, interrupts and exceptions
//! stay precise.
//!
//! # Crate layout
//!
//! * [`TaggedReg`], [`PhysReg`] — versioned physical register tags.
//! * [`BankConfig`] — register-file banks with 0–7 embedded shadow cells
//!   (§IV-C; the paper uses banks of 0/1/2/3).
//! * [`Prt`] — the Physical Register Table: read bit + saturating version
//!   counter per physical register (§IV-A).
//! * [`MapTable`], [`FreeList`] — classic rename structures, version- and
//!   bank-aware.
//! * [`RegFile`] — a value-carrying register file with shadow cells:
//!   writes of version *v* checkpoint the previous version automatically;
//!   [`RegFile::recover`] implements the recover command (§IV-C1).
//! * [`RegTypePredictor`] — the 512-entry, 2-bit register type predictor
//!   (§IV-D), including all three update rules.
//! * [`Renamer`] — the interface the out-of-order pipeline drives:
//!   in-order [`Renamer::rename`], in-order [`Renamer::commit`], and
//!   [`Renamer::squash_after`] for mis-speculation recovery.
//! * [`BaselineRenamer`] — conventional merged-file renaming with
//!   release-on-commit (the paper's baseline).
//! * [`EarlyReleaseRenamer`] — a Moudgill/Monreal-style early-release
//!   comparator (related work, §VII): release at redefiner-non-speculative
//!   plus reads-done, no precise-exception support.
//! * [`ReuseRenamer`] — the proposed scheme, including speculative reuse
//!   and the single-use misprediction repair micro-ops of §IV-D1.
//!
//! # Examples
//!
//! The dependence chain from Fig. 4 of the paper: chained single-use
//! definitions of `r1` share one physical register under the proposed
//! scheme.
//!
//! ```
//! use regshare_core::{Renamer, ReuseRenamer, RenamerConfig};
//! use regshare_isa::{Inst, Opcode, reg};
//!
//! let mut r = ReuseRenamer::new(RenamerConfig::small_test());
//! // I1: add r1 <- r2, r3   (defines r1)
//! let i1 = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
//! // I4: add r1 <- r1, r4   (first and last consumer of r1)
//! let i4 = Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(4));
//!
//! // First iteration: the cold register-type predictor allocates r1 in a
//! // conventional bank, so the reuse is blocked — and learned from.
//! let mut seq = 0;
//! for _ in 0..2 {
//!     for (pc, inst) in [(0u64, &i1), (4u64, &i4)] {
//!         seq += r.rename(seq, pc, inst).unwrap().len() as u64;
//!     }
//! }
//! // Trained: I1 now gets a register with shadow cells and I4 reuses it.
//! let d1 = r.rename(seq, 0, &i1).unwrap()[0].dst.unwrap();
//! let d4 = r.rename(seq + 1, 4, &i4).unwrap()[0].dst.unwrap();
//! assert_eq!(d1.preg, d4.preg);            // same physical register
//! assert_eq!(d4.version, d1.version + 1);  // next version
//! ```

mod banks;
mod baseline;
mod early_release;
mod free_list;
mod map_table;
mod predictor;
mod preg;
mod prt;
mod regfile;
mod rename_common;
mod renamer;
mod reuse;
mod warm;

pub use banks::BankConfig;
pub use baseline::BaselineRenamer;
pub use early_release::EarlyReleaseRenamer;
pub use free_list::FreeList;
pub use map_table::MapTable;
pub use predictor::{PredictorStats, RegTypePredictor, SingleUsePredictor};
pub use preg::{PhysReg, TaggedReg, MAX_SHADOW_CELLS};
pub use prt::Prt;
pub use regfile::RegFile;
pub use rename_common::{CheckpointStack, RenameTables, SeqRecord};
pub use renamer::{
    HintPolicy, HintStats, RenameStats, Renamer, RenamerConfig, SquashOutcome, Uop, UopKind,
    UopVec, MAX_UOPS,
};
pub use reuse::{CorruptKind, ReuseRenamer};
pub use warm::ReuseWarmer;
