//! Functional warming of the reuse-scheme predictors.
//!
//! The detailed renamer trains its register type predictor (§IV-D) and
//! single-use predictor (§IV-A2) from release-time events that only exist
//! inside a timing simulation: shadow-cell consumption, repair micro-ops,
//! blocked reuses. A functional fast-forward has none of that machinery,
//! so [`ReuseWarmer`] maintains a *model* of it: one live-definition slot
//! per architectural register, tracking how the defining instruction's
//! value is consumed, and driving the same predictor update rules the
//! renamer would have applied.
//!
//! The model is an approximation — it assumes every predicted shadow cell
//! is available (no bank pressure) and every speculative reuse is taken
//! when the single-use predictor says so. That is exactly the program's
//! *dataflow* signal, which is what the PC-indexed predictors learn from;
//! the sampled-vs-full equivalence test bounds the residual error.

use crate::{RegTypePredictor, RenamerConfig, SingleUsePredictor};
use regshare_isa::{ArchReg, Inst, NUM_FP_REGS, NUM_INT_REGS};

/// Model of one in-flight (live) register definition.
#[derive(Debug, Clone, Copy, Default)]
struct LiveDef {
    valid: bool,
    /// Predictor entry of the defining PC.
    entry: usize,
    /// Shadow cells the predictor would have granted at allocation.
    predicted: u8,
    /// Reuses the model charged against those shadow cells.
    reuses: u8,
    /// Consumers observed so far.
    uses: u32,
    /// A predicted-single-use value turned out multi-use (repair).
    multi_use: bool,
    /// A reuse opportunity arrived with no shadow cell left.
    blocked: bool,
    /// Single-use predictor entry of the first consumer, while its
    /// speculative reuse is still unconfirmed.
    spec_entry: Option<usize>,
}

/// Streams a functionally-executed instruction sequence through a model
/// of the reuse renamer's predictor training.
///
/// # Examples
///
/// ```
/// use regshare_core::{RenamerConfig, ReuseWarmer};
/// use regshare_isa::{reg, Inst, Opcode};
///
/// let mut w = ReuseWarmer::new(&RenamerConfig::small_test());
/// // x1 = x1 + 1 redefines its own source: a safe-reuse opportunity.
/// let inst = Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1);
/// w.observe(0x10, &inst);
/// w.observe(0x10, &inst);
/// assert!(w.predictor().predict(0x10) >= 1); // learned to grant a cell
/// ```
#[derive(Debug, Clone)]
pub struct ReuseWarmer {
    predictor: RegTypePredictor,
    single_use: SingleUsePredictor,
    live: [Vec<LiveDef>; 2],
    speculative_reuse: bool,
}

impl ReuseWarmer {
    /// Creates a warmer with cold predictor tables sized per `config`.
    pub fn new(config: &RenamerConfig) -> Self {
        ReuseWarmer {
            predictor: RegTypePredictor::new(config.predictor_entries, config.predictor_bits),
            single_use: SingleUsePredictor::new(config.predictor_entries),
            live: [
                vec![LiveDef::default(); NUM_INT_REGS],
                vec![LiveDef::default(); NUM_FP_REGS],
            ],
            speculative_reuse: config.speculative_reuse,
        }
    }

    /// The warmed register type predictor.
    pub fn predictor(&self) -> &RegTypePredictor {
        &self.predictor
    }

    /// The warmed single-use predictor.
    pub fn single_use(&self) -> &SingleUsePredictor {
        &self.single_use
    }

    fn slot(&mut self, r: ArchReg) -> &mut LiveDef {
        &mut self.live[r.class().index()][r.index() as usize]
    }

    /// Observes one retired instruction at `pc`.
    pub fn observe(&mut self, pc: u64, inst: &Inst) {
        let dst = inst.dst();
        let dst2 = inst.dst2();
        // Consumer reads. A source the instruction also redefines is the
        // renamer's safe-reuse path and is charged at the redefinition
        // below, not as an ordinary consumer.
        let mut seen: [Option<ArchReg>; 3] = [None; 3];
        for (i, src) in inst.raw_sources().iter().enumerate() {
            let Some(r) = *src else { continue };
            if r.is_zero() || seen[..i].contains(&Some(r)) {
                continue;
            }
            seen[i] = Some(r);
            if Some(r) == dst || Some(r) == dst2 {
                continue;
            }
            self.on_consumer(pc, r);
        }
        // Redefinitions: close the previous live definition and open a
        // new one under the defining PC's prediction.
        for d in [dst, dst2].into_iter().flatten() {
            let redefining_read = inst.raw_sources().contains(&Some(d));
            self.on_redefine(pc, d, redefining_read);
        }
    }

    fn on_consumer(&mut self, pc: u64, r: ArchReg) {
        let spec_ok = self.speculative_reuse && self.single_use.predict(pc);
        let spec_index = self.single_use.entry_index(pc);
        let slot = self.slot(r);
        if !slot.valid {
            return;
        }
        slot.uses += 1;
        match slot.uses {
            // First consumer: the renamer consults the single-use
            // predictor and reuses speculatively on a hit.
            1 if spec_ok => {
                slot.spec_entry = Some(spec_index);
                if slot.predicted > slot.reuses {
                    slot.reuses += 1;
                } else {
                    slot.blocked = true;
                    let entry = slot.entry;
                    self.predictor.on_blocked_reuse(entry);
                }
            }
            2 => {
                // Second consumer: a speculative reuse (if taken) was a
                // single-use misprediction and gets repaired.
                if let Some(e) = slot.spec_entry.take() {
                    slot.multi_use = true;
                    let entry = slot.entry;
                    self.single_use.on_wrong(e);
                    self.predictor.on_multi_use(entry);
                }
            }
            _ => {}
        }
    }

    fn on_redefine(&mut self, pc: u64, r: ArchReg, redefining_read: bool) {
        let entry = self.predictor.entry_index(pc);
        let predicted = self.predictor.predict(pc);
        let slot = *self.slot(r);
        if slot.valid {
            let mut closing = slot;
            if redefining_read {
                // The renamer's guaranteed-safe reuse: needs a shadow cell.
                if closing.predicted > closing.reuses {
                    closing.reuses += 1;
                } else {
                    closing.blocked = true;
                    self.predictor.on_blocked_reuse(closing.entry);
                }
            }
            if let Some(e) = closing.spec_entry {
                // The sole speculative consumer survived to release.
                self.single_use.on_correct(e);
            }
            self.predictor.on_release(
                closing.entry,
                closing.predicted,
                closing.reuses,
                closing.multi_use,
                closing.blocked,
            );
        }
        *self.slot(r) = LiveDef {
            valid: true,
            entry,
            predicted,
            ..LiveDef::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Opcode};

    fn warmer() -> ReuseWarmer {
        ReuseWarmer::new(&RenamerConfig::small_test())
    }

    #[test]
    fn redefining_chain_learns_shadow_cells() {
        let mut w = warmer();
        let inst = Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1);
        // First redefinition is blocked (cold predictor grants 0 cells),
        // bumping the entry; later ones are granted a cell and confirmed.
        for _ in 0..8 {
            w.observe(0x10, &inst);
        }
        assert!(w.predictor().predict(0x10) >= 1);
        assert!(w.predictor().stats().total() > 0);
    }

    #[test]
    fn multi_use_value_trains_single_use_predictor_down() {
        let mut w = warmer();
        let def = Inst::rri(Opcode::Addi, reg::x(1), reg::x(2), 1);
        let use_a = Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::x(4));
        let use_b = Inst::rrr(Opcode::Add, reg::x(5), reg::x(1), reg::x(6));
        assert!(w.single_use().predict(0x20), "optimistic cold start");
        for _ in 0..4 {
            w.observe(0x10, &def);
            w.observe(0x20, &use_a); // speculative reuse
            w.observe(0x30, &use_b); // second use: repair
        }
        assert!(
            !w.single_use().predict(0x20),
            "repeated repairs must stop the speculation"
        );
    }

    #[test]
    fn single_use_value_keeps_speculation_on() {
        let mut w = warmer();
        let def = Inst::rri(Opcode::Addi, reg::x(1), reg::x(2), 1);
        let only_use = Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::x(4));
        for _ in 0..4 {
            w.observe(0x10, &def);
            w.observe(0x20, &only_use);
        }
        assert!(w.single_use().predict(0x20));
    }

    #[test]
    fn zero_register_is_ignored() {
        let mut w = warmer();
        let inst = Inst::rrr(Opcode::Add, reg::zero(), reg::zero(), reg::zero());
        for _ in 0..4 {
            w.observe(0x10, &inst);
        }
        assert_eq!(w.predictor().stats().total(), 0);
    }
}
