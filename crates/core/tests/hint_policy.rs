//! Behaviour of the static-hint consumption path ([`regshare_core::HintPolicy`]):
//! `StaticOnly` acts purely on compiled proofs, `Hybrid` lets exact proofs
//! override the predictors, and `DynamicOnly` is bit-identical to a
//! renamer with no hint table at all.

use regshare_core::{HintPolicy, Renamer, RenamerConfig, ReuseRenamer};
use regshare_isa::{reg, DefSlot, Inst, Opcode, ShareHint, ShareHintTable};

/// Scalar rename-statistic fields, for whole-struct equality checks
/// (`RenameStats` itself carries a histogram and no `PartialEq`).
fn stat_fields(r: &ReuseRenamer) -> [u64; 10] {
    let s = r.stats();
    [
        s.renamed,
        s.allocations,
        s.reuses,
        s.safe_reuses,
        s.speculative_reuses,
        s.blocked_reuses,
        s.stalls,
        s.repairs,
        s.releases,
        s.squashed,
    ]
}

fn renamer_with(policy: HintPolicy, hints: &ShareHintTable) -> ReuseRenamer {
    let mut cfg = RenamerConfig::small_test();
    cfg.hint_policy = policy;
    let mut r = ReuseRenamer::new(cfg);
    r.install_hints(hints);
    r
}

/// pc 0 defines `x1`, pc 1 consumes it without redefining.
fn def_and_consume() -> (Inst, Inst) {
    let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
    let consume = Inst::rrr(Opcode::Add, reg::x(5), reg::x(1), reg::x(4));
    (def, consume)
}

#[test]
fn static_only_reuses_on_first_sight_without_any_training() {
    // A cold register-type predictor banks everything conventionally, so
    // the dynamic scheme needs a training round before it can share. A
    // static SingleUse proof on the producer needs none.
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    let mut r = renamer_with(HintPolicy::StaticOnly, &hints);
    let (def, consume) = def_and_consume();
    let d = r.rename(0, 0, &def).unwrap()[0];
    let u = r.rename(1, 1, &consume).unwrap()[0];
    assert_eq!(u.dst.unwrap().preg, d.dst.unwrap().preg);
    assert_eq!(u.dst.unwrap().version, d.dst.unwrap().version + 1);
    let hs = r.hint_stats();
    assert_eq!(hs.static_speculations, 1);
    assert_eq!(hs.dynamic_speculations, 0);
    assert_eq!(hs.static_allocs, r.stats().allocations + r.stats().repairs);
    assert_eq!(hs.dynamic_allocs, 0);
}

#[test]
fn hybrid_exact_proof_overrides_like_static_only() {
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    let mut r = renamer_with(HintPolicy::Hybrid, &hints);
    let (def, consume) = def_and_consume();
    let d = r.rename(0, 0, &def).unwrap()[0];
    let u = r.rename(1, 1, &consume).unwrap()[0];
    assert_eq!(u.dst.unwrap().preg, d.dst.unwrap().preg);
    assert_eq!(r.hint_stats().static_speculations, 1);
    assert_eq!(r.hint_stats().dynamic_speculations, 0);
}

#[test]
fn exact_negative_proof_denies_a_speculation_the_predictor_would_take() {
    // The single-use predictor initialises optimistic (predict = true),
    // so under DynamicOnly the consumer would at least attempt the
    // speculation. A Multi proof on the producer vetoes it outright.
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::Multi);
    let mut r = renamer_with(HintPolicy::Hybrid, &hints);
    let (def, consume) = def_and_consume();
    r.rename(0, 0, &def).unwrap();
    r.rename(1, 1, &consume).unwrap();
    assert_eq!(r.stats().reuses, 0);
    assert_eq!(r.hint_stats().static_denials, 1);
    assert_eq!(r.hint_stats().static_speculations, 0);
}

#[test]
fn hybrid_falls_back_to_the_predictor_where_the_proof_is_unknown() {
    // All-Unknown hints: Hybrid must behave exactly like DynamicOnly —
    // banks come from the type predictor, grants from the single-use
    // predictor.
    let hints = ShareHintTable::new(8);
    let mut hybrid = renamer_with(HintPolicy::Hybrid, &hints);
    let mut dynamic = renamer_with(HintPolicy::DynamicOnly, &hints);
    let (def, consume) = def_and_consume();
    for r in [&mut hybrid, &mut dynamic] {
        let mut seq = 0;
        for _ in 0..3 {
            for (pc, inst) in [(0u64, &def), (1u64, &consume)] {
                seq += r.rename(seq, pc, inst).unwrap().len() as u64;
            }
        }
    }
    assert_eq!(stat_fields(&hybrid), stat_fields(&dynamic));
    assert_eq!(
        hybrid.hint_stats().dynamic_speculations,
        dynamic.hint_stats().dynamic_speculations
    );
    assert_eq!(hybrid.hint_stats().static_speculations, 0);
}

#[test]
fn dynamic_only_ignores_an_installed_table_entirely() {
    // Same instruction stream, one renamer with a maximally-opinionated
    // hint table and one without any: under DynamicOnly every uop and
    // every rename statistic must be identical.
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    hints.set(1, DefSlot::Primary, ShareHint::NoReuse);
    let mut hinted = renamer_with(HintPolicy::DynamicOnly, &hints);
    let mut bare = ReuseRenamer::new(RenamerConfig::small_test());
    let (def, consume) = def_and_consume();
    let mut seq = 0;
    for _ in 0..4 {
        for (pc, inst) in [(0u64, &def), (1u64, &consume)] {
            let a = hinted.rename(seq, pc, inst).unwrap();
            let b = bare.rename(seq, pc, inst).unwrap();
            assert_eq!(a, b);
            seq += a.len() as u64;
        }
    }
    assert_eq!(stat_fields(&hinted), stat_fields(&bare));
    assert_eq!(hinted.predictor_stats(), bare.predictor_stats());
}

#[test]
fn a_wrong_static_proof_is_repaired_and_charged_to_the_compiler() {
    // The producer is hinted SingleUse but the value is read twice: the
    // second read finds a stale mapping, triggers the §IV-D1 repair, and
    // the repair is attributed to the static source — the dynamic
    // predictor is neither credited nor corrected.
    let mut hints = ShareHintTable::new(3);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    let mut r = renamer_with(HintPolicy::StaticOnly, &hints);
    let (def, consume) = def_and_consume();
    let second = Inst::rrr(Opcode::Add, reg::x(6), reg::x(1), reg::x(4));
    r.rename(0, 0, &def).unwrap();
    r.rename(1, 1, &consume).unwrap();
    let uops = r.rename(2, 2, &second).unwrap();
    assert_eq!(uops.len(), 2, "repair move expected");
    let hs = r.hint_stats();
    assert_eq!(hs.static_repaired, 1);
    assert_eq!(hs.dynamic_repaired, 0);
    assert_eq!(r.stats().repairs, 1);
}

#[test]
fn static_grants_survive_to_release_as_static_correct() {
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    let mut r = renamer_with(HintPolicy::StaticOnly, &hints);
    let (def, consume) = def_and_consume();
    r.rename(0, 0, &def).unwrap();
    r.rename(1, 1, &consume).unwrap();
    r.commit(0);
    r.commit(1);
    // Kill the chain: redefine both x1 and x5 with fresh values.
    let li1 = Inst::ri(Opcode::Li, reg::x(1), 7);
    let li5 = Inst::ri(Opcode::Li, reg::x(5), 8);
    r.rename(2, 2, &li1).unwrap();
    r.rename(3, 2, &li5).unwrap();
    r.commit(2);
    r.commit(3);
    let hs = r.hint_stats();
    assert_eq!(hs.static_correct, 1);
    assert_eq!(hs.static_repaired, 0);
    assert!(hs.static_accuracy() > 0.99);
}

#[test]
fn squash_of_a_static_speculation_rolls_the_grant_back() {
    let mut hints = ShareHintTable::new(2);
    hints.set(0, DefSlot::Primary, ShareHint::SingleUse);
    let mut r = renamer_with(HintPolicy::StaticOnly, &hints);
    let (def, consume) = def_and_consume();
    r.rename(0, 0, &def).unwrap();
    r.rename(1, 1, &consume).unwrap();
    r.squash_after(0);
    r.audit().unwrap();
    // The squashed version's grant bookkeeping is cleared: a later read
    // of x1 sees a live mapping (no stale-version repair).
    let second = Inst::rrr(Opcode::Add, reg::x(6), reg::x(1), reg::x(4));
    let uops = r.rename(1, 2, &second).unwrap();
    assert_eq!(uops.len(), 1, "no repair after squash");
    assert_eq!(r.stats().repairs, 0);
}
