//! Behavioural tests of the proposed sharing scheme ([`ReuseRenamer`]),
//! exercised through the public [`Renamer`] interface: reuse decisions,
//! predictor training, repair micro-ops, squash/commit bookkeeping, and
//! the auditor's corruption self-checks.

use regshare_core::{BankConfig, CorruptKind, Renamer, RenamerConfig, ReuseRenamer, Uop, UopKind};
use regshare_isa::{reg, Inst, Opcode, RegClass};

fn renamer() -> ReuseRenamer {
    ReuseRenamer::new(RenamerConfig::small_test())
}

/// Renames the I1/I4 pair (define r1; redefine r1 using it) twice.
/// The first round trains the predictor; the second reuses.
fn train_and_reuse(r: &mut ReuseRenamer) -> (Uop, Uop) {
    let i1 = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
    let i4 = Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(4));
    let mut seq = 0;
    for _ in 0..2 {
        for (pc, inst) in [(0u64, &i1), (4u64, &i4)] {
            let uops = r.rename(seq, pc, inst).unwrap();
            seq += uops.len() as u64;
        }
    }
    // Repeat once more and capture the pair.
    let a = r.rename(seq, 0, &i1).unwrap()[0];
    let b = r.rename(seq + 1, 4, &i4).unwrap()[0];
    (a, b)
}

#[test]
fn blocked_reuse_trains_predictor_then_reuses() {
    let mut r = renamer();
    assert_eq!(r.predictor().predict(0), 0);
    let (a, b) = train_and_reuse(&mut r);
    // After training, I1's destination lives in a shadow bank and I4
    // reuses it.
    let da = a.dst.unwrap();
    let db = b.dst.unwrap();
    assert_eq!(da.preg, db.preg);
    assert_eq!(db.version, da.version + 1);
    assert!(r.stats().reuses >= 1);
    assert!(r.stats().blocked_reuses >= 1);
    assert!(r.stats().safe_reuses >= 1);
}

#[test]
fn reuse_does_not_cross_register_classes() {
    let mut r = renamer();
    // cvt.i.f reads an int register and writes an fp register; even a
    // first-and-last use must not share across files.
    let c = Inst::rr(Opcode::CvtIf, reg::f(1), reg::x(1));
    let u = r.rename(0, 0, &c).unwrap()[0];
    assert_eq!(u.dst.unwrap().class, RegClass::Fp);
    assert_eq!(u.dst.unwrap().version, 0);
    assert_eq!(r.stats().reuses, 0);
}

#[test]
fn second_consumer_cannot_reuse() {
    let mut r = renamer();
    // x2 is read by a store (first consumer), then by a redefining add:
    // the add is no longer the first consumer, so no reuse.
    let s = Inst::store(Opcode::St, reg::x(2), reg::x(3), 0);
    r.rename(0, 0, &s).unwrap();
    let a = Inst::rrr(Opcode::Add, reg::x(2), reg::x(2), reg::x(4));
    let u = r.rename(1, 4, &a).unwrap()[0];
    assert_eq!(u.dst.unwrap().version, 0);
    assert_eq!(r.stats().reuses, 0);
}

#[test]
fn counter_saturation_limits_chain_length() {
    let mut cfg = RenamerConfig::small_test();
    cfg.counter_bits = 1; // versions saturate at 1
                          // Give bank 3 plenty of room so capacity is counter-limited.
    cfg.int_banks = BankConfig::new(vec![33, 0, 0, 8]);
    cfg.fp_banks = cfg.int_banks.clone();
    let mut r = ReuseRenamer::new(cfg);
    let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(2));
    let mut seq = 0u64;
    let mut versions = Vec::new();
    // Train, then chain.
    for pc in [0u64; 6] {
        let u = r.rename(seq, pc, &i).unwrap();
        versions.push(u.last().unwrap().dst.unwrap().version);
        seq += u.len() as u64;
    }
    // With a 1-bit counter no version ever exceeds 1.
    assert!(versions.iter().all(|v| *v <= 1));
}

#[test]
fn speculative_reuse_and_repair_on_second_read() {
    let mut r = renamer();
    // Train pc=0 to allocate with shadow cells.
    let def = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
    let use_nonredef = Inst::rrr(Opcode::Add, reg::x(5), reg::x(1), reg::x(4));
    let mut seq = 0u64;
    for _ in 0..2 {
        for (pc, inst) in [(0u64, &def), (4u64, &use_nonredef)] {
            let uops = r.rename(seq, pc, inst).unwrap();
            seq += uops.len() as u64;
        }
    }
    // Now: def allocates a shadow-bank register for r1; the next use
    // (not redefining) speculatively reuses it for r5.
    let d = r.rename(seq, 0, &def).unwrap()[0];
    seq += 1;
    let u = r.rename(seq, 4, &use_nonredef).unwrap()[0];
    seq += 1;
    let du = u.dst.unwrap();
    assert_eq!(du.preg, d.dst.unwrap().preg, "speculative reuse expected");
    assert!(r.stats().speculative_reuses >= 1);
    // A second consumer of r1 arrives: the mapping is stale -> repair.
    let second = Inst::rrr(Opcode::Add, reg::x(6), reg::x(1), reg::x(4));
    let uops = r.rename(seq, 8, &second).unwrap();
    assert_eq!(uops.len(), 2);
    assert_eq!(uops[0].kind, UopKind::RepairMove);
    // The repair reads the stale version and writes a fresh register.
    assert_eq!(uops[0].srcs[0].unwrap(), d.dst.unwrap());
    assert_eq!(uops[0].dst.unwrap().version, 0);
    // The main op consumes the repaired register.
    assert_eq!(uops[1].srcs[0].unwrap(), uops[0].dst.unwrap());
    assert_eq!(r.stats().repairs, 1);
}

#[test]
fn squash_undoes_reuse_and_requests_recover() {
    let mut r = renamer();
    let (a, b) = train_and_reuse(&mut r);
    let before_map = r.map().get(reg::x(1));
    assert_eq!(before_map, b.dst.unwrap());
    let out = r.squash_after(b.seq - 1).clone();
    assert_eq!(out.undone, 1);
    assert_eq!(r.map().get(reg::x(1)), a.dst.unwrap());
    // The squashed reuse rolled a version back: recover candidate.
    assert_eq!(out.recovers.len(), 1);
    assert_eq!(out.recovers[0], a.dst.unwrap());
    // PRT counter rolled back, read bit restored to unread... no:
    // x1's value was read by the squashed instruction only, so the
    // read bit must be clear again.
    let prt = r.prt(RegClass::Int).entry(a.dst.unwrap().preg);
    assert_eq!(prt.counter, a.dst.unwrap().version);
    assert!(!prt.read);
}

#[test]
fn squash_undoes_allocation_and_frees() {
    let mut r = renamer();
    let free_before = r.free_regs(RegClass::Int);
    let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
    r.rename(7, 0, &i).unwrap();
    assert_eq!(r.free_regs(RegClass::Int), free_before - 1);
    r.squash_after(6);
    assert_eq!(r.free_regs(RegClass::Int), free_before);
}

#[test]
fn commit_of_chain_releases_nothing_until_chain_dies() {
    let mut r = renamer();
    let (_a, b) = train_and_reuse(&mut r);
    let releases_before = r.stats().releases;
    // Commit everything renamed so far (seqs 0..=b.seq).
    for s in 0..=b.seq {
        r.commit(s);
    }
    // The chained register must NOT be released: r1 still maps to it.
    let preg = b.dst.unwrap().preg;
    assert!(r.prt(RegClass::Int).mapcount(preg) >= 1);
    // Redefine r1 with a value that cannot be reused (different class
    // source is irrelevant; use li which has no sources).
    let li = Inst::ri(Opcode::Li, reg::x(1), 9);
    let u = r.rename(b.seq + 1, 100, &li).unwrap()[0];
    assert_eq!(u.dst.unwrap().version, 0); // fresh allocation
    r.commit(b.seq + 1);
    // Now the chain register is dead and must have been released.
    assert!(r.stats().releases > releases_before);
    assert_eq!(r.prt(RegClass::Int).mapcount(preg), 0);
}

#[test]
fn stall_rolls_back_partial_state() {
    // 33 registers: after initial mappings a single register is free.
    let mut cfg = RenamerConfig::small_test();
    cfg.int_banks = BankConfig::new(vec![33]);
    cfg.fp_banks = BankConfig::new(vec![33]);
    let mut r = ReuseRenamer::new(cfg);
    let i = Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3));
    assert!(r.rename(0, 0, &i).is_some());
    // Next rename must stall: no free registers, no shadow cells.
    let j = Inst::rrr(Opcode::Add, reg::x(4), reg::x(5), reg::x(6));
    assert!(r.rename(1, 4, &j).is_none());
    // The stall must not have left read bits set.
    let t5 = r.map().get(reg::x(5));
    assert!(!r.prt(RegClass::Int).entry(t5.preg).read);
    assert_eq!(r.stats().stalls, 1);
    // Committing the first rename frees a register and unblocks.
    r.commit(0);
    assert!(r.rename(1, 4, &j).is_some());
}

#[test]
fn chain_lengths_recorded_at_release() {
    let mut r = renamer();
    let (_a, b) = train_and_reuse(&mut r);
    for s in 0..=b.seq {
        r.commit(s);
    }
    let li = Inst::ri(Opcode::Li, reg::x(1), 9);
    r.rename(b.seq + 1, 100, &li).unwrap();
    r.commit(b.seq + 1);
    // The last released register carried one reuse.
    assert!(r.stats().chain_lengths.count(1) >= 1);
}

#[test]
fn duplicate_source_operands_mark_one_read() {
    let mut r = renamer();
    let i = Inst::rrr(Opcode::Mul, reg::x(5), reg::x(1), reg::x(1));
    r.rename(0, 0, &i).unwrap();
    let t = r.map().get(reg::x(1));
    assert!(r.prt(RegClass::Int).entry(t.preg).read);
}

#[test]
fn audit_is_clean_across_rename_squash_commit() {
    let mut r = renamer();
    r.audit().unwrap();
    let (_a, b) = train_and_reuse(&mut r);
    r.audit().unwrap();
    r.squash_after(b.seq - 1);
    r.audit().unwrap();
    for s in 0..b.seq {
        r.commit(s);
    }
    r.audit().unwrap();
}

#[test]
fn each_corruption_kind_is_detected() {
    for (kind, needle) in [
        (CorruptKind::LeakPreg, "leak"),
        (CorruptKind::StaleVersionTag, "stale version"),
        (CorruptKind::RefcountOffByOne, "mapping count"),
    ] {
        let mut r = renamer();
        r.audit().unwrap();
        r.corrupt(kind);
        let err = r.audit().unwrap_err();
        assert!(err.contains(needle), "{kind:?} diagnostic was: {err}");
    }
}

#[test]
fn fig12_accounting_accumulates() {
    let mut r = renamer();
    let (_a, b) = train_and_reuse(&mut r);
    for s in 0..=b.seq {
        r.commit(s);
    }
    let li = Inst::ri(Opcode::Li, reg::x(1), 9);
    r.rename(b.seq + 1, 100, &li).unwrap();
    r.commit(b.seq + 1);
    assert!(r.predictor().stats().total() >= 1);
}
