//! Property-based tests for the core renaming structures.

use proptest::prelude::*;
use regshare_core::{
    BankConfig, FreeList, PhysReg, Prt, RegFile, Renamer, RenamerConfig, ReuseRenamer,
};
use regshare_isa::{reg, Inst, Opcode};
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing a version chain and recovering to any earlier version
    /// always returns exactly the value that version produced.
    #[test]
    fn regfile_chain_then_recover_returns_exact_values(
        values in prop::collection::vec(any::<u64>(), 1..8),
        recover_to in 0usize..8,
    ) {
        let depth = values.len() - 1; // versions 0..=depth
        let mut sizes = vec![0usize; depth + 1];
        sizes[depth] = 1; // one register with `depth` shadow cells
        if depth == 0 {
            sizes[0] = 1;
        }
        let banks = BankConfig::new(sizes);
        let mut rf = RegFile::new(&banks);
        let p = PhysReg(0);
        for (v, bits) in values.iter().enumerate() {
            rf.write(p, v as u8, *bits);
        }
        // Every version is still readable.
        for (v, bits) in values.iter().enumerate() {
            prop_assert_eq!(rf.read_version(p, v as u8), *bits);
        }
        // Recovering to an arbitrary earlier version restores its value.
        let target = recover_to.min(values.len() - 1);
        rf.recover(p, target as u8);
        prop_assert_eq!(rf.read_current(p), values[target]);
    }

    /// Random alloc/free interleavings never hand out a register twice
    /// and conserve the total.
    #[test]
    fn free_list_never_double_allocates(
        ops in prop::collection::vec((any::<bool>(), 0u8..4), 1..200),
        sizes in (1usize..10, 0usize..10, 0usize..10, 0usize..10),
    ) {
        let banks = BankConfig::new(vec![sizes.0, sizes.1, sizes.2, sizes.3]);
        let total = banks.total();
        let mut fl = FreeList::new(&banks);
        let mut held: Vec<PhysReg> = Vec::new();
        let mut held_set: HashSet<PhysReg> = HashSet::new();
        for (alloc, bank) in ops {
            if alloc {
                if let Some(p) = fl.alloc(bank) {
                    prop_assert!(held_set.insert(p), "double allocation of {p}");
                    held.push(p);
                }
            } else if let Some(p) = held.pop() {
                held_set.remove(&p);
                fl.free(p, &banks);
            }
            prop_assert_eq!(fl.free_total() + held.len(), total);
        }
    }

    /// Bump/rollback on the PRT is an exact inverse.
    #[test]
    fn prt_bump_rollback_roundtrip(
        bumps in 1u8..=7,
        max_version in 1u8..=7,
    ) {
        let mut prt = Prt::new(4, max_version);
        let p = PhysReg(2);
        let mut trail = Vec::new();
        for _ in 0..bumps {
            if !prt.can_bump(p) {
                break;
            }
            let before = prt.entry(p);
            prt.mark_read(p);
            let read_before_bump = prt.entry(p).read;
            let v = prt.bump(p);
            trail.push((before.counter, read_before_bump, v));
        }
        for (counter, read, _v) in trail.into_iter().rev() {
            prt.rollback(p, counter, read);
            // read bit restored by the caller's read-mark undo; rollback
            // itself restores what it is told.
            prt.set_read(p, false);
            prop_assert_eq!(prt.entry(p).counter, counter);
        }
        prop_assert_eq!(prt.entry(p).counter, 0);
    }

    /// Post-increment renames (dual destination) keep the free-register
    /// conservation invariant under random commit/squash interleavings.
    #[test]
    fn dual_destination_renames_conserve_registers(
        ops in prop::collection::vec((0u8..3, 0u8..8), 1..120),
    ) {
        let mut r = ReuseRenamer::new(RenamerConfig::small_test());
        let total = 40; // small_test: 34/2/2/2
        let mut in_flight: Vec<u64> = Vec::new();
        let mut next_seq = 1u64;
        let mut pc = 0u64;
        for (kind, n) in ops {
            match kind {
                0 => {
                    // ld.post xd, [xb], 8 with xd != xb.
                    let xd = reg::x(n % 8);
                    let xb = reg::x(8 + n % 8);
                    let inst = Inst::load_post(Opcode::LdPost, xd, xb, 8);
                    pc += 1;
                    if let Some(uops) = r.rename(next_seq, pc, &inst) {
                        for u in &uops {
                            in_flight.push(u.seq);
                        }
                        next_seq += uops.len() as u64;
                    }
                }
                1 => {
                    if !in_flight.is_empty() {
                        let seq = in_flight.remove(0);
                        r.commit(seq);
                    }
                }
                _ => {
                    let keep = in_flight.len() / 2;
                    let boundary = if keep == 0 {
                        in_flight.first().map(|s| s - 1).unwrap_or(0)
                    } else {
                        in_flight[keep - 1]
                    };
                    r.squash_after(boundary);
                    in_flight.truncate(keep);
                }
            }
            let free = r.free_regs(regshare_isa::RegClass::Int);
            let in_use: usize = r
                .in_use_per_bank(regshare_isa::RegClass::Int)
                .iter()
                .sum();
            prop_assert_eq!(free + in_use, total);
        }
    }
}

#[test]
fn post_increment_rename_reuses_base_register() {
    // After predictor training, `ld.post xd, [xb], 8` keeps xb's chain in
    // one physical register (safe reuse of the base).
    let mut r = ReuseRenamer::new(RenamerConfig::small_test());
    let inst = Inst::load_post(Opcode::LdPost, reg::x(1), reg::x(2), 8);
    let mut seq = 1u64;
    let mut last_dst2 = None;
    let mut reused_any = false;
    for i in 0..8 {
        let uops = r.rename(seq, 7, &inst).expect("plenty of registers");
        let main = uops.last().expect("main uop");
        let d2 = main.dst2.expect("post-increment has a writeback tag");
        if let Some(prev) = last_dst2 {
            let prev: regshare_core::TaggedReg = prev;
            if d2.preg == prev.preg && d2.version == prev.version + 1 {
                reused_any = true;
            }
        }
        last_dst2 = Some(d2);
        for u in &uops {
            seq = u.seq + 1;
        }
        for u in &uops {
            r.commit(u.seq);
        }
        let _ = i;
    }
    assert!(reused_any, "base-register chain never shared a register");
    assert!(r.stats().safe_reuses >= 1);
}

#[test]
fn post_increment_store_renames_only_the_base() {
    let mut r = ReuseRenamer::new(RenamerConfig::small_test());
    let inst = Inst::store_post(Opcode::StPost, reg::x(1), reg::x(2), 8);
    let uops = r.rename(1, 0, &inst).expect("rename");
    let main = uops.last().expect("main uop");
    assert!(main.dst.is_none());
    assert!(main.dst2.is_some());
}
