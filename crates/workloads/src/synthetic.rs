//! Synthetic program generation with controllable dataflow statistics.
//!
//! The hand-written kernels have *fixed* single-use ratios; the synthetic
//! generator dials the ratio directly, which the sensitivity studies and
//! the property-based tests both need. It is also the random-program
//! source for the fuzz oracle tests: every generated program is valid by
//! construction (bounded memory, forward-only internal branches, a
//! terminating outer loop).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regshare_isa::{reg, Asm, DataBuilder, Program};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Instructions in the loop body.
    pub body: usize,
    /// Outer-loop iterations.
    pub iterations: u64,
    /// Probability that an instruction extends a single-use chain
    /// (redefining its own single-use source) — the knob behind Fig. 1.
    pub single_use_bias: f64,
    /// Fraction of floating-point instructions.
    pub fp_fraction: f64,
    /// Fraction of memory instructions (split evenly loads/stores).
    pub mem_fraction: f64,
    /// Fraction of short forward conditional branches.
    pub branch_fraction: f64,
    /// RNG seed (the same seed always yields the same program).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            body: 100,
            iterations: 50,
            single_use_bias: 0.5,
            fp_fraction: 0.3,
            mem_fraction: 0.15,
            branch_fraction: 0.1,
            seed: 1,
        }
    }
}

/// Generates a synthetic program under the given configuration.
///
/// Register conventions: `x20`–`x23` / `f20`–`f23` hold long-lived shared
/// values (multi-consumer); `x1`–`x8` / `f1`–`f8` carry single-use chains;
/// `x28` is the scratch-memory base and `x27` the loop counter.
pub fn generate(config: SyntheticConfig) -> Program {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut d = DataBuilder::new(0x2_0000);
    let scratch = d.zeros(4096) as i64;
    let mut a = Asm::with_data(d);

    // Shared (multi-use) values.
    for i in 0..4 {
        a.li(reg::x(20 + i), rng.gen_range(1..100));
        a.fli(reg::f(20 + i), rng.gen_range(0.5..2.0));
    }
    // Seed the single-use chain registers so no instruction reads a
    // register that was never written (the static linter's UninitRead
    // check holds on every generated program).
    for i in 1..=8 {
        a.li(reg::x(i), i as i64);
        a.fli(reg::f(i), 1.0 + i as f64 / 8.0);
    }
    a.li(reg::x(28), scratch);
    a.li(reg::x(27), config.iterations as i64);
    let top = a.label();
    a.bind(top);

    let mut chain_int: u8 = 1; // rotates over x1..x8
    let mut chain_fp: u8 = 1;
    for _ in 0..config.body {
        let r: f64 = rng.gen();
        if r < config.mem_fraction {
            let offset = rng.gen_range(0..512) * 8;
            if rng.gen_bool(0.5) {
                a.ld(reg::x(rng.gen_range(9..16)), reg::x(28), offset);
            } else {
                a.st(reg::x(20 + rng.gen_range(0..4)), reg::x(28), offset);
            }
        } else if r < config.mem_fraction + config.branch_fraction {
            // Forward branch over one filler instruction.
            let skip = a.label();
            let cmp = 20 + rng.gen_range(0..4u8);
            if rng.gen_bool(0.5) {
                a.beq(reg::x(cmp), reg::x(20 + rng.gen_range(0..4)), skip);
            } else {
                a.bne(reg::x(cmp), reg::zero(), skip);
            }
            a.addi(reg::x(rng.gen_range(9..16)), reg::x(20), 1);
            a.bind(skip);
        } else {
            let fp = rng.gen_bool(config.fp_fraction);
            let single = rng.gen_bool(config.single_use_bias);
            if fp {
                let shared = reg::f(20 + rng.gen_range(0..4u8));
                if single {
                    let c = reg::f(chain_fp);
                    match rng.gen_range(0..3) {
                        0 => a.fadd(c, c, shared),
                        1 => a.fmul(c, c, shared),
                        _ => a.fma(c, c, shared, shared),
                    };
                    if rng.gen_bool(0.25) {
                        chain_fp = chain_fp % 8 + 1;
                    }
                } else {
                    let dst = reg::f(rng.gen_range(9..16u8));
                    let s2 = reg::f(20 + rng.gen_range(0..4u8));
                    match rng.gen_range(0..2) {
                        0 => a.fadd(dst, shared, s2),
                        _ => a.fmul(dst, shared, s2),
                    };
                }
            } else {
                let shared = reg::x(20 + rng.gen_range(0..4u8));
                if single {
                    let c = reg::x(chain_int);
                    match rng.gen_range(0..4) {
                        0 => a.add(c, c, shared),
                        1 => a.xor(c, c, shared),
                        2 => a.mul(c, c, shared),
                        _ => a.addi(c, c, rng.gen_range(-64..64)),
                    };
                    if rng.gen_bool(0.25) {
                        chain_int = chain_int % 8 + 1;
                    }
                } else {
                    let dst = reg::x(rng.gen_range(9..16u8));
                    let s2 = reg::x(20 + rng.gen_range(0..4u8));
                    match rng.gen_range(0..3) {
                        0 => a.add(dst, shared, s2),
                        1 => a.sub(dst, shared, s2),
                        _ => a.and(dst, shared, s2),
                    };
                }
            }
        }
    }
    a.subi(reg::x(27), reg::x(27), 1);
    a.bne(reg::x(27), reg::zero(), top);
    a.halt();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use regshare_isa::{Machine, StopReason};

    #[test]
    fn generated_programs_halt() {
        for seed in 0..5 {
            let p = generate(SyntheticConfig {
                seed,
                iterations: 10,
                ..Default::default()
            });
            let mut m = Machine::new(p);
            assert_eq!(m.run(1_000_000).unwrap(), StopReason::Halted, "seed {seed}");
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = generate(SyntheticConfig::default());
        let b = generate(SyntheticConfig::default());
        assert_eq!(a.insts().len(), b.insts().len());
        assert_eq!(a.disassemble(), b.disassemble());
    }

    #[test]
    fn single_use_bias_moves_the_fig1_metric() {
        let lo = generate(SyntheticConfig {
            single_use_bias: 0.05,
            seed: 7,
            iterations: 20,
            ..Default::default()
        });
        let hi = generate(SyntheticConfig {
            single_use_bias: 0.95,
            seed: 7,
            iterations: 20,
            ..Default::default()
        });
        let lo_frac = analysis::analyze(&lo, 100_000).single_use_fraction();
        let hi_frac = analysis::analyze(&hi, 100_000).single_use_fraction();
        assert!(
            hi_frac > lo_frac + 0.2,
            "bias should move single-use fraction: {lo_frac:.3} vs {hi_frac:.3}"
        );
    }
}
