//! Dataflow analysis over functional traces — the measurements behind the
//! paper's motivation figures.
//!
//! * [`analyze`] computes, for a dynamic trace, the single-consumer
//!   percentages of Fig. 1 and the consumer-count histogram of Fig. 2.
//! * [`reuse_potential`] computes Fig. 3: the fraction of
//!   destination-writing instructions that could reuse a register given a
//!   maximum chain length.

use regshare_isa::{ArchReg, DefSlot, Machine, Program, Retired};
use regshare_stats::Histogram;
use std::collections::HashMap;

/// A dynamic value: which trace index produced it, and through which
/// destination slot (post-increment ops produce two distinct values).
type ValueId = (usize, DefSlot);

/// Results of the Fig. 1 / Fig. 2 analysis.
///
/// Fig. 1 of the paper is the *producer-side* measurement its abstract
/// states: "for more than 50% of the instructions in SPECfp … that have a
/// destination register, the produced value has only a single consumer."
/// The redefining/non-redefining split records whether that single
/// consumer also redefines the producer's logical register (the
/// guaranteed-safe reuse case) or not (the case needing the single-use
/// predictor).
#[derive(Debug, Clone)]
pub struct DataflowProfile {
    /// Dynamic instructions analyzed.
    pub instructions: u64,
    /// Dynamic instructions writing a destination register.
    pub with_dest: u64,
    /// Producers whose value has exactly one consumer, and that consumer
    /// redefines the same logical register (Fig. 1, "redefining" bars).
    pub single_consumer_redefining: u64,
    /// Producers whose value has exactly one consumer writing a different
    /// logical register (Fig. 1, "non-redefining" bars).
    pub single_consumer_other: u64,
    /// Instructions (with a destination) that are themselves the sole
    /// consumer of at least one source value — the consumer-side view the
    /// renaming hardware acts on.
    pub sole_consumers: u64,
    /// Consumer count per produced value (Fig. 2); buckets 0..=6,
    /// overflow = "more than six".
    pub consumers: Histogram,
}

impl DataflowProfile {
    /// Fig. 1 total: fraction of destination-writing instructions whose
    /// value has exactly one consumer, in `[0, 1]`.
    pub fn single_use_fraction(&self) -> f64 {
        if self.with_dest == 0 {
            return 0.0;
        }
        (self.single_consumer_redefining + self.single_consumer_other) as f64
            / self.with_dest as f64
    }

    /// Fig. 1 "redefining" component, over destination-writing
    /// instructions.
    pub fn single_use_redefining_fraction(&self) -> f64 {
        if self.with_dest == 0 {
            return 0.0;
        }
        self.single_consumer_redefining as f64 / self.with_dest as f64
    }

    /// Fraction of instructions with a destination register (the paper's
    /// "more than 85% of the instructions require a physical register").
    pub fn dest_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.with_dest as f64 / self.instructions as f64
    }

    /// Fraction of produced values consumed exactly once (Fig. 2 "one
    /// use"), over values with at least one consumer.
    pub fn one_use_fraction(&self) -> f64 {
        let consumed: u64 = (1..=self.consumers.max_inline())
            .map(|v| self.consumers.count(v))
            .sum::<u64>()
            + self.consumers.overflow();
        if consumed == 0 {
            0.0
        } else {
            self.consumers.count(1) as f64 / consumed as f64
        }
    }
}

/// Runs a program functionally for up to `max_instructions` and analyzes
/// its dataflow (Figs. 1 and 2).
///
/// # Panics
///
/// Panics if the program faults on the functional machine.
pub fn analyze(program: &Program, max_instructions: u64) -> DataflowProfile {
    let mut machine = Machine::new(program.clone());
    let (trace, _) = machine
        .run_trace(max_instructions)
        .expect("analysis programs must execute cleanly");
    analyze_trace(&trace)
}

/// Analyzes an existing retired-instruction trace (Figs. 1 and 2).
///
/// Post-increment memory operations produce *two* values (the loaded data
/// and the written-back base); both are tracked as distinct values, and
/// `with_dest` counts destination registers (allocation events), so the
/// fractions stay meaningful for renaming.
pub fn analyze_trace(trace: &[Retired]) -> DataflowProfile {
    let mut producer_of: HashMap<ArchReg, ValueId> = HashMap::new();
    let mut consumers_of: HashMap<ValueId, u64> = HashMap::new();
    let mut first_consumer_redefines: HashMap<ValueId, bool> = HashMap::new();
    // For each instruction: the values it consumed.
    let mut consumed: Vec<Vec<ValueId>> = vec![Vec::new(); trace.len()];

    for (i, r) in trace.iter().enumerate() {
        // `uses()` yields one read per unique register per instruction —
        // exactly the consumption granularity Fig. 2 counts.
        for src in r.inst.uses() {
            if let Some(&p) = producer_of.get(&src) {
                let n = consumers_of.entry(p).or_insert(0);
                *n += 1;
                if *n == 1 {
                    let redefines = r.inst.defs().any(|(_, d)| d == src);
                    first_consumer_redefines.insert(p, redefines);
                }
                consumed[i].push(p);
            }
        }
        for (slot, d) in r.inst.defs() {
            producer_of.insert(d, (i, slot));
        }
    }

    let mut profile = DataflowProfile {
        instructions: trace.len() as u64,
        with_dest: 0,
        single_consumer_redefining: 0,
        single_consumer_other: 0,
        sole_consumers: 0,
        consumers: Histogram::new("consumers_per_value", 6),
    };

    for (i, r) in trace.iter().enumerate() {
        let record_value = |profile: &mut DataflowProfile, key: ValueId| {
            let n = consumers_of.get(&key).copied().unwrap_or(0);
            profile.consumers.record(n);
            if n == 1 {
                if first_consumer_redefines.get(&key).copied().unwrap_or(false) {
                    profile.single_consumer_redefining += 1;
                } else {
                    profile.single_consumer_other += 1;
                }
            }
        };
        let mut defines = false;
        for (slot, _) in r.inst.defs() {
            defines = true;
            profile.with_dest += 1;
            record_value(&mut profile, (i, slot));
        }
        // Consumer side: is this instruction the sole consumer of one of
        // its sources?
        if defines
            && consumed[i]
                .iter()
                .any(|p| consumers_of.get(p).copied().unwrap_or(0) == 1)
        {
            profile.sole_consumers += 1;
        }
    }
    profile
}

/// Fig. 3: fraction of destination-writing instructions that could avoid
/// a register allocation if each physical register may be reused up to
/// `max_chain` times (`u64::MAX` for unlimited).
///
/// The model is the paper's idealized limit study: an instruction reuses a
/// source's register when it is that value's only consumer and the chain
/// the value sits on has not reached `max_chain` reuses.
pub fn reuse_potential(program: &Program, max_instructions: u64, max_chain: u64) -> f64 {
    let mut machine = Machine::new(program.clone());
    let (trace, _) = machine
        .run_trace(max_instructions)
        .expect("analysis programs must execute cleanly");
    reuse_potential_trace(&trace, max_chain)
}

/// Trace-based variant of [`reuse_potential`].
///
/// Counts per destination register needed: an instruction with a primary
/// destination and a base writeback contributes two allocation events,
/// each independently reusable.
pub fn reuse_potential_trace(trace: &[Retired], max_chain: u64) -> f64 {
    // First pass: consumer counts per produced value.
    let mut producer_of: HashMap<ArchReg, ValueId> = HashMap::new();
    let mut consumers_of: HashMap<ValueId, u64> = HashMap::new();
    for (i, r) in trace.iter().enumerate() {
        for src in r.inst.uses() {
            if let Some(&p) = producer_of.get(&src) {
                *consumers_of.entry(p).or_insert(0) += 1;
            }
        }
        for (slot, d) in r.inst.defs() {
            producer_of.insert(d, (i, slot));
        }
    }

    // Second pass: walk the trace simulating ideal chains.
    producer_of.clear();
    let mut chain_pos: HashMap<ValueId, u64> = HashMap::new();
    let mut with_dest = 0u64;
    let mut reused = 0u64;
    for (i, r) in trace.iter().enumerate() {
        let dst2 = r.inst.dst2();
        if let Some(dst) = r.inst.dst() {
            with_dest += 1;
            for src in r.inst.uses() {
                if src.class() != dst.class() || dst2 == Some(src) {
                    continue; // the base belongs to the writeback's reuse
                }
                let Some(&p) = producer_of.get(&src) else {
                    continue;
                };
                let pos = chain_pos.get(&p).copied().unwrap_or(0);
                if consumers_of.get(&p).copied().unwrap_or(0) == 1 && pos < max_chain {
                    chain_pos.insert((i, DefSlot::Primary), pos + 1);
                    reused += 1;
                    break;
                }
            }
        }
        if let Some(d2) = dst2 {
            with_dest += 1;
            if let Some(&p) = producer_of.get(&d2) {
                let pos = chain_pos.get(&p).copied().unwrap_or(0);
                if consumers_of.get(&p).copied().unwrap_or(0) == 1 && pos < max_chain {
                    chain_pos.insert((i, DefSlot::Writeback), pos + 1);
                    reused += 1;
                }
            }
        }
        for (slot, d) in r.inst.defs() {
            producer_of.insert(d, (i, slot));
        }
    }
    if with_dest == 0 {
        0.0
    } else {
        reused as f64 / with_dest as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Asm};

    fn trace_of(a: Asm) -> Vec<Retired> {
        let mut m = Machine::new(a.assemble());
        m.run_trace(100_000).unwrap().0
    }

    #[test]
    fn single_use_chain_is_detected() {
        let mut a = Asm::new();
        a.li(reg::x(1), 1); // value consumed once (by the next addi)
        a.addi(reg::x(1), reg::x(1), 1); // sole consumer, redefining
        a.addi(reg::x(2), reg::x(1), 1); // sole consumer, NOT redefining
        a.halt();
        let p = analyze_trace(&trace_of(a));
        assert_eq!(p.single_consumer_redefining, 1); // li's value
        assert_eq!(p.single_consumer_other, 1); // first addi's value
        assert_eq!(p.sole_consumers, 2); // both addis
        assert_eq!(p.instructions, 4);
        assert_eq!(p.with_dest, 3);
        assert!((p.single_use_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multi_consumer_values_are_not_single_use() {
        let mut a = Asm::new();
        a.li(reg::x(1), 5);
        a.addi(reg::x(2), reg::x(1), 1); // consumer 1 of x1
        a.addi(reg::x(3), reg::x(1), 2); // consumer 2 of x1
        a.halt();
        let p = analyze_trace(&trace_of(a));
        assert_eq!(p.single_consumer_redefining + p.single_consumer_other, 0);
        assert_eq!(p.sole_consumers, 0);
        assert_eq!(p.consumers.count(2), 1); // x1's value: two consumers
    }

    #[test]
    fn consumer_histogram_counts_unique_reads() {
        let mut a = Asm::new();
        a.li(reg::x(1), 5);
        a.mul(reg::x(2), reg::x(1), reg::x(1)); // one consumer (unique read)
        a.halt();
        let p = analyze_trace(&trace_of(a));
        assert_eq!(p.consumers.count(1), 1);
    }

    #[test]
    fn reuse_potential_respects_chain_limit() {
        // A chain of 4 redefinitions of x1: with unlimited reuse, all 4
        // redefinitions reuse; with limit 1, alternate ones do.
        let mut a = Asm::new();
        a.li(reg::x(1), 0);
        for _ in 0..4 {
            a.addi(reg::x(1), reg::x(1), 1);
        }
        a.halt();
        let p = a.assemble();
        let unlimited = reuse_potential(&p, 100_000, u64::MAX);
        let limit1 = reuse_potential(&p, 100_000, 1);
        // 5 dest-writing instructions; 4 can reuse with no limit.
        assert!((unlimited - 4.0 / 5.0).abs() < 1e-9, "got {unlimited}");
        // With chain limit 1: reuse at positions 2 and 4 only.
        assert!((limit1 - 2.0 / 5.0).abs() < 1e-9, "got {limit1}");
    }

    #[test]
    fn reuse_potential_never_crosses_classes() {
        let mut a = Asm::new();
        a.li(reg::x(1), 5);
        a.cvt_i_f(reg::f(1), reg::x(1)); // sole consumer but fp dest
        a.halt();
        let p = a.assemble();
        assert_eq!(reuse_potential(&p, 1_000, u64::MAX), 0.0);
    }

    #[test]
    fn fractions_are_well_defined_on_empty_trace() {
        let p = analyze_trace(&[]);
        assert_eq!(p.single_use_fraction(), 0.0);
        assert_eq!(p.dest_fraction(), 0.0);
        assert_eq!(p.one_use_fraction(), 0.0);
    }
}
