//! Multimedia kernels (Mediabench-like): ADPCM speech coding and motion
//! estimation by sum-of-absolute-differences.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regshare_isa::{reg, Asm, DataBuilder, Program};

const SEED: u64 = 0xD1CE;

/// IMA ADPCM step-size table (standard 89 entries).
const STEP_TABLE: [u64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA index-adjust table (stored as two's-complement u64).
const INDEX_ADJUST: [i64; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// IMA ADPCM encoder over 32 samples per pass.
pub(super) fn adpcm(scale: u64) -> Program {
    let n = (scale / 32).clamp(32, 16_384) as i64;
    let per_pass = n as u64 * 32;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED);
    // A smooth-ish waveform with noise, as i64 two's complement.
    let mut samples = Vec::new();
    let mut v: i64 = 0;
    for _ in 0..n {
        v = (v + rng.gen_range(-800..800)).clamp(-30000, 30000);
        samples.push(v as u64);
    }
    let mut d = DataBuilder::new(0x1_0000);
    let input = d.u64_array(&samples) as i64;
    let steps = d.u64_array(&STEP_TABLE) as i64;
    let adjust = d.u64_array(&INDEX_ADJUST.map(|x| x as u64)) as i64;
    let out = d.zeros(n as u64) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(20), steps);
    a.li(reg::x(21), adjust);
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), input);
    a.li(reg::x(2), out);
    a.li(reg::x(3), n);
    a.li(reg::x(4), 0); // predictor
    a.li(reg::x(5), 0); // step index
    let top = a.label();
    a.bind(top);
    a.ld_post(reg::x(6), reg::x(1), 8); // sample
    a.slli(reg::x(7), reg::x(5), 3);
    a.add(reg::x(7), reg::x(7), reg::x(20));
    a.ld(reg::x(8), reg::x(7), 0); // step
    a.sub(reg::x(10), reg::x(6), reg::x(4)); // diff
    a.li(reg::x(11), 0); // code
    let positive = a.label();
    a.bge(reg::x(10), reg::zero(), positive);
    a.li(reg::x(11), 8);
    a.sub(reg::x(10), reg::zero(), reg::x(10));
    a.bind(positive);
    // Quantize against step, step/2, step/4.
    let b1 = a.label();
    a.blt(reg::x(10), reg::x(8), b1);
    a.ori(reg::x(11), reg::x(11), 4);
    a.sub(reg::x(10), reg::x(10), reg::x(8));
    a.bind(b1);
    a.srli(reg::x(12), reg::x(8), 1);
    let b2 = a.label();
    a.blt(reg::x(10), reg::x(12), b2);
    a.ori(reg::x(11), reg::x(11), 2);
    a.sub(reg::x(10), reg::x(10), reg::x(12));
    a.bind(b2);
    a.srli(reg::x(13), reg::x(8), 2);
    let b3 = a.label();
    a.blt(reg::x(10), reg::x(13), b3);
    a.ori(reg::x(11), reg::x(11), 1);
    a.bind(b3);
    // Reconstruct delta from the code bits.
    a.srli(reg::x(14), reg::x(8), 3); // delta = step>>3
    let r1 = a.label();
    a.andi(reg::x(15), reg::x(11), 4);
    a.beq(reg::x(15), reg::zero(), r1);
    a.add(reg::x(14), reg::x(14), reg::x(8));
    a.bind(r1);
    let r2 = a.label();
    a.andi(reg::x(15), reg::x(11), 2);
    a.beq(reg::x(15), reg::zero(), r2);
    a.add(reg::x(14), reg::x(14), reg::x(12));
    a.bind(r2);
    let r3 = a.label();
    a.andi(reg::x(15), reg::x(11), 1);
    a.beq(reg::x(15), reg::zero(), r3);
    a.add(reg::x(14), reg::x(14), reg::x(13));
    a.bind(r3);
    // predictor +/- delta, clamped to 16-bit range.
    let addp = a.label();
    let clamp = a.label();
    a.andi(reg::x(15), reg::x(11), 8);
    a.beq(reg::x(15), reg::zero(), addp);
    a.sub(reg::x(4), reg::x(4), reg::x(14));
    a.jmp(clamp);
    a.bind(addp);
    a.add(reg::x(4), reg::x(4), reg::x(14));
    a.bind(clamp);
    let chk_lo = a.label();
    let idx = a.label();
    a.li(reg::x(16), 32767);
    a.bge(reg::x(16), reg::x(4), chk_lo);
    a.mov(reg::x(4), reg::x(16));
    a.jmp(idx);
    a.bind(chk_lo);
    a.li(reg::x(16), -32768);
    a.bge(reg::x(4), reg::x(16), idx);
    a.mov(reg::x(4), reg::x(16));
    a.bind(idx);
    // Step index update, clamped to 0..=88.
    a.andi(reg::x(15), reg::x(11), 7);
    a.slli(reg::x(15), reg::x(15), 3);
    a.add(reg::x(15), reg::x(15), reg::x(21));
    a.ld(reg::x(17), reg::x(15), 0);
    a.add(reg::x(5), reg::x(5), reg::x(17));
    let c_lo = a.label();
    a.bge(reg::x(5), reg::zero(), c_lo);
    a.li(reg::x(5), 0);
    a.bind(c_lo);
    let c_hi = a.label();
    a.li(reg::x(18), 88);
    a.bge(reg::x(18), reg::x(5), c_hi);
    a.mov(reg::x(5), reg::x(18));
    a.bind(c_hi);
    a.stb(reg::x(11), reg::x(2), 0);
    a.addi(reg::x(2), reg::x(2), 1);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// 8×8 sum-of-absolute-differences motion search over a 3×3 candidate
/// window in a 10×10 reference area (branchless absolute value).
pub(super) fn sad(scale: u64) -> Program {
    const CANDS: i64 = 9;
    let per_pass = 4000u64; // nine 8×8 SADs are ~4.4k dynamic instructions
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 1);
    let cur: Vec<u8> = (0..64).map(|_| rng.gen()).collect();
    let refa: Vec<u8> = (0..100).map(|_| rng.gen()).collect();
    // Candidate start offsets into the 10x10 reference: dy*10 + dx.
    let offsets: Vec<u64> = (0..3)
        .flat_map(|dy| (0..3).map(move |dx| dy * 10 + dx))
        .collect();
    let mut d = DataBuilder::new(0x1_0000);
    let cur_base = d.bytes(&cur) as i64;
    let ref_base = d.bytes(&refa) as i64;
    d.align(8);
    let offs = d.u64_array(&offsets) as i64;
    let best_out = d.zeros(8) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), 0); // candidate index
    a.li(reg::x(15), i64::MAX); // best sad
    let cand = a.label();
    a.bind(cand);
    a.slli(reg::x(2), reg::x(1), 3);
    a.addi(reg::x(2), reg::x(2), offs);
    a.ld(reg::x(2), reg::x(2), 0); // offset
    a.addi(reg::x(3), reg::x(2), ref_base); // ref row pointer
    a.li(reg::x(4), cur_base); // cur row pointer
    a.li(reg::x(5), 8); // rows
    a.li(reg::x(14), 0); // sad accumulator
    let row = a.label();
    a.bind(row);
    for col in 0..8 {
        a.ldb(reg::x(6), reg::x(4), col);
        a.ldb(reg::x(7), reg::x(3), col);
        a.sub(reg::x(8), reg::x(6), reg::x(7));
        a.srai(reg::x(10), reg::x(8), 63); // mask = t >> 63
        a.xor(reg::x(8), reg::x(8), reg::x(10));
        a.sub(reg::x(8), reg::x(8), reg::x(10)); // |t|
        a.add(reg::x(14), reg::x(14), reg::x(8));
    }
    a.addi(reg::x(4), reg::x(4), 8);
    a.addi(reg::x(3), reg::x(3), 10);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), row);
    let not_better = a.label();
    a.bge(reg::x(14), reg::x(15), not_better);
    a.mov(reg::x(15), reg::x(14));
    a.bind(not_better);
    a.addi(reg::x(1), reg::x(1), 1);
    a.slti(reg::x(11), reg::x(1), CANDS);
    a.bne(reg::x(11), reg::zero(), cand);
    a.li(reg::x(12), best_out);
    a.st(reg::x(15), reg::x(12), 0);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}
