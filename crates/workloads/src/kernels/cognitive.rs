//! Cognitive-computing kernels: GMM acoustic scoring and a DNN MLP layer
//! (the machine-learning workloads the paper adds to SPEC and Mediabench).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regshare_isa::{reg, Asm, DataBuilder, Program};

const SEED: u64 = 0xACDC;

fn rand_f64s(rng: &mut SmallRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Gaussian mixture model log-likelihood scoring: 4 components × 16
/// dimensions per observation.
pub(super) fn gmm(scale: u64) -> Program {
    const D: i64 = 16; // dimensions
    let m = (scale / (D as u64 * 8)).clamp(4, 512) as i64; // components
    let per_pass = (m * D) as u64 * 8;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut d = DataBuilder::new(0x1_0000);
    let means = d.f64_array(&rand_f64s(&mut rng, (m * D) as usize, -2.0, 2.0)) as i64;
    let ivars = d.f64_array(&rand_f64s(&mut rng, (m * D) as usize, 0.1, 2.0)) as i64;
    let weights = d.f64_array(&rand_f64s(&mut rng, m as usize, -3.0, 0.0)) as i64;
    let obs = d.f64_array(&rand_f64s(&mut rng, D as usize, -2.0, 2.0)) as i64;
    let out = d.zeros(8) as i64;
    let mut a = Asm::with_data(d);

    a.fli(reg::f(10), -0.5);
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), means);
    a.li(reg::x(2), ivars);
    a.li(reg::x(3), weights);
    a.li(reg::x(5), m);
    a.fli(reg::f(0), 0.0); // total score
    let comp = a.label();
    a.bind(comp);
    a.li(reg::x(4), obs);
    a.li(reg::x(6), D);
    a.fli(reg::f(1), 0.0); // mahalanobis accumulator
    let dim = a.label();
    a.bind(dim);
    a.fld_post(reg::f(2), reg::x(4), 8); // x[d]
    a.fld_post(reg::f(3), reg::x(1), 8); // mean
    a.fld_post(reg::f(4), reg::x(2), 8); // inverse variance
    a.fsub(reg::f(5), reg::f(2), reg::f(3));
    a.fmul(reg::f(5), reg::f(5), reg::f(5));
    a.fma(reg::f(1), reg::f(5), reg::f(4), reg::f(1));
    a.subi(reg::x(6), reg::x(6), 1);
    a.bne(reg::x(6), reg::zero(), dim);
    // score += w[m] - 0.5 * mahalanobis
    a.fld(reg::f(6), reg::x(3), 0);
    a.fma(reg::f(6), reg::f(1), reg::f(10), reg::f(6));
    a.fadd(reg::f(0), reg::f(0), reg::f(6));
    a.addi(reg::x(3), reg::x(3), 8);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), comp);
    a.li(reg::x(7), out);
    a.fst(reg::f(0), reg::x(7), 0);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// One fully-connected DNN layer with ReLU: 16 outputs × 16 inputs.
pub(super) fn dnn(scale: u64) -> Program {
    let n = ((scale as f64 / 8.0).sqrt() as u64).clamp(16, 128) as i64; // square layer
    let (in_n, out_n) = (n, n);
    let per_pass = (in_n * out_n) as u64 * 8;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 1);
    let mut d = DataBuilder::new(0x1_0000);
    let weights = d.f64_array(&rand_f64s(&mut rng, (in_n * out_n) as usize, -1.0, 1.0)) as i64;
    let bias = d.f64_array(&rand_f64s(&mut rng, out_n as usize, -0.5, 0.5)) as i64;
    let input = d.f64_array(&rand_f64s(&mut rng, in_n as usize, -1.0, 1.0)) as i64;
    let output = d.zeros(8 * out_n as u64) as i64;
    let mut a = Asm::with_data(d);

    a.fli(reg::f(10), 0.0); // for relu
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), weights);
    a.li(reg::x(2), bias);
    a.li(reg::x(3), output);
    a.li(reg::x(5), out_n);
    let neuron = a.label();
    a.bind(neuron);
    a.fld_post(reg::f(0), reg::x(2), 8); // acc = bias[j]
    a.li(reg::x(4), input);
    a.li(reg::x(6), in_n);
    let macloop = a.label();
    a.bind(macloop);
    a.fld_post(reg::f(1), reg::x(1), 8);
    a.fld_post(reg::f(2), reg::x(4), 8);
    a.fma(reg::f(0), reg::f(1), reg::f(2), reg::f(0));
    a.subi(reg::x(6), reg::x(6), 1);
    a.bne(reg::x(6), reg::zero(), macloop);
    a.fmax(reg::f(0), reg::f(0), reg::f(10)); // ReLU
    a.fst_post(reg::f(0), reg::x(3), 8);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), neuron);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}
