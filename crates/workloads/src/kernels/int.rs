//! Integer kernels (SPECint-like): branchy control flow, pointer chasing,
//! hashing, bit manipulation — fewer single-use values than the FP suite.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use regshare_isa::{reg, Asm, DataBuilder, Program};

const SEED: u64 = 0xBEEF;
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Insertion sort of a 24-element array, restored from a pristine copy
/// each pass (data-dependent inner-loop branches).
pub(super) fn sort(scale: u64) -> Program {
    const N: i64 = 24;
    let per_pass = (N * N) as u64 * 3;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut d = DataBuilder::new(0x1_0000);
    let pristine: Vec<u64> = (0..N).map(|_| rng.gen_range(0..1000)).collect();
    let src = d.u64_array(&pristine) as i64;
    let work = d.zeros(8 * N as u64) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    // Copy pristine -> work.
    a.li(reg::x(1), src);
    a.li(reg::x(2), work);
    a.li(reg::x(3), N);
    let copy = a.label();
    a.bind(copy);
    a.ld_post(reg::x(4), reg::x(1), 8);
    a.st_post(reg::x(4), reg::x(2), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), copy);
    // Insertion sort.
    a.li(reg::x(2), work);
    a.li(reg::x(5), 1); // i
    let iloop = a.label();
    let jloop = a.label();
    let insert = a.label();
    a.bind(iloop);
    a.slli(reg::x(6), reg::x(5), 3);
    a.add(reg::x(6), reg::x(6), reg::x(2));
    a.ld(reg::x(7), reg::x(6), 0); // key
    a.subi(reg::x(8), reg::x(5), 1); // j
    a.bind(jloop);
    a.blt(reg::x(8), reg::zero(), insert);
    a.slli(reg::x(10), reg::x(8), 3);
    a.add(reg::x(10), reg::x(10), reg::x(2));
    a.ld(reg::x(11), reg::x(10), 0); // work[j]
    a.bge(reg::x(7), reg::x(11), insert);
    a.st(reg::x(11), reg::x(10), 8); // work[j+1] = work[j]
    a.subi(reg::x(8), reg::x(8), 1);
    a.jmp(jloop);
    a.bind(insert);
    a.addi(reg::x(12), reg::x(8), 1);
    a.slli(reg::x(12), reg::x(12), 3);
    a.add(reg::x(12), reg::x(12), reg::x(2));
    a.st(reg::x(7), reg::x(12), 0);
    a.addi(reg::x(5), reg::x(5), 1);
    a.slti(reg::x(13), reg::x(5), N);
    a.bne(reg::x(13), reg::zero(), iloop);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Probes a 256-slot open-addressing hash table with 48 present keys.
pub(super) fn hashjoin(scale: u64) -> Program {
    let slots: usize = ((scale / 4).next_power_of_two() as usize).clamp(256, 65_536);
    let probes = (slots / 4) as i64;
    let per_pass = probes as u64 * 16;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 1);

    // Build the table host-side with the same hash the kernel uses.
    let shift = 64 - slots.trailing_zeros();
    let mut keys: Vec<u64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while keys.len() < probes as usize {
        let k = rng.gen_range(1..u64::MAX);
        if seen.insert(k) {
            keys.push(k);
        }
    }
    let mut table = vec![(0u64, 0u64); slots];
    for (i, &k) in keys.iter().enumerate() {
        let mut h = (k.wrapping_mul(GOLDEN) >> shift) as usize;
        while table[h].0 != 0 {
            h = (h + 1) % slots;
        }
        table[h] = (k, 10 + i as u64);
    }
    let flat: Vec<u64> = table.iter().flat_map(|(k, v)| [*k, *v]).collect();

    let mut d = DataBuilder::new(0x1_0000);
    let table_base = d.u64_array(&flat) as i64;
    let mut probe_keys = keys.clone();
    probe_keys.shuffle(&mut rng);
    let probe_base = d.u64_array(&probe_keys) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(20), table_base);
    a.li(reg::x(21), GOLDEN as i64);
    a.li(reg::x(10), 0); // join-sum accumulator
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), probe_base);
    a.li(reg::x(2), probes);
    let top = a.label();
    let probe = a.label();
    let found = a.label();
    a.bind(top);
    a.ld_post(reg::x(3), reg::x(1), 8); // key
    a.mul(reg::x(5), reg::x(3), reg::x(21));
    a.srli(reg::x(5), reg::x(5), shift as i64); // slot index
    a.bind(probe);
    a.slli(reg::x(6), reg::x(5), 4);
    a.add(reg::x(6), reg::x(6), reg::x(20));
    a.ld(reg::x(7), reg::x(6), 0); // slot key
    a.beq(reg::x(7), reg::x(3), found);
    a.addi(reg::x(5), reg::x(5), 1);
    a.andi(reg::x(5), reg::x(5), (slots - 1) as i64);
    a.jmp(probe);
    a.bind(found);
    a.ld(reg::x(8), reg::x(6), 8); // value
    a.add(reg::x(10), reg::x(10), reg::x(8));
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Pointer chase through a 64-node shuffled linked list (mcf-like:
/// latency-bound, serial loads).
pub(super) fn pchase(scale: u64) -> Program {
    let nodes: usize = ((scale / 6) as usize).clamp(64, 65_536);
    let steps = nodes as i64;
    let per_pass = steps as u64 * 6;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 2);

    // Single-cycle permutation so the walk never terminates early.
    let mut order: Vec<usize> = (1..nodes).collect();
    order.shuffle(&mut rng);
    let mut next = vec![0usize; nodes];
    let mut cur = 0usize;
    for &n in &order {
        next[cur] = n;
        cur = n;
    }
    next[cur] = 0;

    let base = 0x1_0000u64;
    let mut d = DataBuilder::new(base);
    // Node layout: [next_ptr, value] × NODES.
    let flat: Vec<u64> = (0..nodes)
        .flat_map(|i| [base + (next[i] as u64) * 16, rng.gen_range(0..100)])
        .collect();
    let node_base = d.u64_array(&flat) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(4), 0); // value-sum accumulator
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), node_base);
    a.li(reg::x(2), steps);
    let top = a.label();
    a.bind(top);
    a.ld(reg::x(3), reg::x(1), 8); // value
    a.add(reg::x(4), reg::x(4), reg::x(3));
    a.ld(reg::x(1), reg::x(1), 0); // next
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Bitwise CRC-32 over a 16-byte buffer (serial shift/xor with a
/// data-dependent branch per bit).
pub(super) fn crc32(scale: u64) -> Program {
    let len = (scale / 55).clamp(16, 4096) as i64;
    let per_pass = len as u64 * 55;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 3);
    let buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    let mut d = DataBuilder::new(0x1_0000);
    let data = d.bytes(&buf) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(20), 0xEDB8_8320);
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), data);
    a.li(reg::x(2), len);
    a.li(reg::x(3), 0xFFFF_FFFF);
    let byte_loop = a.label();
    let bit_loop = a.label();
    let no_xor = a.label();
    a.bind(byte_loop);
    a.ldb(reg::x(4), reg::x(1), 0);
    a.xor(reg::x(3), reg::x(3), reg::x(4));
    a.li(reg::x(5), 8);
    a.bind(bit_loop);
    a.andi(reg::x(6), reg::x(3), 1);
    a.srli(reg::x(3), reg::x(3), 1);
    a.beq(reg::x(6), reg::zero(), no_xor);
    a.xor(reg::x(3), reg::x(3), reg::x(20));
    a.bind(no_xor);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), bit_loop);
    a.addi(reg::x(1), reg::x(1), 1);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), byte_loop);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Run-length encodes a 128-byte buffer with bursty runs (bzip2-ish
/// branch behavior).
pub(super) fn rle(scale: u64) -> Program {
    let len = (scale / 8).clamp(128, 32_768) as i64;
    let per_pass = len as u64 * 8;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 4);
    let mut buf = Vec::new();
    while buf.len() < len as usize {
        let b: u8 = rng.gen_range(b'a'..=b'f');
        let run = rng.gen_range(1..7usize).min(len as usize - buf.len());
        buf.extend(std::iter::repeat_n(b, run));
    }
    let mut d = DataBuilder::new(0x1_0000);
    let data = d.bytes(&buf) as i64;
    let out = d.zeros(2 * len as u64 + 2) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), data + 1);
    a.li(reg::x(2), len - 1);
    a.li(reg::x(3), out);
    a.ldb(reg::x(4), reg::x(1), -1); // prev
    a.li(reg::x(5), 1); // run length
    let top = a.label();
    let same = a.label();
    let next = a.label();
    a.bind(top);
    a.ldb(reg::x(6), reg::x(1), 0);
    a.beq(reg::x(6), reg::x(4), same);
    a.stb(reg::x(4), reg::x(3), 0);
    a.stb(reg::x(5), reg::x(3), 1);
    a.addi(reg::x(3), reg::x(3), 2);
    a.mov(reg::x(4), reg::x(6));
    a.li(reg::x(5), 1);
    a.jmp(next);
    a.bind(same);
    a.addi(reg::x(5), reg::x(5), 1);
    a.bind(next);
    a.addi(reg::x(1), reg::x(1), 1);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), top);
    // Flush the final run.
    a.stb(reg::x(4), reg::x(3), 0);
    a.stb(reg::x(5), reg::x(3), 1);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Population count of 16 words with Kernighan's loop (data-dependent
/// iteration counts).
pub(super) fn bitcount(scale: u64) -> Program {
    let words_n = (scale / 130).clamp(16, 8192) as i64;
    let per_pass = words_n as u64 * 130;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 5);
    let words: Vec<u64> = (0..words_n).map(|_| rng.gen()).collect();
    let mut d = DataBuilder::new(0x1_0000);
    let data = d.u64_array(&words) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), data);
    a.li(reg::x(2), words_n);
    a.li(reg::x(6), 0); // total
    let word_loop = a.label();
    let bit_loop = a.label();
    let done_word = a.label();
    a.bind(word_loop);
    a.ld_post(reg::x(4), reg::x(1), 8);
    a.bind(bit_loop);
    a.beq(reg::x(4), reg::zero(), done_word);
    a.subi(reg::x(5), reg::x(4), 1);
    a.and(reg::x(4), reg::x(4), reg::x(5));
    a.addi(reg::x(6), reg::x(6), 1);
    a.jmp(bit_loop);
    a.bind(done_word);
    a.subi(reg::x(2), reg::x(2), 1);
    a.bne(reg::x(2), reg::zero(), word_loop);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}
