//! The kernel suites.

mod cognitive;
mod fp;
mod int;
mod media;

use crate::{Kernel, Suite};

/// All kernels in presentation order.
pub(crate) fn all() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "saxpy",
            suite: Suite::Fp,
            build: fp::saxpy,
        },
        Kernel {
            name: "fir",
            suite: Suite::Fp,
            build: fp::fir,
        },
        Kernel {
            name: "dct",
            suite: Suite::Fp,
            build: fp::dct,
        },
        Kernel {
            name: "matmul",
            suite: Suite::Fp,
            build: fp::matmul,
        },
        Kernel {
            name: "horner",
            suite: Suite::Fp,
            build: fp::horner,
        },
        Kernel {
            name: "stencil",
            suite: Suite::Fp,
            build: fp::stencil,
        },
        Kernel {
            name: "options",
            suite: Suite::Fp,
            build: fp::options,
        },
        Kernel {
            name: "fft",
            suite: Suite::Fp,
            build: fp::fft,
        },
        Kernel {
            name: "sort",
            suite: Suite::Int,
            build: int::sort,
        },
        Kernel {
            name: "hashjoin",
            suite: Suite::Int,
            build: int::hashjoin,
        },
        Kernel {
            name: "pchase",
            suite: Suite::Int,
            build: int::pchase,
        },
        Kernel {
            name: "crc32",
            suite: Suite::Int,
            build: int::crc32,
        },
        Kernel {
            name: "rle",
            suite: Suite::Int,
            build: int::rle,
        },
        Kernel {
            name: "bitcount",
            suite: Suite::Int,
            build: int::bitcount,
        },
        Kernel {
            name: "adpcm",
            suite: Suite::Media,
            build: media::adpcm,
        },
        Kernel {
            name: "sad",
            suite: Suite::Media,
            build: media::sad,
        },
        Kernel {
            name: "gmm",
            suite: Suite::Cognitive,
            build: cognitive::gmm,
        },
        Kernel {
            name: "dnn",
            suite: Suite::Cognitive,
            build: cognitive::dnn,
        },
    ]
}
