//! Floating-point numeric kernels (SPECfp-like): long single-use
//! dependence chains, FMA-heavy inner loops, streaming memory access.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use regshare_isa::{reg, Asm, DataBuilder, Program};

const SEED: u64 = 0xC0FFEE;

fn rand_f64s(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect()
}

/// `y[i] += a * x[i]` over a 64-element vector, repeated to scale.
pub(super) fn saxpy(scale: u64) -> Program {
    let n = (scale / 9).clamp(64, 65_536) as i64;
    let passes = (scale / (n as u64 * 8)).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut d = DataBuilder::new(0x1_0000);
    let x = d.f64_array(&rand_f64s(&mut rng, n as usize)) as i64;
    let y = d.f64_array(&rand_f64s(&mut rng, n as usize)) as i64;
    let mut a = Asm::with_data(d);

    a.fli(reg::f(0), 2.5); // a
    a.li(reg::x(4), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), x);
    a.li(reg::x(2), y);
    a.li(reg::x(3), n);
    let top = a.label();
    a.bind(top);
    a.fld_post(reg::f(1), reg::x(1), 8);
    a.fld(reg::f(2), reg::x(2), 0);
    a.fma(reg::f(2), reg::f(1), reg::f(0), reg::f(2));
    a.fst_post(reg::f(2), reg::x(2), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.subi(reg::x(4), reg::x(4), 1);
    a.bne(reg::x(4), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// 8-tap FIR filter over a 40-sample signal (32 outputs per pass).
pub(super) fn fir(scale: u64) -> Program {
    const TAPS: i64 = 8;
    let outs = (scale / 22).clamp(32, 32_768) as i64;
    let passes = (scale / (outs as u64 * 22)).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 1);
    let mut d = DataBuilder::new(0x1_0000);
    let signal = d.f64_array(&rand_f64s(&mut rng, (outs + TAPS) as usize)) as i64;
    let coefs = d.f64_array(&rand_f64s(&mut rng, TAPS as usize)) as i64;
    let out = d.zeros(8 * outs as u64) as i64;
    let mut a = Asm::with_data(d);

    // Keep the eight coefficients resident in f8..f15.
    a.li(reg::x(1), coefs);
    for k in 0..TAPS {
        a.fld(reg::f(8 + k as u8), reg::x(1), 8 * k);
    }
    a.li(reg::x(5), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), signal);
    a.li(reg::x(2), out);
    a.li(reg::x(3), outs);
    let top = a.label();
    a.bind(top);
    a.fli(reg::f(0), 0.0);
    for k in 0..TAPS {
        a.fld(reg::f(1), reg::x(1), 8 * k);
        a.fma(reg::f(0), reg::f(1), reg::f(8 + k as u8), reg::f(0));
    }
    a.fst_post(reg::f(0), reg::x(2), 8);
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Naive 8-point DCT-II applied to the rows of an 8×8 block.
pub(super) fn dct(scale: u64) -> Program {
    const N: i64 = 8;
    let per_block = (N * N) as u64 * 30; // ~2k dynamic instructions per 8×8 block
    let blocks = (scale / per_block).clamp(1, 256) as i64;
    let passes = (scale / (per_block * blocks as u64)).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 2);
    let mut d = DataBuilder::new(0x1_0000);
    let block = d.f64_array(&rand_f64s(&mut rng, (N * N * blocks) as usize)) as i64;
    // DCT basis table: cos((2x+1) u pi / 16).
    let mut basis = Vec::new();
    for u in 0..N {
        for x in 0..N {
            basis.push(((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos());
        }
    }
    let table = d.f64_array(&basis) as i64;
    let out = d.zeros((N * N * blocks * 8) as u64) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(10), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), block); // row pointer
    a.li(reg::x(4), out); // output pointer
    a.li(reg::x(5), N * blocks); // rows remaining (streams all blocks)
    let row = a.label();
    a.bind(row);
    a.li(reg::x(2), table); // basis row pointer
    a.li(reg::x(6), N); // u remaining
    let freq = a.label();
    a.bind(freq);
    a.fli(reg::f(0), 0.0);
    for xx in 0..N {
        a.fld(reg::f(1), reg::x(1), 8 * xx);
        a.fld(reg::f(2), reg::x(2), 8 * xx);
        a.fma(reg::f(0), reg::f(1), reg::f(2), reg::f(0));
    }
    a.fst_post(reg::f(0), reg::x(4), 8);
    a.addi(reg::x(2), reg::x(2), 8 * N);
    a.subi(reg::x(6), reg::x(6), 1);
    a.bne(reg::x(6), reg::zero(), freq);
    a.addi(reg::x(1), reg::x(1), 8 * N);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), row);
    a.subi(reg::x(10), reg::x(10), 1);
    a.bne(reg::x(10), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// 8×8×8 matrix multiply, `C = A·B`, with explicit address arithmetic.
pub(super) fn matmul(scale: u64) -> Program {
    const N: i64 = 8;
    let per_pass = 4000u64; // one 8×8×8 multiply is ~4.5k dynamic instructions
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 3);
    let mut d = DataBuilder::new(0x1_0000);
    let ma = d.f64_array(&rand_f64s(&mut rng, (N * N) as usize)) as i64;
    let mb = d.f64_array(&rand_f64s(&mut rng, (N * N) as usize)) as i64;
    let mc = d.zeros((N * N * 8) as u64) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(10), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), 0); // i
    let iloop = a.label();
    a.bind(iloop);
    a.li(reg::x(2), 0); // j
    let jloop = a.label();
    a.bind(jloop);
    a.fli(reg::f(0), 0.0);
    // a_row = ma + i*N*8 ; b_col = mb + j*8
    a.slli(reg::x(5), reg::x(1), 6); // i*64
    a.addi(reg::x(5), reg::x(5), ma); // &A[i][0]
    a.slli(reg::x(6), reg::x(2), 3);
    a.addi(reg::x(6), reg::x(6), mb); // &B[0][j]
    a.li(reg::x(3), N); // k
    let kloop = a.label();
    a.bind(kloop);
    a.fld_post(reg::f(1), reg::x(5), 8);
    a.fld_post(reg::f(2), reg::x(6), 8 * N);
    a.fma(reg::f(0), reg::f(1), reg::f(2), reg::f(0));
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), kloop);
    // C[i][j] = f0
    a.slli(reg::x(7), reg::x(1), 6);
    a.slli(reg::x(8), reg::x(2), 3);
    a.add(reg::x(7), reg::x(7), reg::x(8));
    a.addi(reg::x(7), reg::x(7), mc);
    a.fst(reg::f(0), reg::x(7), 0);
    a.addi(reg::x(2), reg::x(2), 1);
    a.slti(reg::x(9), reg::x(2), N);
    a.bne(reg::x(9), reg::zero(), jloop);
    a.addi(reg::x(1), reg::x(1), 1);
    a.slti(reg::x(9), reg::x(1), N);
    a.bne(reg::x(9), reg::zero(), iloop);
    a.subi(reg::x(10), reg::x(10), 1);
    a.bne(reg::x(10), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Degree-12 polynomial (Horner) on each element of a 32-vector: a pure
/// fma chain, the best case for register sharing.
pub(super) fn horner(scale: u64) -> Program {
    const DEG: i64 = 12;
    let n = (scale / 18).clamp(32, 32_768) as i64;
    let per_pass = (n * (DEG + 6)) as u64;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 4);
    let mut d = DataBuilder::new(0x1_0000);
    let xs = d.f64_array(&rand_f64s(&mut rng, n as usize)) as i64;
    let coefs = d.f64_array(&rand_f64s(&mut rng, (DEG + 1) as usize)) as i64;
    let out = d.zeros(8 * n as u64) as i64;
    let mut a = Asm::with_data(d);

    // Coefficients resident in f10..f22.
    a.li(reg::x(1), coefs);
    for k in 0..=DEG {
        a.fld(reg::f(10 + k as u8), reg::x(1), 8 * k);
    }
    a.li(reg::x(4), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), xs);
    a.li(reg::x(2), out);
    a.li(reg::x(3), n);
    let top = a.label();
    a.bind(top);
    a.fld_post(reg::f(1), reg::x(1), 8);
    a.fmov(reg::f(0), reg::f(22));
    for k in (0..DEG).rev() {
        a.fma(reg::f(0), reg::f(0), reg::f(1), reg::f(10 + k as u8));
    }
    a.fst_post(reg::f(0), reg::x(2), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.subi(reg::x(4), reg::x(4), 1);
    a.bne(reg::x(4), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Three-point 1-D stencil: `b[i] = 0.25 a[i-1] + 0.5 a[i] + 0.25 a[i+1]`.
pub(super) fn stencil(scale: u64) -> Program {
    let n = (scale / 11).clamp(64, 65_536) as i64;
    let per_pass = n as u64 * 11;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 5);
    let mut d = DataBuilder::new(0x1_0000);
    let src = d.f64_array(&rand_f64s(&mut rng, (n + 2) as usize)) as i64;
    let dst = d.zeros(8 * n as u64) as i64;
    let mut a = Asm::with_data(d);

    a.fli(reg::f(10), 0.25);
    a.fli(reg::f(11), 0.5);
    a.li(reg::x(4), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), src);
    a.li(reg::x(2), dst);
    a.li(reg::x(3), n);
    let top = a.label();
    a.bind(top);
    a.fld(reg::f(1), reg::x(1), 0);
    a.fld(reg::f(2), reg::x(1), 8);
    a.fld(reg::f(3), reg::x(1), 16);
    a.fmul(reg::f(1), reg::f(1), reg::f(10));
    a.fma(reg::f(1), reg::f(2), reg::f(11), reg::f(1));
    a.fma(reg::f(1), reg::f(3), reg::f(10), reg::f(1));
    a.fst_post(reg::f(1), reg::x(2), 8);
    a.addi(reg::x(1), reg::x(1), 8);
    a.subi(reg::x(3), reg::x(3), 1);
    a.bne(reg::x(3), reg::zero(), top);
    a.subi(reg::x(4), reg::x(4), 1);
    a.bne(reg::x(4), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// Black-Scholes-style option pricing: a deep expression tree per element
/// (divide, square root, exponential-style Horner polynomials) — the
/// compiler-temporary-heavy dataflow SPECfp is known for.
pub(super) fn options(scale: u64) -> Program {
    let n = (scale / 40).clamp(16, 8192) as i64;
    let per_pass = n as u64 * 40;
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 6);
    let spots: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..150.0)).collect();
    let strikes: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..150.0)).collect();
    let expiries: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
    let mut d = DataBuilder::new(0x1_0000);
    let s_base = d.f64_array(&spots) as i64;
    let k_base = d.f64_array(&strikes) as i64;
    let t_base = d.f64_array(&expiries) as i64;
    let out = d.zeros(8 * n as u64) as i64;
    let mut a = Asm::with_data(d);

    // Constants: volatility, rate, and a 6-term exp-style polynomial.
    a.fli(reg::f(20), 0.2); // sigma
    a.fli(reg::f(21), 0.05); // r
    a.fli(reg::f(22), 1.0);
    a.fli(reg::f(23), 0.5);
    a.fli(reg::f(24), 1.0 / 6.0);
    a.fli(reg::f(25), 1.0 / 24.0);
    a.fli(reg::f(26), 1.0 / 120.0);
    a.fli(reg::f(27), 0.3989422804014327); // 1/sqrt(2*pi)
    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    a.li(reg::x(1), s_base);
    a.li(reg::x(2), k_base);
    a.li(reg::x(3), t_base);
    a.li(reg::x(4), out);
    a.li(reg::x(5), n);
    let top = a.label();
    a.bind(top);
    a.fld_post(reg::f(1), reg::x(1), 8); // S
    a.fld_post(reg::f(2), reg::x(2), 8); // K
    a.fld_post(reg::f(3), reg::x(3), 8); // T
                                         // moneyness m = S/K - 1 (cheap stand-in for ln(S/K))
    a.fdiv(reg::f(4), reg::f(1), reg::f(2));
    a.fsub(reg::f(4), reg::f(4), reg::f(22));
    // vol term v = sigma * sqrt(T)
    a.fsqrt(reg::f(5), reg::f(3));
    a.fmul(reg::f(5), reg::f(5), reg::f(20));
    // d1 = (m + (r + sigma^2/2) T) / v
    a.fmul(reg::f(6), reg::f(20), reg::f(20));
    a.fmul(reg::f(6), reg::f(6), reg::f(23));
    a.fadd(reg::f(6), reg::f(6), reg::f(21));
    a.fma(reg::f(6), reg::f(6), reg::f(3), reg::f(4));
    a.fdiv(reg::f(6), reg::f(6), reg::f(5));
    // phi(d1) via a 5-term Taylor-ish polynomial of exp(-d1^2/2)
    a.fmul(reg::f(7), reg::f(6), reg::f(6));
    a.fmul(reg::f(7), reg::f(7), reg::f(23));
    a.fneg(reg::f(7), reg::f(7)); // u = -d1^2/2
    a.fmov(reg::f(8), reg::f(26));
    a.fma(reg::f(8), reg::f(8), reg::f(7), reg::f(25));
    a.fma(reg::f(8), reg::f(8), reg::f(7), reg::f(24));
    a.fma(reg::f(8), reg::f(8), reg::f(7), reg::f(23));
    a.fma(reg::f(8), reg::f(8), reg::f(7), reg::f(22));
    a.fma(reg::f(8), reg::f(8), reg::f(7), reg::f(22)); // ~exp(u)
    a.fmul(reg::f(8), reg::f(8), reg::f(27)); // ~phi(d1)
                                              // price ~ S * phi - K * phi * v (shape, not finance)
    a.fmul(reg::f(10), reg::f(1), reg::f(8));
    a.fmul(reg::f(11), reg::f(2), reg::f(8));
    a.fma(reg::f(10), reg::f(11), reg::f(5), reg::f(10));
    a.fst_post(reg::f(10), reg::x(4), 8);
    a.subi(reg::x(5), reg::x(5), 1);
    a.bne(reg::x(5), reg::zero(), top);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

/// In-place 32-point radix-2 FFT (decimation in time) over interleaved
/// real/imaginary arrays, restored from a bit-reversed pristine copy each
/// pass.
pub(super) fn fft(scale: u64) -> Program {
    const N: i64 = 32;
    const STAGES: i64 = 5;
    let per_pass = 2600u64; // measured: copy + 5 stages of 16 butterflies
    let passes = (scale / per_pass).max(1) as i64;
    let mut rng = SmallRng::seed_from_u64(SEED + 7);

    // Host side: input in bit-reversed order so the kernel's DIT loop is
    // the standard triple-nested form.
    let mut re = vec![0.0f64; N as usize];
    let mut im = vec![0.0f64; N as usize];
    for i in 0..N as usize {
        let rev = (i as u32).reverse_bits() >> (32 - STAGES as u32);
        re[rev as usize] = rng.gen_range(-1.0..1.0);
        im[rev as usize] = rng.gen_range(-1.0..1.0);
    }
    // Twiddles for the largest stage: w^j for j in 0..N/2, interleaved
    // (wr, wi); stage s uses every (N >> s)-th entry.
    let mut tw = Vec::new();
    for j in 0..(N / 2) {
        let ang = -2.0 * std::f64::consts::PI * j as f64 / N as f64;
        tw.push(ang.cos());
        tw.push(ang.sin());
    }

    let mut d = DataBuilder::new(0x1_0000);
    let pristine_re = d.f64_array(&re) as i64;
    let pristine_im = d.f64_array(&im) as i64;
    let tw_base = d.f64_array(&tw) as i64;
    let work_re = d.zeros(8 * N as u64) as i64;
    let work_im = d.zeros(8 * N as u64) as i64;
    let mut a = Asm::with_data(d);

    a.li(reg::x(9), passes);
    let outer = a.label();
    a.bind(outer);
    // Copy pristine -> work (both planes).
    for (src, dst) in [(pristine_re, work_re), (pristine_im, work_im)] {
        a.li(reg::x(1), src);
        a.li(reg::x(2), dst);
        a.li(reg::x(3), N);
        let copy = a.label();
        a.bind(copy);
        a.fld_post(reg::f(1), reg::x(1), 8);
        a.fst_post(reg::f(1), reg::x(2), 8);
        a.subi(reg::x(3), reg::x(3), 1);
        a.bne(reg::x(3), reg::zero(), copy);
    }
    // x10 = m (group size), starts at 2, doubles per stage.
    a.li(reg::x(10), 2);
    let stage = a.label();
    a.bind(stage);
    a.srli(reg::x(11), reg::x(10), 1); // half = m/2
                                       // twiddle stride in bytes: (N/m) entries * 16 = N*16/m
    a.li(reg::x(12), N * 16);
    a.udiv(reg::x(12), reg::x(12), reg::x(10));
    a.li(reg::x(13), 0); // k (group base index)
    let group = a.label();
    a.bind(group);
    a.li(reg::x(14), 0); // j within group
    a.li(reg::x(15), tw_base); // twiddle pointer
    let fly = a.label();
    a.bind(fly);
    // indices a = k + j, b = a + half  (byte offsets in x16/x17)
    a.add(reg::x(16), reg::x(13), reg::x(14));
    a.slli(reg::x(16), reg::x(16), 3);
    a.slli(reg::x(17), reg::x(11), 3);
    a.add(reg::x(17), reg::x(16), reg::x(17));
    // load twiddle (wr, wi)
    a.fld(reg::f(10), reg::x(15), 0);
    a.fld(reg::f(11), reg::x(15), 8);
    // load a and b (re/im)
    a.li(reg::x(18), work_re);
    a.add(reg::x(19), reg::x(18), reg::x(16));
    a.fld(reg::f(1), reg::x(19), 0); // ar
    a.add(reg::x(20), reg::x(18), reg::x(17));
    a.fld(reg::f(3), reg::x(20), 0); // br
    a.li(reg::x(18), work_im);
    a.add(reg::x(21), reg::x(18), reg::x(16));
    a.fld(reg::f(2), reg::x(21), 0); // ai
    a.add(reg::x(22), reg::x(18), reg::x(17));
    a.fld(reg::f(4), reg::x(22), 0); // bi
                                     // t = w * b (complex)
    a.fmul(reg::f(5), reg::f(10), reg::f(3));
    a.fmul(reg::f(6), reg::f(11), reg::f(4));
    a.fsub(reg::f(5), reg::f(5), reg::f(6)); // tr
    a.fmul(reg::f(6), reg::f(10), reg::f(4));
    a.fmul(reg::f(7), reg::f(11), reg::f(3));
    a.fadd(reg::f(6), reg::f(6), reg::f(7)); // ti
                                             // b = a - t ; a = a + t
    a.fsub(reg::f(8), reg::f(1), reg::f(5));
    a.fst(reg::f(8), reg::x(20), 0);
    a.fsub(reg::f(8), reg::f(2), reg::f(6));
    a.fst(reg::f(8), reg::x(22), 0);
    a.fadd(reg::f(8), reg::f(1), reg::f(5));
    a.fst(reg::f(8), reg::x(19), 0);
    a.fadd(reg::f(8), reg::f(2), reg::f(6));
    a.fst(reg::f(8), reg::x(21), 0);
    // next butterfly
    a.add(reg::x(15), reg::x(15), reg::x(12));
    a.addi(reg::x(14), reg::x(14), 1);
    a.blt(reg::x(14), reg::x(11), fly);
    // next group
    a.add(reg::x(13), reg::x(13), reg::x(10));
    a.li(reg::x(23), N);
    a.blt(reg::x(13), reg::x(23), group);
    // next stage
    a.slli(reg::x(10), reg::x(10), 1);
    a.li(reg::x(23), N * 2);
    a.blt(reg::x(10), reg::x(23), stage);
    a.subi(reg::x(9), reg::x(9), 1);
    a.bne(reg::x(9), reg::zero(), outer);
    a.halt();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::Machine;

    /// The FFT kernel's result must match a directly computed DFT.
    #[test]
    fn fft_matches_reference_dft() {
        let program = fft(1); // exactly one pass
        let mut m = Machine::new(program);
        m.run(1_000_000).expect("fft executes");
        assert!(m.is_halted());

        // Recompute the expected spectrum host-side from the same seed.
        const N: usize = 32;
        let mut rng = SmallRng::seed_from_u64(SEED + 7);
        let mut re = vec![0.0f64; N];
        let mut im = vec![0.0f64; N];
        for i in 0..N {
            let rev = (i as u32).reverse_bits() >> 27;
            re[rev as usize] = rng.gen_range(-1.0..1.0);
            im[rev as usize] = rng.gen_range(-1.0..1.0);
        }
        // `re`/`im` currently hold the bit-reversed layout the kernel
        // copies in; recover natural order for the reference DFT.
        let mut nat_re = vec![0.0f64; N];
        let mut nat_im = vec![0.0f64; N];
        for i in 0..N {
            let rev = ((i as u32).reverse_bits() >> 27) as usize;
            nat_re[i] = re[rev];
            nat_im[i] = im[rev];
        }
        // Memory layout of the kernel image (see `fft`):
        // pristine_re, pristine_im, twiddles (N/2 × 2), work_re, work_im.
        let work_re = 0x1_0000u64 + (N as u64) * 8 * 2 + (N as u64 / 2) * 16;
        let work_im = work_re + (N as u64) * 8;
        for k in 0..N {
            let (mut xr, mut xi) = (0.0f64, 0.0f64);
            for t in 0..N {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / N as f64;
                xr += nat_re[t] * ang.cos() - nat_im[t] * ang.sin();
                xi += nat_re[t] * ang.sin() + nat_im[t] * ang.cos();
            }
            let got_r = m.memory().read_f64(work_re + (k as u64) * 8);
            let got_i = m.memory().read_f64(work_im + (k as u64) * 8);
            assert!(
                (got_r - xr).abs() < 1e-9 && (got_i - xi).abs() < 1e-9,
                "bin {k}: expected ({xr:.6}, {xi:.6}), got ({got_r:.6}, {got_i:.6})"
            );
        }
    }

    /// The options kernel produces finite prices for every input.
    #[test]
    fn options_prices_are_finite() {
        let program = options(2_000);
        let mut m = Machine::new(program);
        m.run(1_000_000).expect("options executes");
        assert!(m.is_halted());
    }
}
