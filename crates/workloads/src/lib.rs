#![warn(missing_docs)]

//! Benchmark kernels and dataflow analysis for the `regshare` study.
//!
//! The paper evaluates on SPEC CPU2006, Mediabench and two cognitive
//! kernels (GMM scoring, DNN inference). Those binaries cannot be compiled
//! for the TRISC research ISA, so this crate provides **18 hand-written
//! kernels** in four suites whose register-dataflow shapes match the
//! classes the paper relies on:
//!
//! * [`Suite::Fp`] — numeric kernels (saxpy, fir, dct, matmul, horner,
//!   stencil, options pricing, fft) with long single-use dependence
//!   chains, standing in for SPECfp (> 50 % single-consumer values).
//! * [`Suite::Int`] — control/memory-heavy kernels (sort, hash join,
//!   pointer chase, crc32, rle, bitcount) standing in for SPECint
//!   (≈ 30 % single-consumer values).
//! * [`Suite::Media`] — adpcm and sum-of-absolute-differences kernels in
//!   the spirit of Mediabench.
//! * [`Suite::Cognitive`] — GMM scoring and a DNN MLP layer, the paper's
//!   added machine-learning workloads.
//!
//! [`analysis`] reproduces the paper's motivation measurements over the
//! functional traces of any program: single-consumer percentages (Fig. 1),
//! consumer-count histograms (Fig. 2) and reuse-chain potential (Fig. 3).
//!
//! # Examples
//!
//! ```
//! use regshare_workloads::{all_kernels, Suite};
//!
//! let fp: Vec<_> = all_kernels().into_iter()
//!     .filter(|k| k.suite == Suite::Fp)
//!     .collect();
//! assert_eq!(fp.len(), 8);
//! let program = fp[0].program(1_000);
//! assert!(!program.is_empty());
//! ```

pub mod analysis;
mod kernels;
pub mod synthetic;

use regshare_isa::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The benchmark suite a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Floating-point numeric kernels (SPECfp-like).
    Fp,
    /// Integer control/memory kernels (SPECint-like).
    Int,
    /// Multimedia kernels (Mediabench-like).
    Media,
    /// Machine-learning kernels (GMM, DNN).
    Cognitive,
}

impl Suite {
    /// All suites in presentation order.
    pub const ALL: [Suite; 4] = [Suite::Fp, Suite::Int, Suite::Media, Suite::Cognitive];

    /// Human-readable suite label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Fp => "specfp-like",
            Suite::Int => "specint-like",
            Suite::Media => "mediabench-like",
            Suite::Cognitive => "cognitive",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A benchmark kernel: a named program generator.
///
/// `scale` controls the dynamic instruction count roughly linearly;
/// kernels aim for `scale` committed instructions within a factor of ~2.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// Kernel name (unique across suites).
    pub name: &'static str,
    /// Which suite it represents.
    pub suite: Suite,
    build: fn(u64) -> Program,
}

impl Kernel {
    /// Builds the program at the given dynamic-instruction scale.
    pub fn program(&self, scale: u64) -> Program {
        (self.build)(scale)
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

/// Every kernel, grouped by suite in presentation order.
pub fn all_kernels() -> Vec<Kernel> {
    kernels::all()
}

/// The kernels of one suite.
pub fn suite_kernels(suite: Suite) -> Vec<Kernel> {
    all_kernels()
        .into_iter()
        .filter(|k| k.suite == suite)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{Machine, StopReason};

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(suite_kernels(Suite::Fp).len(), 8);
        assert_eq!(suite_kernels(Suite::Int).len(), 6);
        assert_eq!(suite_kernels(Suite::Media).len(), 2);
        assert_eq!(suite_kernels(Suite::Cognitive).len(), 2);
        assert_eq!(all_kernels().len(), 18);
    }

    #[test]
    fn kernel_names_are_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = all_kernels().iter().map(|k| k.name).collect();
        assert_eq!(names.len(), all_kernels().len());
    }

    #[test]
    fn every_kernel_runs_to_halt_on_the_functional_machine() {
        for k in all_kernels() {
            let p = k.program(2_000);
            let mut m = Machine::new(p);
            let stop = m
                .run(1_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
            assert_eq!(stop, StopReason::Halted, "{} did not halt", k.name);
            assert!(m.retired() > 100, "{} retired too few instructions", k.name);
        }
    }

    #[test]
    fn scale_controls_dynamic_length() {
        for k in all_kernels() {
            let short = {
                let mut m = Machine::new(k.program(1_000));
                m.run(10_000_000).unwrap();
                m.retired()
            };
            let long = {
                let mut m = Machine::new(k.program(8_000));
                m.run(10_000_000).unwrap();
                m.retired()
            };
            assert!(
                long > short,
                "{}: scale had no effect ({short} vs {long})",
                k.name
            );
            // Rough linearity: dynamic length within a factor of ~4 of
            // the requested scale.
            assert!(
                (250..=32_000).contains(&short),
                "{}: scale 1000 produced {short} instructions",
                k.name
            );
        }
    }

    #[test]
    fn suite_labels_are_distinct() {
        use std::collections::HashSet;
        let labels: HashSet<&str> = Suite::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
