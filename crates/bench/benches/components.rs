//! Microbenchmarks of the simulator's components: rename throughput of
//! both schemes, full-pipeline simulation speed, cache and branch
//! predictor hot loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use regshare_bench::{baseline_renamer, proposed_renamer, run, swept_class, BENCH_SCALE};
use regshare_core::{BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare_isa::{reg, Inst, Opcode};
use regshare_mem::{Cache, CacheConfig};
use regshare_sim::{BranchPredictor, BranchPredictorConfig};
use regshare_workloads::all_kernels;
use std::hint::black_box;

/// A rename/commit stream that mixes chains (reusable) and shared values.
fn rename_stream() -> Vec<Inst> {
    let mut v = Vec::new();
    for i in 0..32u8 {
        v.push(Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(20))); // chain
        v.push(Inst::rrr(
            Opcode::Mul,
            reg::x(9 + i % 4),
            reg::x(20),
            reg::x(21),
        ));
        v.push(Inst::store(Opcode::St, reg::x(9), reg::x(21), 0));
    }
    v
}

fn bench_renamers(c: &mut Criterion) {
    let stream = rename_stream();
    let mut group = c.benchmark_group("renamer_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut r = BaselineRenamer::new(RenamerConfig::baseline(96));
            let mut seq = 1;
            for (pc, inst) in stream.iter().enumerate() {
                let uops = r.rename(seq, pc as u64, inst).expect("no stall at 96 regs");
                for u in &uops {
                    r.commit(u.seq);
                }
                seq += uops.len() as u64;
            }
            black_box(r.stats().renamed)
        })
    });
    group.bench_function("reuse", |b| {
        b.iter(|| {
            let mut r = ReuseRenamer::new(RenamerConfig::paper(96));
            let mut seq = 1;
            for (pc, inst) in stream.iter().enumerate() {
                let uops = r.rename(seq, pc as u64, inst).expect("no stall at 96 regs");
                for u in &uops {
                    r.commit(u.seq);
                }
                seq += uops.len() as u64;
            }
            black_box(r.stats().renamed)
        })
    });
    group.finish();
}

fn bench_pipeline_speed(c: &mut Criterion) {
    let kernels = all_kernels();
    let mut group = c.benchmark_group("pipeline_sim_speed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BENCH_SCALE));
    for name in ["matmul", "pchase"] {
        let kernel = *kernels
            .iter()
            .find(|k| k.name == name)
            .expect("kernel exists");
        group.bench_function(format!("{name}_baseline"), |b| {
            b.iter(|| {
                black_box(run(&kernel, baseline_renamer(64, swept_class(kernel.suite))).cycles)
            })
        });
        group.bench_function(format!("{name}_proposed"), |b| {
            b.iter(|| {
                black_box(run(&kernel, proposed_renamer(64, swept_class(kernel.suite))).cycles)
            })
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("l1d_stream", |b| {
        let mut cache = Cache::new(
            "l1d",
            CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
        );
        let mut addr = 0u64;
        b.iter(|| {
            let mut hits = 0u32;
            for _ in 0..4096 {
                hits += cache.access(addr, false) as u32;
                addr = addr.wrapping_add(64);
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_predictor");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("gshare_predict_update", |b| {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::default());
        let inst = Inst::branch(Opcode::Bne, reg::x(1), reg::x(2), 3);
        b.iter(|| {
            let mut taken_count = 0u32;
            for i in 0..4096u64 {
                let pred = bp.predict(i % 64, &inst);
                let taken = i % 3 != 0;
                bp.update(i % 64, &inst, taken, 3, pred);
                taken_count += pred.taken as u32;
            }
            black_box(taken_count)
        })
    });
    group.finish();
}

criterion_group!(
    components,
    bench_renamers,
    bench_pipeline_speed,
    bench_cache,
    bench_bpred
);
criterion_main!(components);
