//! Raw simulator throughput: committed micro-ops per host second on one
//! integer and one floating-point kernel, under both renaming schemes.
//!
//! The table/figure benches measure experiment-harness latency; this one
//! tracks the core simulator loop itself, using criterion's throughput
//! reporting so regressions show up as uops/sec, the same unit
//! `SimReport` prints. The event-driven wakeup, the completion wheel and
//! the flattened scoreboard all live on this path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use regshare_bench::{baseline_renamer, proposed_renamer, run, swept_class, BENCH_SCALE};
use regshare_workloads::all_kernels;
use std::hint::black_box;

/// One integer and one floating-point kernel, picked by name so the
/// bench keeps measuring the same workloads if the suite grows.
const KERNELS: [&str; 2] = ["crc32", "saxpy"];

fn bench_throughput(c: &mut Criterion) {
    let kernels = all_kernels();
    let mut group = c.benchmark_group("simulator_throughput");
    for name in KERNELS {
        let kernel = kernels
            .iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("kernel {name} missing from suite"));
        let swept = swept_class(kernel.suite);
        // Uop counts differ per scheme (wrong-path work is excluded), so
        // measure one run and let criterion scale by committed uops.
        let committed = run(kernel, baseline_renamer(64, swept)).committed_uops;
        group.throughput(Throughput::Elements(committed));
        group.bench_function(format!("{name}_baseline_uops"), |b| {
            b.iter(|| black_box(run(kernel, baseline_renamer(64, swept)).committed_uops))
        });
        let committed = run(kernel, proposed_renamer(64, swept)).committed_uops;
        group.throughput(Throughput::Elements(committed));
        group.bench_function(format!("{name}_proposed_uops"), |b| {
            b.iter(|| black_box(run(kernel, proposed_renamer(64, swept)).committed_uops))
        });
    }
    group.finish();
    let _ = BENCH_SCALE; // scale is baked into `run`
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
