//! One criterion benchmark per table/figure of the paper: each bench
//! exercises exactly the code path the experiment harness uses to
//! regenerate that artefact (at reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use regshare_bench::{baseline_renamer, proposed_renamer, run, swept_class, BENCH_SCALE};
use regshare_core::BankConfig;
use regshare_workloads::{all_kernels, analysis, suite_kernels, Suite};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let kernels = all_kernels();
    let programs: Vec<_> = kernels.iter().map(|k| k.program(BENCH_SCALE)).collect();
    c.bench_function("fig1_single_use_analysis", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for p in &programs {
                total += analysis::analyze(p, BENCH_SCALE).single_use_fraction();
            }
            black_box(total)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let kernels = suite_kernels(Suite::Fp);
    let programs: Vec<_> = kernels.iter().map(|k| k.program(BENCH_SCALE)).collect();
    c.bench_function("fig2_consumer_histogram", |b| {
        b.iter(|| {
            let mut ones = 0u64;
            for p in &programs {
                ones += analysis::analyze(p, BENCH_SCALE).consumers.count(1);
            }
            black_box(ones)
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let kernels = all_kernels();
    let programs: Vec<_> = kernels
        .iter()
        .take(4)
        .map(|k| k.program(BENCH_SCALE))
        .collect();
    c.bench_function("fig3_reuse_potential", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for p in &programs {
                for lim in [1u64, 2, 3, u64::MAX] {
                    total += analysis::reuse_potential(p, BENCH_SCALE, lim);
                }
            }
            black_box(total)
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_area_model", |b| {
        b.iter(|| {
            let rows = regshare_area::table2();
            black_box(rows.iter().map(|r| r.area_mm2).sum::<f64>())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let ports = regshare_area::RegFilePorts::default();
    c.bench_function("table3_equal_area_solver", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for n in BankConfig::PAPER_SIZES {
                total += regshare_area::equal_area_config(n, ports).total();
            }
            black_box(total)
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "horner")
        .expect("kernel exists");
    c.bench_function("fig9_occupancy_sampling", |b| {
        b.iter(|| {
            let mut cfg = regshare_bench::bench_config();
            cfg.occupancy_sample_interval = 32;
            let program = kernel.program(BENCH_SCALE);
            let renamer = proposed_renamer(96, swept_class(kernel.suite));
            let mut sim = regshare_sim::Pipeline::new(program, renamer, cfg);
            black_box(sim.run().expect("fig9 run").cycles)
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "gmm")
        .expect("kernel exists");
    let mut group = c.benchmark_group("fig10_speedup_point");
    group.sample_size(10);
    group.bench_function("baseline_48", |b| {
        b.iter(|| black_box(run(kernel, baseline_renamer(48, swept_class(kernel.suite))).cycles))
    });
    group.bench_function("proposed_48", |b| {
        b.iter(|| black_box(run(kernel, proposed_renamer(48, swept_class(kernel.suite))).cycles))
    });
    group.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "sad")
        .expect("kernel exists");
    let mut group = c.benchmark_group("fig11_ipc_curve_point");
    group.sample_size(10);
    for rf in [48usize, 80] {
        group.bench_function(format!("proposed_{rf}"), |b| {
            b.iter(|| {
                black_box(run(kernel, proposed_renamer(rf, swept_class(kernel.suite))).cycles)
            })
        });
    }
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "fir")
        .expect("kernel exists");
    let mut group = c.benchmark_group("fig12_predictor_accuracy");
    group.sample_size(10);
    group.bench_function("proposed_64", |b| {
        b.iter(|| {
            let report = run(kernel, proposed_renamer(64, swept_class(kernel.suite)));
            black_box(report.predictor.total())
        })
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_table2,
    bench_table3,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(figures);
