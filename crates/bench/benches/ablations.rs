//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! version-counter width, predictor size, and register-bank split.

use criterion::{criterion_group, criterion_main, Criterion};
use regshare_bench::{bench_config, swept_class, BENCH_SCALE};
use regshare_core::{BankConfig, HintPolicy, RenamerConfig, ReuseRenamer};
use regshare_isa::RegClass;
use regshare_sim::Pipeline;
use regshare_workloads::all_kernels;
use std::hint::black_box;

fn renamer(swept: RegClass, banks: BankConfig, bits: u8, entries: usize) -> Box<ReuseRenamer> {
    let fixed = BankConfig::conventional(128);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (banks, fixed),
        RegClass::Fp => (fixed, banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        counter_bits: bits,
        predictor_entries: entries,
        predictor_bits: 2,
        speculative_reuse: true,
        hint_policy: HintPolicy::DynamicOnly,
        threads: 1,
    }))
}

fn run_with(bits: u8, entries: usize, banks: &[usize]) -> u64 {
    let kernels = all_kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == "horner")
        .expect("kernel exists");
    let program = kernel.program(BENCH_SCALE);
    let r = renamer(
        swept_class(kernel.suite),
        BankConfig::new(banks.to_vec()),
        bits,
        entries,
    );
    let mut sim = Pipeline::new(program, r, bench_config());
    sim.run().expect("ablation run").cycles
}

fn bench_ablate_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_counter_bits");
    group.sample_size(10);
    for bits in [1u8, 2, 3] {
        group.bench_function(format!("{bits}bit"), |b| {
            b.iter(|| black_box(run_with(bits, 512, &[52, 4, 4, 4])))
        });
    }
    group.finish();
}

fn bench_ablate_pred(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_predictor_entries");
    group.sample_size(10);
    for entries in [64usize, 512, 4096] {
        group.bench_function(format!("{entries}"), |b| {
            b.iter(|| black_box(run_with(2, entries, &[52, 4, 4, 4])))
        });
    }
    group.finish();
}

fn bench_ablate_banks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_banks");
    group.sample_size(10);
    for (name, banks) in [
        ("paper", vec![52usize, 4, 4, 4]),
        ("one_shadow_heavy", vec![44, 12, 4, 4]),
        ("deep_only", vec![56, 0, 0, 8]),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run_with(2, 512, &banks))));
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_ablate_counter,
    bench_ablate_pred,
    bench_ablate_banks
);
criterion_main!(ablations);
