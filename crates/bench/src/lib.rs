#![warn(missing_docs)]

//! Shared helpers for the criterion benchmarks that regenerate the
//! paper's tables and figures at reduced scale.
//!
//! The real experiment harness is `cargo run --release --bin experiments`
//! in the workspace root; these benches measure the same code paths with
//! criterion's statistical machinery so regressions in simulator or
//! renamer performance are caught.

use regshare_core::{BankConfig, BaselineRenamer, Renamer, RenamerConfig, ReuseRenamer};
use regshare_isa::RegClass;
use regshare_sim::{Pipeline, SimConfig, SimReport};
use regshare_workloads::{Kernel, Suite};

/// Instruction budget used by the benchmark runs (small on purpose:
/// criterion repeats each run many times).
pub const BENCH_SCALE: u64 = 12_000;

/// Simulator configuration for benches.
pub fn bench_config() -> SimConfig {
    SimConfig {
        max_instructions: BENCH_SCALE,
        max_cycles: BENCH_SCALE * 80,
        ..SimConfig::default()
    }
}

/// The register file class a suite stresses.
pub fn swept_class(suite: Suite) -> RegClass {
    match suite {
        Suite::Fp | Suite::Cognitive => RegClass::Fp,
        Suite::Int | Suite::Media => RegClass::Int,
    }
}

/// Builds a baseline renamer sweeping one class.
pub fn baseline_renamer(rf: usize, swept: RegClass) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(128);
    let swept_banks = BankConfig::conventional(rf);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(BaselineRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::baseline(rf)
    }))
}

/// Builds a proposed-scheme renamer (Table III banks) sweeping one class.
pub fn proposed_renamer(rf: usize, swept: RegClass) -> Box<dyn Renamer> {
    let fixed = BankConfig::conventional(128);
    let swept_banks = BankConfig::paper_row(rf);
    let (int_banks, fp_banks) = match swept {
        RegClass::Int => (swept_banks, fixed),
        RegClass::Fp => (fixed, swept_banks),
    };
    Box::new(ReuseRenamer::new(RenamerConfig {
        int_banks,
        fp_banks,
        ..RenamerConfig::paper(rf)
    }))
}

/// Runs one kernel to its instruction budget; panics on simulator errors.
pub fn run(kernel: &Kernel, renamer: Box<dyn Renamer>) -> SimReport {
    let program = kernel.program(BENCH_SCALE);
    let mut sim = Pipeline::new(program, renamer, bench_config());
    sim.run().unwrap_or_else(|e| panic!("{}: {e}", kernel.name))
}
