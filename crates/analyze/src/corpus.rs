//! A corpus of deliberately-broken programs, each annotated with the
//! diagnostic the linter must raise for it. CI runs the linter over the
//! whole corpus and fails if any expected diagnostic goes silent.

use crate::lint::DiagCode;
use regshare_isa::{reg, Inst, Opcode};

/// One corpus entry: a malformed program and the diagnostic it must
/// trigger.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// Short description of the defect.
    pub name: String,
    /// The program's instructions (possibly empty).
    pub insts: Vec<Inst>,
    /// The program's entry index.
    pub entry: u32,
    /// The diagnostic code the linter must emit for this case.
    pub expect: DiagCode,
}

/// Minimal deterministic PRNG (xorshift64) so the corpus needs no
/// external crate and a seed fully determines every case.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A small well-formed straight-line-plus-loop program: initializes the
/// registers it reads, does some arithmetic, halts. The linter accepts
/// it — defects are injected on top.
fn clean_program(rng: &mut XorShift) -> Vec<Inst> {
    let mut insts = Vec::new();
    // Initialize the working registers x1..x4.
    for i in 1..=4u8 {
        insts.push(Inst::ri(Opcode::Li, reg::x(i), i as i64 * 3 + 1));
    }
    let body = 2 + rng.below(6) as usize;
    for _ in 0..body {
        let d = reg::x(1 + rng.below(4) as u8);
        let a = reg::x(1 + rng.below(4) as u8);
        let b = reg::x(1 + rng.below(4) as u8);
        let op = match rng.below(3) {
            0 => Opcode::Add,
            1 => Opcode::Sub,
            _ => Opcode::Xor,
        };
        insts.push(Inst::rrr(op, d, a, b));
    }
    insts.push(Inst::bare(Opcode::Halt));
    insts
}

/// The defect classes the generator can inject.
const DEFECTS: [DiagCode; 8] = [
    DiagCode::BranchTargetOutOfRange,
    DiagCode::UninitRead,
    DiagCode::UnreachableCode,
    DiagCode::PostIncBaseConflict,
    DiagCode::NoHaltPath,
    DiagCode::FallsOffEnd,
    DiagCode::DeadStore,
    DiagCode::RedundantSelfMove,
];

/// Injects one defect into a clean program, returning the case.
fn inject(name_idx: usize, defect: DiagCode, rng: &mut XorShift) -> CorpusCase {
    let mut insts = clean_program(rng);
    let entry = 0u32;
    match defect {
        DiagCode::BranchTargetOutOfRange => {
            let bad = insts.len() as u32 + 1 + rng.below(100) as u32;
            let at = insts.len() - 1; // before the halt
            insts.insert(at, Inst::branch(Opcode::Beq, reg::x(1), reg::zero(), bad));
        }
        DiagCode::UninitRead => {
            // x20 is never initialized by clean_program.
            insts.insert(
                0,
                Inst::rrr(Opcode::Add, reg::x(9), reg::x(20), reg::zero()),
            );
        }
        DiagCode::UnreachableCode => {
            insts.push(Inst::bare(Opcode::Nop)); // after the halt
        }
        DiagCode::PostIncBaseConflict => {
            // Constructors reject this shape; a broken generator using
            // from_parts would not.
            let r = reg::x(1 + rng.below(4) as u8);
            let at = insts.len() - 1;
            insts.insert(
                at,
                Inst::from_parts(Opcode::LdPost, Some(r), [Some(r), None, None], 8, 0),
            );
        }
        DiagCode::NoHaltPath => {
            let last = insts.len() - 1;
            insts[last] = Inst::jal(None, 0); // loop forever instead of halting
        }
        DiagCode::FallsOffEnd => {
            insts.pop(); // drop the halt
        }
        DiagCode::DeadStore => {
            // Two back-to-back stores to the same slot: the first is
            // provably dead — nothing can load it before the overwrite.
            let v1 = reg::x(1 + rng.below(4) as u8);
            let v2 = reg::x(1 + rng.below(4) as u8);
            let base = reg::x(1 + rng.below(4) as u8);
            let at = insts.len() - 1; // before the halt
            insts.insert(at, Inst::store(Opcode::St, v2, base, 0));
            insts.insert(at, Inst::store(Opcode::St, v1, base, 0));
        }
        DiagCode::RedundantSelfMove => {
            let d = reg::x(1 + rng.below(4) as u8);
            let at = insts.len() - 1;
            insts.insert(at, Inst::rri(Opcode::Addi, d, d, 0));
        }
        _ => unreachable!("not a generated defect class"),
    }
    CorpusCase {
        name: format!("generated-{name_idx}-{defect:?}"),
        insts,
        entry,
        expect: defect,
    }
}

/// Handcrafted cases covering the diagnostics the generator cannot (or
/// covering them from a different angle).
fn handcrafted() -> Vec<CorpusCase> {
    vec![
        CorpusCase {
            name: "empty-program".to_string(),
            insts: Vec::new(),
            entry: 0,
            expect: DiagCode::EmptyProgram,
        },
        CorpusCase {
            name: "entry-past-end".to_string(),
            insts: vec![Inst::bare(Opcode::Halt)],
            entry: 17,
            expect: DiagCode::BadEntry,
        },
        CorpusCase {
            name: "jal-out-of-range".to_string(),
            insts: vec![Inst::jal(None, 1000), Inst::bare(Opcode::Halt)],
            entry: 0,
            expect: DiagCode::BranchTargetOutOfRange,
        },
        CorpusCase {
            name: "fp-uninit-read".to_string(),
            insts: vec![
                Inst::rrr(Opcode::Fadd, reg::f(1), reg::f(2), reg::f(3)),
                Inst::bare(Opcode::Halt),
            ],
            entry: 0,
            expect: DiagCode::UninitRead,
        },
        CorpusCase {
            name: "uninit-on-one-path".to_string(),
            insts: vec![
                Inst::ri(Opcode::Li, reg::x(2), 1),
                Inst::branch(Opcode::Beq, reg::x(2), reg::zero(), 3),
                Inst::ri(Opcode::Li, reg::x(1), 5),
                Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
                Inst::bare(Opcode::Halt),
            ],
            entry: 0,
            expect: DiagCode::UninitRead,
        },
        CorpusCase {
            name: "infinite-self-loop".to_string(),
            insts: vec![Inst::jal(None, 0), Inst::bare(Opcode::Halt)],
            entry: 0,
            expect: DiagCode::NoHaltPath,
        },
        CorpusCase {
            name: "single-inst-no-halt".to_string(),
            insts: vec![Inst::ri(Opcode::Li, reg::x(1), 1)],
            entry: 0,
            expect: DiagCode::FallsOffEnd,
        },
        CorpusCase {
            name: "dead-store-same-slot".to_string(),
            insts: vec![
                Inst::ri(Opcode::Li, reg::x(1), 64),
                Inst::ri(Opcode::Li, reg::x(2), 7),
                Inst::store(Opcode::St, reg::x(2), reg::x(1), 16),
                Inst::store(Opcode::St, reg::x(2), reg::x(1), 16),
                Inst::bare(Opcode::Halt),
            ],
            entry: 0,
            expect: DiagCode::DeadStore,
        },
        CorpusCase {
            name: "or-register-onto-itself".to_string(),
            insts: vec![
                Inst::ri(Opcode::Li, reg::x(1), 1),
                Inst::rrr(Opcode::Or, reg::x(1), reg::x(1), reg::x(1)),
                Inst::bare(Opcode::Halt),
            ],
            entry: 0,
            expect: DiagCode::RedundantSelfMove,
        },
        CorpusCase {
            name: "code-before-entry".to_string(),
            insts: vec![
                Inst::bare(Opcode::Nop),
                Inst::ri(Opcode::Li, reg::x(1), 1),
                Inst::bare(Opcode::Halt),
            ],
            entry: 1,
            expect: DiagCode::UnreachableCode,
        },
    ]
}

/// Builds the full negative corpus: every handcrafted case plus `count`
/// seeded generated cases cycling through the defect classes.
pub fn negative_corpus(seed: u64, count: usize) -> Vec<CorpusCase> {
    let mut rng = XorShift::new(seed);
    let mut cases = handcrafted();
    for i in 0..count {
        let defect = DEFECTS[i % DEFECTS.len()];
        cases.push(inject(i, defect, &mut rng));
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::lint;

    #[test]
    fn every_case_fires_its_expected_diagnostic() {
        for case in negative_corpus(0x5eed, 60) {
            let diags = lint(&case.insts, case.entry);
            assert!(
                diags.iter().any(|d| d.code == case.expect),
                "case {} did not raise {:?}; got {:?}",
                case.name,
                case.expect,
                diags.iter().map(|d| d.code).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn clean_base_program_is_accepted() {
        let mut rng = XorShift::new(42);
        for _ in 0..20 {
            let insts = clean_program(&mut rng);
            let diags = lint(&insts, 0);
            assert!(diags.is_empty(), "clean program flagged: {diags:?}");
        }
    }
}
