#![warn(missing_docs)]

//! Static analysis of TRISC programs for the register-sharing study.
//!
//! The dynamic experiments (Fig. 1/2 of the paper) measure how often a
//! produced value is consumed exactly once *on one execution*. This crate
//! answers the complementary static questions:
//!
//! * [`cfg`] — control-flow graph construction (basic blocks, edges,
//!   reachability, dominators) directly over instruction indices.
//! * [`dataflow`] — a worklist framework with liveness, reaching
//!   definitions / def-use chains, maybe-uninitialized reads, and a
//!   consumer-count analysis bounding how many times each value can be
//!   read.
//! * [`classify`] — per-definition-site verdicts: provably dead,
//!   guaranteed single consumer (with or without the safe redefining
//!   shape), multi-consumer, or branch-dependent.
//! * [`memdis`] — conservative store/load disambiguation over
//!   block-locally value-numbered address expressions, feeding the
//!   dead-store classification and lint.
//! * [`lint`] — a program verifier with machine-readable diagnostics,
//!   exercised in CI against [`corpus`], a seeded set of deliberately
//!   broken programs.
//! * [`oracle`] — runs the functional emulator and cross-checks every
//!   dynamic consumer count against the static bounds; its
//!   instance-weighted counts bracket the dynamic single-use fraction
//!   from below (guaranteed-single sites) and above (not-dead,
//!   not-multi sites).
//! * [`hints`] — compiles the classifier's proofs into the
//!   [`regshare_isa::ShareHintTable`] sidecar the renamer's `HintPolicy`
//!   consumes.

pub mod cfg;
pub mod classify;
pub mod corpus;
pub mod dataflow;
pub mod hints;
pub mod lint;
pub mod memdis;
pub mod oracle;
pub mod regset;

pub use cfg::{BasicBlock, Cfg};
pub use classify::{
    classify, classify_stores, classify_with_loops, Classification, ClassifiedSite,
    ClassifiedStore, SiteClass, StoreFate,
};
pub use corpus::{negative_corpus, CorpusCase};
pub use dataflow::{
    def_use, liveness, uninit_reads, use_counts_pinned, use_counts_split, DefSite, DefUse,
    SplitFact,
};
pub use hints::{compile_hints, hint_for_class};
pub use lint::{is_clean_of_errors, lint, lint_program, DiagCode, Diagnostic, Severity};
pub use memdis::{block_mem_refs, dead_stores, may_alias, MemRef};
pub use oracle::{oracle_check, OracleReport, Violation};
pub use regset::RegSet;
