//! Compiles the classifier's proofs into the ISA's [`ShareHintTable`]
//! sidecar.
//!
//! Every hint except [`ShareHint::Unknown`] is an *exact* proof about
//! the defined value's consumer count, which is what lets the renamer's
//! Hybrid policy override the dynamic predictor without a correctness
//! (well, accuracy) risk:
//!
//! * [`ShareHint::NoReuse`] — provably never consumed.
//! * [`ShareHint::SingleUse`] — provably at most one consumer, so
//!   single-use speculation can never trigger a multi-use repair.
//! * [`ShareHint::Multi`] — provably never *exactly* one consumer, so
//!   single-use speculation is always wasted.

use crate::cfg::Cfg;
use crate::classify::{classify_with_loops, SiteClass};
use regshare_isa::{Program, ShareHint, ShareHintTable};

/// Maps a site class onto the hint the renamer should see.
pub fn hint_for_class(class: SiteClass) -> ShareHint {
    match class {
        SiteClass::Dead => ShareHint::NoReuse,
        // All three prove max_consumers <= 1: single-use speculation is
        // exact (it never hits a second consumer).
        SiteClass::SingleSafeReuse | SiteClass::SingleNeedsPredictor | SiteClass::AtMostOnce => {
            ShareHint::SingleUse
        }
        // Both prove the count is never exactly one.
        SiteClass::MultiConsumer | SiteClass::NeverSingle => ShareHint::Multi,
        SiteClass::Unknown => ShareHint::Unknown,
    }
}

/// Runs the loop-split classifier over `program` and compiles the
/// result into a [`ShareHintTable`]. Unreachable sites keep the default
/// [`ShareHint::Unknown`] (they never rename, so any hint is moot).
pub fn compile_hints(program: &Program) -> ShareHintTable {
    let insts = program.insts();
    let cfg = Cfg::build(insts, program.entry());
    let classes = classify_with_loops(&cfg, insts);
    let mut table = ShareHintTable::new(insts.len());
    for site in &classes.sites {
        table.set(site.site.pc, site.site.slot, hint_for_class(site.class));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, DefSlot, Inst, Opcode, Program};

    fn program(insts: Vec<Inst>) -> Program {
        Program::new(insts, 0, Default::default())
    }

    #[test]
    fn every_class_maps_to_the_documented_hint() {
        assert_eq!(hint_for_class(SiteClass::Dead), ShareHint::NoReuse);
        assert_eq!(
            hint_for_class(SiteClass::SingleSafeReuse),
            ShareHint::SingleUse
        );
        assert_eq!(
            hint_for_class(SiteClass::SingleNeedsPredictor),
            ShareHint::SingleUse
        );
        assert_eq!(hint_for_class(SiteClass::AtMostOnce), ShareHint::SingleUse);
        assert_eq!(hint_for_class(SiteClass::MultiConsumer), ShareHint::Multi);
        assert_eq!(hint_for_class(SiteClass::NeverSingle), ShareHint::Multi);
        assert_eq!(hint_for_class(SiteClass::Unknown), ShareHint::Unknown);
    }

    #[test]
    fn straight_line_program_compiles_expected_hints() {
        // 0: li x1       -> single consumer       -> SingleUse
        // 1: addi x1,x1,1-> two consumers          -> Multi
        // 2: add x2,...  -> dead                   -> NoReuse
        // 3: add x3,...  -> dead                   -> NoReuse
        let p = program(vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::x(1)),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ]);
        let t = compile_hints(&p);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(0, DefSlot::Primary), ShareHint::SingleUse);
        assert_eq!(t.get(1, DefSlot::Primary), ShareHint::Multi);
        assert_eq!(t.get(2, DefSlot::Primary), ShareHint::NoReuse);
        assert_eq!(t.get(3, DefSlot::Primary), ShareHint::NoReuse);
        // halt defines nothing; both slots stay Unknown.
        assert_eq!(t.get(4, DefSlot::Primary), ShareHint::Unknown);
    }

    #[test]
    fn loop_proofs_reach_the_table() {
        // The pointer bump (pc 3) is NeverSingle under the split
        // classifier -> Multi; the baseline classifier would have left
        // it Unknown.
        let p = program(vec![
            Inst::ri(Opcode::Li, reg::x(1), 0),
            Inst::ri(Opcode::Li, reg::x(2), 4),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(1), 0),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 8),
            Inst::rri(Opcode::Addi, reg::x(2), reg::x(2), -1),
            Inst::branch(Opcode::Bne, reg::x(2), reg::zero(), 2),
            Inst::bare(Opcode::Halt),
        ]);
        let t = compile_hints(&p);
        assert_eq!(t.get(3, DefSlot::Primary), ShareHint::Multi);
        // The genuinely variable induction decrement stays Unknown.
        assert_eq!(t.get(4, DefSlot::Primary), ShareHint::Unknown);
    }

    #[test]
    fn unreachable_sites_stay_unknown() {
        let p = program(vec![
            Inst::jal(None, 2),
            Inst::ri(Opcode::Li, reg::x(1), 1), // unreachable
            Inst::bare(Opcode::Halt),
        ]);
        let t = compile_hints(&p);
        assert_eq!(t.get(1, DefSlot::Primary), ShareHint::Unknown);
    }
}
