//! Classification of every static definition site by its provable
//! consumer count — the static counterpart to the paper's dynamic
//! sharing-table occupancy argument.

use crate::cfg::Cfg;
use crate::dataflow::{use_counts_pinned, Analysis, DefSite, UseCounts, MIN_SAT};
use crate::regset::reg_bit;
use regshare_isa::Inst;

/// What the dataflow analysis can prove about a definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// The value is provably never read (max consumers = 0).
    Dead,
    /// Exactly one consumer on every path, and that consumer also
    /// redefines the register — the paper's "safe reuse" shape where the
    /// physical register can be recycled without a misprediction risk.
    SingleSafeReuse,
    /// Exactly one consumer on every path, but the consumer does not
    /// redefine the register; sharing needs the confidence predictor.
    SingleNeedsPredictor,
    /// Consumer count differs across paths (or exceeds one on some);
    /// only the predictor can speculate here.
    Unknown,
    /// At least two consumers on every path — never a sharing candidate.
    MultiConsumer,
}

/// A classified definition site.
#[derive(Debug, Clone, Copy)]
pub struct ClassifiedSite {
    /// The definition site.
    pub site: DefSite,
    /// Its classification.
    pub class: SiteClass,
    /// Provable bounds: fewest consumers over any path (saturated at
    /// [`MIN_SAT`]).
    pub min_consumers: u8,
    /// Most consumers over any path (saturated at
    /// [`crate::dataflow::MAX_SAT`]).
    pub max_consumers: u8,
}

/// The full classification of a program's reachable definition sites.
#[derive(Debug, Clone, Default)]
pub struct Classification {
    /// All reachable definition sites in `(pc, slot)` order.
    pub sites: Vec<ClassifiedSite>,
}

impl Classification {
    /// Number of classified (reachable) definition sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the program has no reachable definition sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Count of sites with the given class.
    pub fn count(&self, class: SiteClass) -> usize {
        self.sites.iter().filter(|s| s.class == class).count()
    }

    /// Sites proven to have exactly one consumer on every path
    /// (regardless of whether the consumer redefines) — the static
    /// *lower* bracket on single-use sharing.
    pub fn guaranteed_single(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.min_consumers == 1 && s.max_consumers == 1)
            .count()
    }

    /// Sites that *could* have exactly one consumer — everything not
    /// proven dead or multi-consumer. The static *upper* bracket on
    /// single-use sharing.
    pub fn possibly_single(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| !matches!(s.class, SiteClass::Dead | SiteClass::MultiConsumer))
            .count()
    }
}

/// Classifies every definition site in the reachable part of the
/// program. Unreachable code never executes, so its sites carry no
/// dynamic weight and are excluded (the linter reports them separately).
pub fn classify(cfg: &Cfg, insts: &[Inst]) -> Classification {
    let facts = use_counts_pinned(cfg, insts);
    let mut sites = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut fact = facts.input[b].clone();
        // Walk backward; before transferring instruction `pc` the fact
        // describes the future of values live *after* `pc` — exactly the
        // consumer counts of anything `pc` defines.
        let mut block_sites = Vec::new();
        for pc in (block.start..block.end).rev() {
            for (slot, reg) in insts[pc].defs() {
                let c = fact.0[reg_bit(reg)];
                let min = c.min.min(MIN_SAT);
                let max = c.max;
                let class = if max == 0 {
                    SiteClass::Dead
                } else if min >= 2 {
                    SiteClass::MultiConsumer
                } else if min == 1 && max == 1 {
                    if c.redefining {
                        SiteClass::SingleSafeReuse
                    } else {
                        SiteClass::SingleNeedsPredictor
                    }
                } else {
                    SiteClass::Unknown
                };
                block_sites.push(ClassifiedSite {
                    site: DefSite { pc, slot, reg },
                    class,
                    min_consumers: min,
                    max_consumers: max,
                });
            }
            UseCounts.transfer(pc, &insts[pc], &mut fact);
        }
        block_sites.reverse();
        sites.extend(block_sites);
    }
    sites.sort_by_key(|s| (s.site.pc, s.site.slot));
    Classification { sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, DefSlot, Inst, Opcode};

    fn classify_insts(insts: &[Inst]) -> Classification {
        let cfg = Cfg::build(insts, 0);
        classify(&cfg, insts)
    }

    fn class_at(c: &Classification, pc: usize) -> SiteClass {
        c.sites
            .iter()
            .find(|s| s.site.pc == pc)
            .expect("site classified")
            .class
    }

    #[test]
    fn straight_line_classes() {
        // 0: li x1        -> single consumer (inst 1) which redefines x1
        // 1: addi x1,x1,1 -> two consumers (2 and 3)
        // 2: add x2,x1,x1 -> dead (x2 never read)
        // 3: add x3,x1,xzr-> dead
        // 4: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::x(1)),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert_eq!(class_at(&c, 0), SiteClass::SingleSafeReuse);
        assert_eq!(class_at(&c, 1), SiteClass::MultiConsumer);
        assert_eq!(class_at(&c, 2), SiteClass::Dead);
        assert_eq!(class_at(&c, 3), SiteClass::Dead);
        assert_eq!(c.guaranteed_single(), 1);
        assert_eq!(c.possibly_single(), 1);
    }

    #[test]
    fn branch_dependent_count_is_unknown() {
        // 0: li x1
        // 1: beq x2, xzr, @3    (skip the extra consumer)
        // 2: add x3, x1, xzr
        // 3: add x4, x1, xzr
        // 4: halt
        // x1 has 1 consumer on the taken path, 2 on the fall-through.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::branch(Opcode::Beq, reg::x(2), reg::zero(), 3),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(4), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert_eq!(class_at(&c, 0), SiteClass::Unknown);
    }

    #[test]
    fn single_consumer_without_redefine_needs_predictor() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(2), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(4), reg::x(3), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        // x1's one consumer defines x2, not x1.
        assert_eq!(class_at(&c, 0), SiteClass::SingleNeedsPredictor);
        assert_eq!(c.guaranteed_single(), 3);
    }

    #[test]
    fn post_increment_writeback_classified_separately() {
        // 0: li x2 (base)
        // 1: ld.post x1, [x2], 8  -> primary x1 dead, writeback x2 single
        // 2: ld x3, [x2]          -> x3 dead
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(2), 0),
            Inst::load_post(Opcode::LdPost, reg::x(1), reg::x(2), 8),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(2), 0),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        let wb = c
            .sites
            .iter()
            .find(|s| s.site.pc == 1 && s.site.slot == DefSlot::Writeback)
            .expect("writeback site");
        assert_eq!(wb.class, SiteClass::SingleNeedsPredictor);
        let primary = c
            .sites
            .iter()
            .find(|s| s.site.pc == 1 && s.site.slot == DefSlot::Primary)
            .expect("primary site");
        assert_eq!(primary.class, SiteClass::Dead);
    }

    #[test]
    fn unreachable_sites_are_skipped() {
        let insts = vec![
            Inst::jal(None, 2),
            Inst::ri(Opcode::Li, reg::x(1), 1), // unreachable
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert!(c.sites.iter().all(|s| s.site.pc != 1));
    }

    #[test]
    fn loop_carried_value_in_kernel_shape() {
        // Induction-variable shape: the decrement's value is consumed by
        // the branch and by the next iteration's decrement.
        // 0: li x1, 4
        // 1: subi x1, x1, 1
        // 2: bne x1, xzr, @1
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 4),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), -1),
            Inst::branch(Opcode::Bne, reg::x(1), reg::zero(), 1),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        // subi's value: read by bne (1), then on the looping path also
        // by subi (2 total, redefining); on exit path just 1. Min 1 max
        // 2 -> Unknown.
        assert_eq!(class_at(&c, 1), SiteClass::Unknown);
    }
}
