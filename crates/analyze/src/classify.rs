//! Classification of every static definition site by its provable
//! consumer count — the static counterpart to the paper's dynamic
//! sharing-table occupancy argument.

use crate::cfg::Cfg;
use crate::dataflow::{
    split_transfer, use_counts_pinned, use_counts_split, Analysis, DefSite, UseCounts, MIN_SAT,
};
use crate::memdis::dead_stores;
use crate::regset::reg_bit;
use regshare_isa::Inst;

/// What the dataflow analysis can prove about a definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// The value is provably never read (max consumers = 0).
    Dead,
    /// Exactly one consumer on every path, and that consumer also
    /// redefines the register — the paper's "safe reuse" shape where the
    /// physical register can be recycled without a misprediction risk.
    SingleSafeReuse,
    /// Exactly one consumer on every path, but the consumer does not
    /// redefine the register; sharing needs the confidence predictor.
    SingleNeedsPredictor,
    /// Consumer count differs across paths (or exceeds one on some);
    /// only the predictor can speculate here.
    Unknown,
    /// At least two consumers on every path — never a sharing candidate.
    MultiConsumer,
    /// Zero or exactly one consumer, never more (loop-split proof:
    /// `max ≤ 1` over both contexts). Speculating single-use here is
    /// exact — if a consumer shows up it is the only one.
    AtMostOnce,
    /// Zero consumers on every no-back-edge future and at least two on
    /// every loop-carried one — the count is never exactly one, so
    /// single-use speculation is provably always wrong.
    NeverSingle,
}

/// A classified definition site.
#[derive(Debug, Clone, Copy)]
pub struct ClassifiedSite {
    /// The definition site.
    pub site: DefSite,
    /// Its classification.
    pub class: SiteClass,
    /// Provable bounds: fewest consumers over any path (saturated at
    /// [`MIN_SAT`]).
    pub min_consumers: u8,
    /// Most consumers over any path (saturated at
    /// [`crate::dataflow::MAX_SAT`]).
    pub max_consumers: u8,
}

/// The full classification of a program's reachable definition sites.
#[derive(Debug, Clone, Default)]
pub struct Classification {
    /// All reachable definition sites in `(pc, slot)` order.
    pub sites: Vec<ClassifiedSite>,
}

impl Classification {
    /// Number of classified (reachable) definition sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when the program has no reachable definition sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Count of sites with the given class.
    pub fn count(&self, class: SiteClass) -> usize {
        self.sites.iter().filter(|s| s.class == class).count()
    }

    /// Sites proven to have exactly one consumer on every path
    /// (regardless of whether the consumer redefines) — the static
    /// *lower* bracket on single-use sharing.
    pub fn guaranteed_single(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.min_consumers == 1 && s.max_consumers == 1)
            .count()
    }

    /// Sites that *could* have exactly one consumer — everything not
    /// proven dead, multi-consumer, or never-single. The static *upper*
    /// bracket on single-use sharing.
    pub fn possibly_single(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| {
                !matches!(
                    s.class,
                    SiteClass::Dead | SiteClass::MultiConsumer | SiteClass::NeverSingle
                )
            })
            .count()
    }

    /// Fraction of sites classified [`SiteClass::Unknown`] (0 when the
    /// program has no sites).
    pub fn unknown_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.count(SiteClass::Unknown) as f64 / self.sites.len() as f64
    }
}

/// Classifies every definition site in the reachable part of the
/// program. Unreachable code never executes, so its sites carry no
/// dynamic weight and are excluded (the linter reports them separately).
pub fn classify(cfg: &Cfg, insts: &[Inst]) -> Classification {
    let facts = use_counts_pinned(cfg, insts);
    let mut sites = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut fact = facts.input[b].clone();
        // Walk backward; before transferring instruction `pc` the fact
        // describes the future of values live *after* `pc` — exactly the
        // consumer counts of anything `pc` defines.
        let mut block_sites = Vec::new();
        for pc in (block.start..block.end).rev() {
            for (slot, reg) in insts[pc].defs() {
                let c = fact.0[reg_bit(reg)];
                let min = c.min.min(MIN_SAT);
                let max = c.max;
                let class = if max == 0 {
                    SiteClass::Dead
                } else if min >= 2 {
                    SiteClass::MultiConsumer
                } else if min == 1 && max == 1 {
                    if c.redefining {
                        SiteClass::SingleSafeReuse
                    } else {
                        SiteClass::SingleNeedsPredictor
                    }
                } else {
                    SiteClass::Unknown
                };
                block_sites.push(ClassifiedSite {
                    site: DefSite { pc, slot, reg },
                    class,
                    min_consumers: min,
                    max_consumers: max,
                });
            }
            UseCounts.transfer(pc, &insts[pc], &mut fact);
        }
        block_sites.reverse();
        sites.extend(block_sites);
    }
    sites.sort_by_key(|s| (s.site.pc, s.site.slot));
    Classification { sites }
}

/// Classifies every reachable definition site using the loop-split
/// consumer analysis ([`use_counts_split`]). This is the deepened PR 7
/// classifier: in addition to everything [`classify`] proves, the
/// per-context bounds recover [`SiteClass::AtMostOnce`] and
/// [`SiteClass::NeverSingle`] proofs on loop-carried definitions that
/// the joined analysis saturates to `Unknown`. [`classify`] itself is
/// kept frozen as the PR 2 baseline the static oracle pins.
pub fn classify_with_loops(cfg: &Cfg, insts: &[Inst]) -> Classification {
    let facts = use_counts_split(cfg, insts);
    let mut sites = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut fact = facts.input[b].clone();
        let mut block_sites = Vec::new();
        for pc in (block.start..block.end).rev() {
            for (slot, reg) in insts[pc].defs() {
                let a = fact.exit.0[reg_bit(reg)];
                let c = fact.carried.0[reg_bit(reg)];
                // Overall bounds are the union of the two contexts; a
                // vacuous component (min at MIN_UNKNOWN, max 0) is the
                // identity of both folds.
                let min = a.min.min(c.min).min(MIN_SAT);
                let max = a.max.max(c.max);
                let redefining = a.redefining && c.redefining;
                let class = if max == 0 {
                    SiteClass::Dead
                } else if min >= 2 {
                    SiteClass::MultiConsumer
                } else if min == 1 && max == 1 {
                    if redefining {
                        SiteClass::SingleSafeReuse
                    } else {
                        SiteClass::SingleNeedsPredictor
                    }
                } else if max == 1 {
                    SiteClass::AtMostOnce
                } else if a.max == 0 && c.min >= MIN_SAT {
                    // No-back-edge futures never read the value; carried
                    // futures read it at least twice (a vacuous carried
                    // component passes trivially: every real future is
                    // then a zero-read exit future).
                    SiteClass::NeverSingle
                } else {
                    SiteClass::Unknown
                };
                block_sites.push(ClassifiedSite {
                    site: DefSite { pc, slot, reg },
                    class,
                    min_consumers: min,
                    max_consumers: max,
                });
            }
            split_transfer(&insts[pc], &mut fact);
        }
        block_sites.reverse();
        sites.extend(block_sites);
    }
    sites.sort_by_key(|s| (s.site.pc, s.site.slot));
    Classification { sites }
}

/// Fate of a reachable store under the conservative store/load
/// disambiguation pass ([`crate::memdis`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreFate {
    /// Every stored byte is provably overwritten before any load could
    /// observe it — the store is dead.
    Overwritten,
    /// The store may be observed (by a later load, another block, or
    /// the program's consumer — memory is program output).
    Observable,
}

/// A classified store instruction.
#[derive(Debug, Clone, Copy)]
pub struct ClassifiedStore {
    /// Instruction index of the store.
    pub pc: usize,
    /// What the disambiguation pass proved about it.
    pub fate: StoreFate,
}

/// Classifies every reachable store by whether the disambiguation pass
/// proves it dead, in pc order.
pub fn classify_stores(cfg: &Cfg, insts: &[Inst]) -> Vec<ClassifiedStore> {
    let dead = dead_stores(cfg, insts);
    insts
        .iter()
        .enumerate()
        .filter(|(pc, inst)| inst.opcode.is_store() && cfg.is_reachable(cfg.block_of(*pc)))
        .map(|(pc, _)| ClassifiedStore {
            pc,
            fate: if dead.binary_search(&pc).is_ok() {
                StoreFate::Overwritten
            } else {
                StoreFate::Observable
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, DefSlot, Inst, Opcode};

    fn classify_insts(insts: &[Inst]) -> Classification {
        let cfg = Cfg::build(insts, 0);
        classify(&cfg, insts)
    }

    fn class_at(c: &Classification, pc: usize) -> SiteClass {
        c.sites
            .iter()
            .find(|s| s.site.pc == pc)
            .expect("site classified")
            .class
    }

    #[test]
    fn straight_line_classes() {
        // 0: li x1        -> single consumer (inst 1) which redefines x1
        // 1: addi x1,x1,1 -> two consumers (2 and 3)
        // 2: add x2,x1,x1 -> dead (x2 never read)
        // 3: add x3,x1,xzr-> dead
        // 4: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::x(1)),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert_eq!(class_at(&c, 0), SiteClass::SingleSafeReuse);
        assert_eq!(class_at(&c, 1), SiteClass::MultiConsumer);
        assert_eq!(class_at(&c, 2), SiteClass::Dead);
        assert_eq!(class_at(&c, 3), SiteClass::Dead);
        assert_eq!(c.guaranteed_single(), 1);
        assert_eq!(c.possibly_single(), 1);
    }

    #[test]
    fn branch_dependent_count_is_unknown() {
        // 0: li x1
        // 1: beq x2, xzr, @3    (skip the extra consumer)
        // 2: add x3, x1, xzr
        // 3: add x4, x1, xzr
        // 4: halt
        // x1 has 1 consumer on the taken path, 2 on the fall-through.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::branch(Opcode::Beq, reg::x(2), reg::zero(), 3),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(4), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert_eq!(class_at(&c, 0), SiteClass::Unknown);
    }

    #[test]
    fn single_consumer_without_redefine_needs_predictor() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(2), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(4), reg::x(3), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        // x1's one consumer defines x2, not x1.
        assert_eq!(class_at(&c, 0), SiteClass::SingleNeedsPredictor);
        assert_eq!(c.guaranteed_single(), 3);
    }

    #[test]
    fn post_increment_writeback_classified_separately() {
        // 0: li x2 (base)
        // 1: ld.post x1, [x2], 8  -> primary x1 dead, writeback x2 single
        // 2: ld x3, [x2]          -> x3 dead
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(2), 0),
            Inst::load_post(Opcode::LdPost, reg::x(1), reg::x(2), 8),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(2), 0),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        let wb = c
            .sites
            .iter()
            .find(|s| s.site.pc == 1 && s.site.slot == DefSlot::Writeback)
            .expect("writeback site");
        assert_eq!(wb.class, SiteClass::SingleNeedsPredictor);
        let primary = c
            .sites
            .iter()
            .find(|s| s.site.pc == 1 && s.site.slot == DefSlot::Primary)
            .expect("primary site");
        assert_eq!(primary.class, SiteClass::Dead);
    }

    #[test]
    fn unreachable_sites_are_skipped() {
        let insts = vec![
            Inst::jal(None, 2),
            Inst::ri(Opcode::Li, reg::x(1), 1), // unreachable
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        assert!(c.sites.iter().all(|s| s.site.pc != 1));
    }

    #[test]
    fn loop_carried_value_in_kernel_shape() {
        // Induction-variable shape: the decrement's value is consumed by
        // the branch and by the next iteration's decrement.
        // 0: li x1, 4
        // 1: subi x1, x1, 1
        // 2: bne x1, xzr, @1
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 4),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), -1),
            Inst::branch(Opcode::Bne, reg::x(1), reg::zero(), 1),
            Inst::bare(Opcode::Halt),
        ];
        let c = classify_insts(&insts);
        // subi's value: read by bne (1), then on the looping path also
        // by subi (2 total, redefining); on exit path just 1. Min 1 max
        // 2 -> Unknown.
        assert_eq!(class_at(&c, 1), SiteClass::Unknown);
    }

    fn classify_loops(insts: &[Inst]) -> Classification {
        let cfg = Cfg::build(insts, 0);
        classify_with_loops(&cfg, insts)
    }

    #[test]
    fn loop_split_proves_pointer_bump_never_single() {
        // 0: li x1, 0 ; 1: li x2, 4
        // 2: ld x3, [x1] ; 3: addi x1, x1, 8 ; 4: subi x2, x2, 1
        // 5: bne x2, xzr, @2 ; 6: halt
        // The bump at 3 is read 0 times on exit, >=2 when carried
        // (next load + next bump): never exactly once.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0),
            Inst::ri(Opcode::Li, reg::x(2), 4),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(1), 0),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 8),
            Inst::rri(Opcode::Addi, reg::x(2), reg::x(2), -1),
            Inst::branch(Opcode::Bne, reg::x(2), reg::zero(), 2),
            Inst::bare(Opcode::Halt),
        ];
        // The joined baseline saturates to Unknown ...
        assert_eq!(class_at(&classify_insts(&insts), 3), SiteClass::Unknown);
        // ... the split analysis proves the stronger fact.
        assert_eq!(class_at(&classify_loops(&insts), 3), SiteClass::NeverSingle);
    }

    #[test]
    fn loop_split_proves_post_increment_writeback_at_most_once() {
        // 0: li x1, 0 ; 1: li x2, 4
        // 2: ld.post x3, [x1], 8 ; 3: subi x2, x2, 1
        // 4: bne x2, xzr, @2 ; 5: halt
        // The writeback at 2 is read 0 times on exit, exactly once
        // (by the redefining next ld.post) when carried.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0),
            Inst::ri(Opcode::Li, reg::x(2), 4),
            Inst::load_post(Opcode::LdPost, reg::x(3), reg::x(1), 8),
            Inst::rri(Opcode::Addi, reg::x(2), reg::x(2), -1),
            Inst::branch(Opcode::Bne, reg::x(2), reg::zero(), 2),
            Inst::bare(Opcode::Halt),
        ];
        let wb = |c: &Classification| {
            c.sites
                .iter()
                .find(|s| s.site.pc == 2 && s.site.slot == DefSlot::Writeback)
                .expect("writeback site")
                .class
        };
        assert_eq!(wb(&classify_insts(&insts)), SiteClass::Unknown);
        assert_eq!(wb(&classify_loops(&insts)), SiteClass::AtMostOnce);
    }

    #[test]
    fn loop_split_keeps_genuinely_variable_counts_unknown() {
        // The induction-variable shape (1 consumer on exit, 2 when
        // carried) is genuinely path-dependent: still Unknown.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 4),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), -1),
            Inst::branch(Opcode::Bne, reg::x(1), reg::zero(), 1),
            Inst::bare(Opcode::Halt),
        ];
        assert_eq!(class_at(&classify_loops(&insts), 1), SiteClass::Unknown);
    }

    #[test]
    fn loop_split_agrees_with_baseline_on_straight_line_code() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::x(1)),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let base = classify_insts(&insts);
        let split = classify_loops(&insts);
        for (a, b) in base.sites.iter().zip(split.sites.iter()) {
            assert_eq!(a.site, b.site);
            assert_eq!(a.class, b.class);
            assert_eq!(a.min_consumers, b.min_consumers);
            assert_eq!(a.max_consumers, b.max_consumers);
        }
    }

    #[test]
    fn classify_stores_reports_overwritten() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0x1000),
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = Cfg::build(&insts, 0);
        let stores = classify_stores(&cfg, &insts);
        assert_eq!(stores.len(), 2);
        assert_eq!(stores[0].pc, 1);
        assert_eq!(stores[0].fate, StoreFate::Overwritten);
        assert_eq!(stores[1].fate, StoreFate::Observable);
    }
}
