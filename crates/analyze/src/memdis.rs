//! Conservative store/load disambiguation over TRISC address
//! expressions.
//!
//! Addresses are value-numbered *within a basic block*: every register
//! holds an opaque root value plus a known constant displacement, `li`
//! constants and the zero register share the absolute root, and the
//! pointer-shaped definitions the kernels actually use (`addi r, s, k`,
//! `mov`, post-increment writebacks) propagate the root with a shifted
//! displacement instead of killing it. Two references disambiguate
//! exactly when they share a root and their byte ranges provably do or
//! do not overlap; everything else is may-alias. The analysis never
//! crosses a block boundary, so its proofs are local and trivially
//! sound.

use crate::cfg::Cfg;
use crate::regset::{reg_bit, NUM_REGS};
use regshare_isa::{DefSlot, Inst, Opcode};

/// The value number shared by all compile-time-constant addresses
/// (`li` results and the zero register).
pub const ABS_ROOT: u32 = 0;

/// A memory reference with a block-locally value-numbered address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Instruction index of the access.
    pub pc: usize,
    /// Value number of the address root ([`ABS_ROOT`] for absolute
    /// addresses; fresh numbers for opaque values).
    pub root: u32,
    /// Byte displacement of the first accessed byte from the root.
    pub disp: i64,
    /// Access width in bytes.
    pub width: u8,
    /// True for stores, false for loads.
    pub is_store: bool,
}

/// True unless the two references provably touch disjoint bytes: same
/// root with non-overlapping `[disp, disp+width)` ranges.
pub fn may_alias(a: &MemRef, b: &MemRef) -> bool {
    if a.root != b.root {
        return true;
    }
    a.disp < b.disp + b.width as i64 && b.disp < a.disp + a.width as i64
}

/// True when `outer` provably overwrites every byte `inner` wrote.
pub fn covers(outer: &MemRef, inner: &MemRef) -> bool {
    outer.root == inner.root
        && outer.disp <= inner.disp
        && inner.disp + inner.width as i64 <= outer.disp + outer.width as i64
}

/// Tracks `(root, displacement)` per register through one block.
struct ValueNumbers {
    map: [Option<(u32, i64)>; NUM_REGS],
    next: u32,
}

impl ValueNumbers {
    fn new() -> Self {
        ValueNumbers {
            map: [None; NUM_REGS],
            next: ABS_ROOT + 1,
        }
    }

    fn lookup(&mut self, r: regshare_isa::ArchReg) -> (u32, i64) {
        let bit = reg_bit(r);
        if let Some(v) = self.map[bit] {
            return v;
        }
        let v = if r == regshare_isa::reg::zero() {
            (ABS_ROOT, 0)
        } else {
            self.next += 1;
            (self.next - 1, 0)
        };
        self.map[bit] = Some(v);
        v
    }

    fn set(&mut self, r: regshare_isa::ArchReg, v: (u32, i64)) {
        self.map[reg_bit(r)] = Some(v);
    }

    fn fresh(&mut self, r: regshare_isa::ArchReg) {
        self.next += 1;
        self.map[reg_bit(r)] = Some((self.next - 1, 0));
    }

    /// Applies the definitions of `inst`, preserving roots for the
    /// pointer-arithmetic shapes whose result is base + constant.
    fn apply_defs(&mut self, inst: &Inst) {
        match inst.opcode {
            Opcode::Addi => {
                if let (Some(rd), Some(rs)) = (inst.dst(), inst.sources().next()) {
                    let (root, disp) = self.lookup(rs);
                    self.set(rd, (root, disp.wrapping_add(inst.imm)));
                } else if let Some(rd) = inst.dst() {
                    self.fresh(rd);
                }
            }
            Opcode::Mov => {
                if let (Some(rd), Some(rs)) = (inst.dst(), inst.sources().next()) {
                    let v = self.lookup(rs);
                    self.set(rd, v);
                } else if let Some(rd) = inst.dst() {
                    // mov rd, xzr: an absolute zero.
                    self.set(rd, (ABS_ROOT, 0));
                }
            }
            Opcode::Li => {
                if let Some(rd) = inst.dst() {
                    self.set(rd, (ABS_ROOT, inst.imm));
                }
            }
            op if op.is_post_increment() => {
                // The writeback is base + stride: shift the root.
                for (slot, reg) in inst.defs() {
                    match slot {
                        DefSlot::Writeback => {
                            let (root, disp) = self.lookup(reg);
                            self.set(reg, (root, disp.wrapping_add(inst.imm)));
                        }
                        DefSlot::Primary => self.fresh(reg),
                    }
                }
            }
            _ => {
                for (_, reg) in inst.defs() {
                    self.fresh(reg);
                }
            }
        }
    }
}

/// Value-numbers every memory reference, block by block. Returns one
/// vector per basic block, each in program order.
pub fn block_mem_refs(cfg: &Cfg, insts: &[Inst]) -> Vec<Vec<MemRef>> {
    cfg.blocks()
        .iter()
        .map(|block| {
            let mut vn = ValueNumbers::new();
            let mut refs = Vec::new();
            for (pc, inst) in insts.iter().enumerate().take(block.end).skip(block.start) {
                if inst.opcode.is_mem() {
                    if let Some(base) = inst.raw_sources()[0] {
                        let (root, disp) = vn.lookup(base);
                        let offset = if inst.opcode.is_post_increment() {
                            0 // access precedes the bump
                        } else {
                            inst.imm
                        };
                        refs.push(MemRef {
                            pc,
                            root,
                            disp: disp.wrapping_add(offset),
                            width: inst.opcode.mem_width(),
                            is_store: inst.opcode.is_store(),
                        });
                    }
                }
                vn.apply_defs(inst);
            }
            refs
        })
        .collect()
}

/// Provably-dead stores: reachable stores whose every byte is
/// overwritten by a later store in the same block before any load that
/// may observe it. Stores still pending at a block boundary are never
/// reported — memory is program output, and another block (or the
/// program's consumer) may read it. Returns instruction indices in
/// ascending order.
pub fn dead_stores(cfg: &Cfg, insts: &[Inst]) -> Vec<usize> {
    let mut out = Vec::new();
    for (b, refs) in block_mem_refs(cfg, insts).iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for (i, s) in refs.iter().enumerate() {
            if !s.is_store {
                continue;
            }
            for later in &refs[i + 1..] {
                if later.is_store {
                    if covers(later, s) {
                        out.push(s.pc);
                        break;
                    }
                    // A partially-overlapping store neither observes nor
                    // fully replaces the bytes; keep scanning.
                } else if may_alias(later, s) {
                    break; // possibly observed by this load
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Inst, Opcode};

    fn cfg_of(insts: &[Inst]) -> Cfg {
        Cfg::build(insts, 0)
    }

    #[test]
    fn same_base_disjoint_offsets_disambiguate() {
        // st [x1+0]; ld [x1+8] — provably disjoint; ld [x1+4] overlaps
        // the 8-byte store.
        let insts = vec![
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(1), 8),
            Inst::load(Opcode::Ld, reg::x(4), reg::x(1), 4),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let refs = &block_mem_refs(&cfg, &insts)[cfg.block_of(0)];
        assert_eq!(refs.len(), 3);
        assert!(!may_alias(&refs[0], &refs[1]));
        assert!(may_alias(&refs[0], &refs[2]));
    }

    #[test]
    fn pointer_bump_keeps_the_root() {
        // st.post [x1], 8 ; st [x1] — the second store is 8 bytes past
        // the first: same root, disjoint.
        let insts = vec![
            Inst::store_post(Opcode::StPost, reg::x(2), reg::x(1), 8),
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let refs = &block_mem_refs(&cfg, &insts)[cfg.block_of(0)];
        assert_eq!(refs[0].root, refs[1].root);
        assert_eq!(refs[1].disp - refs[0].disp, 8);
        assert!(!may_alias(&refs[0], &refs[1]));
    }

    #[test]
    fn li_constants_are_absolute() {
        // Two different li bases: provably disjoint absolute ranges.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0x1000),
            Inst::ri(Opcode::Li, reg::x(2), 0x2000),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 0),
            Inst::load(Opcode::Ld, reg::x(4), reg::x(2), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let refs = &block_mem_refs(&cfg, &insts)[cfg.block_of(0)];
        assert_eq!(refs[0].root, ABS_ROOT);
        assert_eq!(refs[1].root, ABS_ROOT);
        assert!(!may_alias(&refs[0], &refs[1]));
    }

    #[test]
    fn dead_store_found_only_without_intervening_observer() {
        // st [x1+0] ; st [x1+0]      -> first is dead
        // st [x1+8] ; ld [x1+8] ; st [x1+8] -> observed, not dead
        let insts = vec![
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 0),
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 8),
            Inst::load(Opcode::Ld, reg::x(4), reg::x(1), 8),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 8),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        assert_eq!(dead_stores(&cfg, &insts), vec![0]);
    }

    #[test]
    fn unknown_base_redefinition_blocks_the_proof() {
        // The base is clobbered by an opaque add between the stores, so
        // nothing is provable.
        let insts = vec![
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(5)),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        assert!(dead_stores(&cfg, &insts).is_empty());
    }

    #[test]
    fn narrow_store_does_not_kill_wide_store() {
        // An 8-byte store followed by a 1-byte store at the same
        // address: 7 bytes survive.
        let insts = vec![
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::store(Opcode::Stb, reg::x(3), reg::x(1), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        assert!(dead_stores(&cfg, &insts).is_empty());
        // The reverse — wide store covering a narrow one — is dead.
        let insts = vec![
            Inst::store(Opcode::Stb, reg::x(3), reg::x(1), 0),
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        assert_eq!(dead_stores(&cfg, &insts), vec![0]);
    }
}
