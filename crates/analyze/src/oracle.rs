//! Static-vs-dynamic sharing oracle.
//!
//! Runs a program on the functional [`Machine`], counts how many times
//! each dynamically-produced value is actually consumed, and checks the
//! observation against the static classification of its producing site:
//!
//! * a [`SiteClass::Dead`] site must never have a consumed instance,
//! * a site with provable minimum ≥ 2 must never have an instance with
//!   fewer than 2 consumers,
//! * a *guaranteed-single* site (min = max = 1) must have exactly one
//!   consumer per instance,
//!
//! for complete traces (the program halted within the budget). The
//! instance-weighted counts also bracket the paper's Fig. 1 dynamic
//! single-use fraction: instances produced at sites that are not
//! provably dead or multi-consumer are the static *upper* bound, and
//! instances at guaranteed-single sites the *lower* bound. Site-level
//! (unweighted) fractions deliberately do not bracket the dynamic
//! number — sites execute with wildly different frequencies — which is
//! exactly why the oracle weights by execution count.

use crate::cfg::Cfg;
use crate::classify::{classify, ClassifiedSite, SiteClass};
use crate::dataflow::MAX_SAT;
use regshare_isa::{DefSlot, Machine, Program, StopReason};
use serde::Serialize;
use std::collections::HashMap;

/// A disagreement between the static classification and the observed
/// execution — always a bug in one of the two.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Instruction index of the producing site.
    pub pc: u32,
    /// True when the violating definition is a post-increment base
    /// writeback rather than the primary destination.
    pub writeback: bool,
    /// Observed consumer count of the offending instance.
    pub observed: u32,
    /// What the static analysis claimed.
    pub claimed: String,
}

/// Aggregate result of one oracle run.
#[derive(Debug, Clone, Serialize)]
pub struct OracleReport {
    /// The program halted within the instruction budget, so every
    /// consumer count is final and the soundness checks are exact.
    pub trace_complete: bool,
    /// Dynamic instructions retired.
    pub retired: u64,
    /// Dynamic register-writing instances (values produced).
    pub def_instances: u64,
    /// Instances consumed exactly once.
    pub single_use_instances: u64,
    /// Instances produced at sites *not* statically classified dead or
    /// multi-consumer — the weighted static upper bound on single use.
    pub upper_bound_instances: u64,
    /// Instances produced at guaranteed-single sites (min = max = 1) —
    /// the weighted static lower bound on single use.
    pub lower_bound_instances: u64,
    /// Instances whose single consumer also redefined the register
    /// (the paper's safely-reusable case), as observed dynamically.
    pub single_use_redefining_instances: u64,
    /// Static-vs-dynamic disagreements (must be empty on complete
    /// traces of lint-clean programs).
    pub violations: Vec<Violation>,
}

impl OracleReport {
    /// Observed fraction of values consumed exactly once.
    pub fn single_use_fraction(&self) -> f64 {
        ratio(self.single_use_instances, self.def_instances)
    }

    /// Weighted static upper bound on [`OracleReport::single_use_fraction`].
    pub fn upper_bound_fraction(&self) -> f64 {
        ratio(self.upper_bound_instances, self.def_instances)
    }

    /// Weighted static lower bound on [`OracleReport::single_use_fraction`].
    pub fn lower_bound_fraction(&self) -> f64 {
        ratio(self.lower_bound_instances, self.def_instances)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

struct Instance {
    site: (usize, DefSlot),
    consumers: u32,
    /// All consumers so far redefined the register they read.
    redefining: bool,
}

/// Runs `program` for at most `max_instructions` and cross-checks the
/// dynamic consumer counts against the static classification.
///
/// # Errors
///
/// Returns the functional machine's error string if execution faults
/// (wild PC, misaligned access, …) — lint-clean programs don't.
pub fn oracle_check(program: &Program, max_instructions: u64) -> Result<OracleReport, String> {
    let insts = program.insts();
    let cfg = Cfg::build(insts, program.entry());
    let classification = classify(&cfg, insts);
    let class_of: HashMap<(usize, DefSlot), ClassifiedSite> = classification
        .sites
        .iter()
        .map(|s| ((s.site.pc, s.site.slot), *s))
        .collect();

    let mut machine = Machine::new(program.clone());
    let (trace, stop) = machine
        .run_trace(max_instructions)
        .map_err(|e| format!("{e:?}"))?;
    let trace_complete = stop == StopReason::Halted;

    // Replay the trace counting consumers per dynamic instance, with the
    // same semantics as the static analysis: an instruction consumes a
    // value once per unique register read, and reads happen before the
    // instruction's own writes.
    let mut producer_of: HashMap<regshare_isa::ArchReg, usize> = HashMap::new();
    let mut instances: Vec<Instance> = Vec::new();
    for r in &trace {
        for u in r.inst.uses() {
            if let Some(&id) = producer_of.get(&u) {
                instances[id].consumers += 1;
                let redefines = r.inst.defs().any(|(_, d)| d == u);
                instances[id].redefining &= redefines;
            }
        }
        for (slot, d) in r.inst.defs() {
            let id = instances.len();
            instances.push(Instance {
                site: (r.pc as usize, slot),
                consumers: 0,
                redefining: true,
            });
            producer_of.insert(d, id);
        }
    }

    let mut report = OracleReport {
        trace_complete,
        retired: machine.retired(),
        def_instances: instances.len() as u64,
        single_use_instances: 0,
        upper_bound_instances: 0,
        lower_bound_instances: 0,
        single_use_redefining_instances: 0,
        violations: Vec::new(),
    };
    for inst in &instances {
        if inst.consumers == 1 {
            report.single_use_instances += 1;
            if inst.redefining {
                report.single_use_redefining_instances += 1;
            }
        }
        let site = class_of
            .get(&inst.site)
            .expect("every executed instruction is in a statically reachable block");
        if !matches!(site.class, SiteClass::Dead | SiteClass::MultiConsumer) {
            report.upper_bound_instances += 1;
        }
        let guaranteed_single = site.min_consumers == 1 && site.max_consumers == 1;
        if guaranteed_single {
            report.lower_bound_instances += 1;
        }
        // Soundness: observed counts must respect the static bounds.
        // Without a complete trace the tail values may still gain
        // consumers, so only the upper bound is checkable.
        let too_many = site.max_consumers < MAX_SAT && inst.consumers > site.max_consumers as u32;
        let too_few = trace_complete && inst.consumers < site.min_consumers as u32;
        if too_many || too_few {
            report.violations.push(Violation {
                pc: inst.site.0 as u32,
                writeback: inst.site.1 == DefSlot::Writeback,
                observed: inst.consumers,
                claimed: format!(
                    "{:?} (min {}, max {})",
                    site.class, site.min_consumers, site.max_consumers
                ),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Asm};

    fn counted_loop(n: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg::x(1), n);
        a.li(reg::x(2), 0);
        let top = a.label();
        a.bind(top);
        a.add(reg::x(2), reg::x(2), reg::x(1));
        a.subi(reg::x(1), reg::x(1), 1);
        a.bne(reg::x(1), reg::zero(), top);
        a.halt();
        a.assemble()
    }

    #[test]
    fn bounds_bracket_the_dynamic_fraction() {
        let p = counted_loop(50);
        let r = oracle_check(&p, 100_000).expect("runs");
        assert!(r.trace_complete);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.def_instances > 0);
        assert!(r.lower_bound_instances <= r.single_use_instances);
        assert!(r.single_use_instances <= r.upper_bound_instances);
    }

    #[test]
    fn straight_line_exact_agreement() {
        // Every site is branch-free, so the static classification is
        // exact and the bounds collapse onto the dynamic number.
        let mut a = Asm::new();
        a.li(reg::x(1), 7);
        a.addi(reg::x(2), reg::x(1), 1); // x1: 1 consumer
        a.add(reg::x(3), reg::x(2), reg::x(2)); // x2: 1 consumer (dedup)
        a.add(reg::x(4), reg::x(3), reg::x(2)); // x3: 1, x2 again -> 2 total
        a.halt();
        let r = oracle_check(&a.assemble(), 1_000).expect("runs");
        assert!(r.trace_complete);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lower_bound_instances, r.single_use_instances);
        assert_eq!(r.upper_bound_instances, r.single_use_instances);
    }

    #[test]
    fn incomplete_trace_is_reported() {
        let p = counted_loop(1_000_000);
        let r = oracle_check(&p, 100).expect("runs");
        assert!(!r.trace_complete);
        // The upper bound still holds on truncated traces.
        assert!(r.single_use_instances <= r.upper_bound_instances);
    }
}
