//! Control-flow graph construction over TRISC instruction sequences.
//!
//! Branch targets in TRISC are *instruction indices* (the `byte_pc =
//! index * 4` convention exists only for caches and predictors), so the
//! CFG builder works directly on index arithmetic. The builder is total:
//! it accepts malformed programs (the linter's whole point) by simply not
//! creating edges for out-of-range targets — the linter reports those
//! separately.

use regshare_isa::{Inst, Opcode};

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
    /// The block ends with `halt`: execution stops normally.
    pub halts: bool,
    /// Control falls past the last instruction of the program (or the
    /// block's terminator targets nothing valid): execution stops
    /// abnormally.
    pub falls_off: bool,
}

impl BasicBlock {
    /// The index of the last instruction in the block.
    pub fn last(&self) -> usize {
        self.end - 1
    }
}

/// A control-flow graph: the partition of a program into basic blocks
/// plus reachability, exit-reachability, and dominator information.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    entry_block: usize,
    /// Instruction index → owning block id.
    block_of: Vec<usize>,
    /// Reachable from the entry block.
    reachable: Vec<bool>,
    /// Some path from this block leaves the program (halt or fall-off).
    can_reach_exit: Vec<bool>,
    /// Some path from this block reaches a `halt` (normal termination).
    can_reach_halt: Vec<bool>,
    /// Immediate dominator per block (`None` for the entry block and for
    /// unreachable blocks).
    idom: Vec<Option<usize>>,
    /// The program contains an indirect jump (`jalr`), whose successors
    /// are conservatively every block.
    has_indirect: bool,
}

/// True when the opcode carries a *direct* branch target the CFG can
/// follow (conditional branches and `jal`; `jalr` is indirect).
fn has_direct_target(op: Opcode) -> bool {
    op.is_cond_branch() || op == Opcode::Jal
}

/// True when the opcode ends a basic block.
fn is_terminator(op: Opcode) -> bool {
    op.is_branch() || op == Opcode::Halt
}

impl Cfg {
    /// Builds the CFG of `insts` with the given entry instruction index.
    ///
    /// Every instruction is assigned to a block (including unreachable
    /// ones, so the linter can report them); edges to out-of-range
    /// targets are dropped and the source block marked as falling off.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty or `entry` is out of range — callers
    /// (the linter front-end) must check those first.
    pub fn build(insts: &[Inst], entry: u32) -> Self {
        assert!(!insts.is_empty(), "cannot build a CFG of an empty program");
        assert!((entry as usize) < insts.len(), "entry {entry} out of range");
        let n = insts.len();

        // Leaders: instruction 0 (so the partition is total), the entry,
        // every in-range direct target, and every instruction following a
        // terminator.
        let mut leader = vec![false; n];
        leader[0] = true;
        leader[entry as usize] = true;
        for (i, inst) in insts.iter().enumerate() {
            if has_direct_target(inst.opcode) {
                let t = inst.target as usize;
                if t < n {
                    leader[t] = true;
                }
            }
            if is_terminator(inst.opcode) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (i, &lead) in leader.iter().enumerate() {
            if i > start && lead {
                blocks.push(BasicBlock {
                    start,
                    end: i,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    halts: false,
                    falls_off: false,
                });
                start = i;
            }
        }
        blocks.push(BasicBlock {
            start,
            end: n,
            succs: Vec::new(),
            preds: Vec::new(),
            halts: false,
            falls_off: false,
        });
        for (b, block) in blocks.iter().enumerate() {
            block_of[block.start..block.end].fill(b);
        }

        let has_indirect = insts.iter().any(|i| i.opcode == Opcode::Jalr);
        let num_blocks = blocks.len();
        for block in &mut blocks {
            let last = block.last();
            let op = insts[last].opcode;
            let mut succs: Vec<usize> = Vec::new();
            let mut halts = false;
            let mut falls_off = false;
            match op {
                Opcode::Halt => halts = true,
                Opcode::Jal => {
                    let t = insts[last].target as usize;
                    if t < n {
                        succs.push(block_of[t]);
                    } else {
                        falls_off = true;
                    }
                }
                Opcode::Jalr => {
                    // Indirect: any block could be the target.
                    succs.extend(0..num_blocks);
                }
                _ if op.is_cond_branch() => {
                    let t = insts[last].target as usize;
                    if t < n {
                        succs.push(block_of[t]);
                    } else {
                        falls_off = true;
                    }
                    if last + 1 < n {
                        let fall = block_of[last + 1];
                        if !succs.contains(&fall) {
                            succs.push(fall);
                        }
                    } else {
                        falls_off = true;
                    }
                }
                _ => {
                    // Plain fall-through.
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    } else {
                        falls_off = true;
                    }
                }
            }
            block.succs = succs;
            block.halts = halts;
            block.falls_off = falls_off;
        }
        for b in 0..num_blocks {
            let succs = blocks[b].succs.clone();
            for s in succs {
                if !blocks[s].preds.contains(&b) {
                    blocks[s].preds.push(b);
                }
            }
        }

        let entry_block = block_of[entry as usize];
        let reachable = forward_closure(&blocks, entry_block);
        let can_reach_exit = backward_closure(&blocks, |b: &BasicBlock| b.halts || b.falls_off);
        let can_reach_halt = backward_closure(&blocks, |b: &BasicBlock| b.halts);
        let mut cfg = Cfg {
            blocks,
            entry_block,
            block_of,
            reachable,
            can_reach_exit,
            can_reach_halt,
            idom: Vec::new(),
            has_indirect,
        };
        cfg.idom = cfg.compute_idoms();
        cfg
    }

    /// The basic blocks, in program order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The id of the block containing the entry instruction.
    pub fn entry_block(&self) -> usize {
        self.entry_block
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// True when block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// True when some path from block `b` leaves the program (through
    /// `halt` or by falling off the end).
    pub fn can_reach_exit(&self, b: usize) -> bool {
        self.can_reach_exit[b]
    }

    /// True when some path from block `b` reaches a `halt`.
    pub fn can_reach_halt(&self, b: usize) -> bool {
        self.can_reach_halt[b]
    }

    /// The program contains an indirect jump (`jalr`).
    pub fn has_indirect(&self) -> bool {
        self.has_indirect
    }

    /// Immediate dominators: `idom(b)` for every block, `None` for the
    /// entry block and for blocks unreachable from the entry.
    pub fn idoms(&self) -> &[Option<usize>] {
        &self.idom
    }

    /// True when the CFG edge `from → to` is a loop back edge (the
    /// target dominates the source). On irreducible regions — which the
    /// conservative `jalr`-to-everywhere edges create — some retreating
    /// edges are *not* dominated and therefore not detected; callers
    /// (the loop-split consumer analysis) only ever treat detection as
    /// an opportunity, never a requirement, so a missed back edge costs
    /// precision, not soundness.
    pub fn is_back_edge(&self, from: usize, to: usize) -> bool {
        self.blocks[from].succs.contains(&to) && self.dominates(to, from)
    }

    /// True when block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.reachable[b] {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Reverse postorder over the reachable blocks (the iteration order
    /// the forward dataflow solvers use).
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut order = Vec::new();
        let mut state = vec![0u8; self.blocks.len()]; // 0 unseen, 1 open, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(self.entry_block, 0)];
        state[self.entry_block] = 1;
        while let Some(&(b, next)) = stack.last() {
            if next < self.blocks[b].succs.len() {
                stack.last_mut().expect("just checked non-empty").1 += 1;
                let s = self.blocks[b].succs[next];
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Cooper–Harvey–Kennedy iterative immediate-dominator computation.
    fn compute_idoms(&self) -> Vec<Option<usize>> {
        let rpo = self.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; self.blocks.len()];
        idom[self.entry_block] = Some(self.entry_block);
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo_index[a] > rpo_index[b] {
                    a = idom[a].expect("processed block has an idom");
                }
                while rpo_index[b] > rpo_index[a] {
                    b = idom[b].expect("processed block has an idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == self.entry_block {
                    continue;
                }
                let mut new_idom: Option<usize> = None;
                for &p in &self.blocks[b].preds {
                    if idom[p].is_none() {
                        continue; // not yet processed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        // The entry's self-idom is an algorithmic artifact; expose None.
        idom[self.entry_block] = None;
        idom
    }
}

/// Blocks reachable from `from` following successor edges.
fn forward_closure(blocks: &[BasicBlock], from: usize) -> Vec<bool> {
    let mut seen = vec![false; blocks.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(b) = stack.pop() {
        for &s in &blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Blocks from which a block satisfying `is_exit` is reachable (including
/// the exit blocks themselves).
fn backward_closure(blocks: &[BasicBlock], is_exit: impl Fn(&BasicBlock) -> bool) -> Vec<bool> {
    let mut seen = vec![false; blocks.len()];
    let mut stack: Vec<usize> = Vec::new();
    for (b, block) in blocks.iter().enumerate() {
        if is_exit(block) {
            seen[b] = true;
            stack.push(b);
        }
    }
    while let Some(b) = stack.pop() {
        for (p, block) in blocks.iter().enumerate() {
            if !seen[p] && block.succs.contains(&b) {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Inst, Opcode};

    fn halt() -> Inst {
        Inst::bare(Opcode::Halt)
    }

    #[test]
    fn straight_line_is_one_block() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
            halt(),
        ];
        let cfg = Cfg::build(&insts, 0);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].halts);
        assert!(cfg.is_reachable(0));
        assert!(cfg.can_reach_halt(0));
    }

    #[test]
    fn loop_shape_blocks_and_edges() {
        // 0: li x1, 3
        // 1: subi x1, x1, 1   <- loop top
        // 2: bne x1, xzr, @1
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 3),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), -1),
            Inst::branch(Opcode::Bne, reg::x(1), reg::zero(), 1),
            halt(),
        ];
        let cfg = Cfg::build(&insts, 0);
        assert_eq!(cfg.blocks().len(), 3);
        let body = cfg.block_of(1);
        assert_eq!(cfg.block_of(2), body);
        let exit = cfg.block_of(3);
        assert!(cfg.blocks()[body].succs.contains(&body));
        assert!(cfg.blocks()[body].succs.contains(&exit));
        assert!(cfg.can_reach_exit(body));
        // Entry block dominates the body; body dominates the exit.
        assert!(cfg.dominates(cfg.entry_block(), body));
        assert!(cfg.dominates(body, exit));
        assert!(!cfg.dominates(exit, body));
        // The self edge is the loop back edge; the exit edge is not.
        assert!(cfg.is_back_edge(body, body));
        assert!(!cfg.is_back_edge(body, exit));
    }

    #[test]
    fn unreachable_block_is_partitioned_but_flagged() {
        // 0: jal @2 ; 1: nop (unreachable) ; 2: halt
        let insts = vec![Inst::jal(None, 2), Inst::bare(Opcode::Nop), halt()];
        let cfg = Cfg::build(&insts, 0);
        assert_eq!(cfg.blocks().len(), 3);
        let dead = cfg.block_of(1);
        assert!(!cfg.is_reachable(dead));
        assert!(cfg.is_reachable(cfg.block_of(2)));
    }

    #[test]
    fn fall_off_end_detected() {
        let insts = vec![Inst::ri(Opcode::Li, reg::x(1), 1)];
        let cfg = Cfg::build(&insts, 0);
        assert!(cfg.blocks()[0].falls_off);
        assert!(cfg.can_reach_exit(0));
        assert!(!cfg.can_reach_halt(0));
    }

    #[test]
    fn infinite_loop_cannot_reach_exit() {
        // 0: jal @0 ; 1: halt (unreachable)
        let insts = vec![Inst::jal(None, 0), halt()];
        let cfg = Cfg::build(&insts, 0);
        let l = cfg.block_of(0);
        assert!(!cfg.can_reach_exit(l));
        assert!(!cfg.can_reach_halt(l));
        assert!(!cfg.is_reachable(cfg.block_of(1)));
    }

    #[test]
    fn out_of_range_target_drops_edge() {
        let insts = vec![Inst::branch(Opcode::Beq, reg::x(1), reg::x(2), 99), halt()];
        let cfg = Cfg::build(&insts, 0);
        let b = cfg.block_of(0);
        // Only the fall-through edge survives; the block is marked as
        // potentially falling off through the bad target.
        assert_eq!(cfg.blocks()[b].succs, vec![cfg.block_of(1)]);
        assert!(cfg.blocks()[b].falls_off);
    }

    #[test]
    fn jalr_connects_to_every_block() {
        let insts = vec![
            Inst::jalr(None, reg::x(1), 0),
            Inst::bare(Opcode::Nop),
            halt(),
        ];
        let cfg = Cfg::build(&insts, 0);
        assert!(cfg.has_indirect());
        assert_eq!(cfg.blocks()[0].succs.len(), cfg.blocks().len());
        assert!((0..cfg.blocks().len()).all(|b| cfg.is_reachable(b)));
    }
}
