//! Worklist dataflow framework plus the concrete analyses the classifier
//! and linter consume: liveness, reaching definitions (def-use chains),
//! maybe-uninitialized registers, and the per-register consumer-count
//! analysis behind the static sharing bounds.

use crate::cfg::Cfg;
use crate::regset::{reg_bit, RegSet, NUM_REGS};
use regshare_isa::{ArchReg, DefSlot, Inst};

/// A distributive analysis over basic blocks.
///
/// The solvers ([`solve_forward`], [`solve_backward`]) run the classic
/// worklist iteration: facts start at the analysis' most optimistic value
/// ([`Analysis::top`]), block inputs join facts flowing along CFG edges,
/// and blocks are re-evaluated until nothing changes. Termination follows
/// from finite fact lattices and monotone transfer functions — every
/// analysis in this module saturates its counters.
pub trait Analysis {
    /// The fact attached to each program point.
    type Fact: Clone + PartialEq;

    /// The most optimistic fact (identity of [`Analysis::join`]); every
    /// block boundary starts here.
    fn top(&self) -> Self::Fact;

    /// The fact at the program boundary: entry (forward analyses) or
    /// exit, i.e. `halt` / fall-off (backward analyses).
    fn boundary(&self) -> Self::Fact;

    /// Combines facts arriving over multiple CFG edges.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact);

    /// Transfers a fact across one instruction, in the analysis
    /// direction (the solver feeds instructions in the right order).
    fn transfer(&self, pc: usize, inst: &Inst, fact: &mut Self::Fact);

    /// Backward analyses only: treat block `b` as flowing the boundary
    /// fact in addition to its successors. The default covers blocks
    /// from which execution can leave the program directly; *must*
    /// analyses (like the minimum consumer count) override this to also
    /// pin blocks that can never reach an exit, which would otherwise
    /// keep the unsound optimistic `top`.
    fn is_virtual_exit(&self, cfg: &Cfg, b: usize) -> bool {
        let block = &cfg.blocks()[b];
        block.halts || block.falls_off
    }
}

/// Per-block input/output facts produced by a solver. For a forward
/// analysis `input` holds the fact before `start` and `output` after
/// `end`; for a backward analysis `input` is the fact *after* the block's
/// last instruction and `output` the fact before `start`.
#[derive(Debug, Clone)]
pub struct BlockFacts<F> {
    /// Fact flowing into each block (in analysis direction).
    pub input: Vec<F>,
    /// Fact flowing out of each block (in analysis direction).
    pub output: Vec<F>,
}

/// Solves a forward analysis to fixpoint.
pub fn solve_forward<A: Analysis>(cfg: &Cfg, insts: &[Inst], a: &A) -> BlockFacts<A::Fact> {
    let n = cfg.blocks().len();
    let mut input = vec![a.top(); n];
    let mut output = vec![a.top(); n];
    input[cfg.entry_block()] = a.boundary();
    let mut work: Vec<usize> = cfg.reverse_postorder();
    let mut queued = vec![false; n];
    for &b in &work {
        queued[b] = true;
    }
    work.reverse(); // treat as a stack: pop from the back in RPO order
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut fact = if b == cfg.entry_block() {
            a.boundary()
        } else {
            a.top()
        };
        for &p in &cfg.blocks()[b].preds {
            a.join(&mut fact, &output[p]);
        }
        input[b] = fact.clone();
        let block = &cfg.blocks()[b];
        for (off, inst) in insts[block.start..block.end].iter().enumerate() {
            a.transfer(block.start + off, inst, &mut fact);
        }
        if fact != output[b] {
            output[b] = fact;
            for &s in &cfg.blocks()[b].succs {
                if !queued[s] {
                    queued[s] = true;
                    work.push(s);
                }
            }
        }
    }
    BlockFacts { input, output }
}

/// Solves a backward analysis to fixpoint.
pub fn solve_backward<A: Analysis>(cfg: &Cfg, insts: &[Inst], a: &A) -> BlockFacts<A::Fact> {
    let n = cfg.blocks().len();
    let mut input = vec![a.top(); n];
    let mut output = vec![a.top(); n];
    let mut work: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut fact = a.top();
        if a.is_virtual_exit(cfg, b) {
            a.join(&mut fact, &a.boundary());
        }
        for &s in &cfg.blocks()[b].succs {
            a.join(&mut fact, &output[s]);
        }
        input[b] = fact.clone();
        for pc in (cfg.blocks()[b].start..cfg.blocks()[b].end).rev() {
            a.transfer(pc, &insts[pc], &mut fact);
        }
        if fact != output[b] {
            output[b] = fact;
            for &p in &cfg.blocks()[b].preds {
                if !queued[p] {
                    queued[p] = true;
                    work.push(p);
                }
            }
        }
    }
    BlockFacts { input, output }
}

// ------------------------------------------------------------- liveness

/// Classic backward liveness: which registers may be read before being
/// redefined.
pub struct Liveness;

impl Analysis for Liveness {
    type Fact = RegSet;

    fn top(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn boundary(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn join(&self, into: &mut RegSet, other: &RegSet) {
        *into = into.union(*other);
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut RegSet) {
        for (_, d) in inst.defs() {
            fact.remove(d);
        }
        for u in inst.uses() {
            fact.insert(u);
        }
    }
}

/// Computes live-in / live-out per block.
pub fn liveness(cfg: &Cfg, insts: &[Inst]) -> BlockFacts<RegSet> {
    solve_backward(cfg, insts, &Liveness)
}

// ------------------------------------------------- maybe-uninitialized

/// Forward may-analysis of registers possibly read before any write on
/// some path from the entry. The machine zero-initializes its register
/// files, so a hit is a lint finding rather than undefined behavior.
pub struct MaybeUninit;

impl Analysis for MaybeUninit {
    type Fact = RegSet;

    fn top(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn boundary(&self) -> RegSet {
        // Every register starts unwritten at the entry. The zero
        // register's bit is included but harmless: no `uses()` ever
        // yields it.
        RegSet::ALL
    }

    fn join(&self, into: &mut RegSet, other: &RegSet) {
        *into = into.union(*other);
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut RegSet) {
        // Uses are observed by the linter separately; the transfer only
        // kills definedness.
        for (_, d) in inst.defs() {
            fact.remove(d);
        }
    }
}

/// For every reachable instruction, the registers it reads that may
/// still be unwritten, as `(pc, reg)` pairs in program order.
pub fn uninit_reads(cfg: &Cfg, insts: &[Inst]) -> Vec<(usize, ArchReg)> {
    let facts = solve_forward(cfg, insts, &MaybeUninit);
    let mut hits = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut fact = facts.input[b];
        for (off, inst) in insts[block.start..block.end].iter().enumerate() {
            let pc = block.start + off;
            for u in inst.uses() {
                if fact.contains(u) {
                    hits.push((pc, u));
                }
            }
            MaybeUninit.transfer(pc, inst, &mut fact);
        }
    }
    hits.sort_unstable();
    hits
}

// ------------------------------------------------ reaching definitions

/// A static definition site: an instruction and the destination slot it
/// writes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefSite {
    /// Instruction index of the defining instruction.
    pub pc: usize,
    /// Which destination slot produces the value.
    pub slot: DefSlot,
    /// The defined architectural register.
    pub reg: ArchReg,
}

/// A set of definition sites, one bit per site id.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSet(Vec<u64>);

impl SiteSet {
    fn empty(n: usize) -> Self {
        SiteSet(vec![0; n.div_ceil(64)])
    }

    fn insert(&mut self, id: usize) {
        self.0[id / 64] |= 1 << (id % 64);
    }

    fn remove_all(&mut self, ids: &[usize]) {
        for &id in ids {
            self.0[id / 64] &= !(1 << (id % 64));
        }
    }

    fn union(&mut self, other: &SiteSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    /// Iterates the member ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// Reaching definitions and the static def-use chains they induce.
pub struct DefUse {
    /// Every definition site in the program, in `(pc, slot)` order.
    pub sites: Vec<DefSite>,
    /// For each site id: the instruction indices (reachable ones only)
    /// that may consume the value, in program order.
    pub consumers: Vec<Vec<usize>>,
    /// For each reachable use `(pc, reg)`, the site ids that may reach
    /// it, in site order.
    pub reaching: Vec<((usize, ArchReg), Vec<usize>)>,
}

struct ReachingDefs<'a> {
    num_sites: usize,
    /// Site ids defined by each instruction.
    sites_at: &'a [Vec<usize>],
    /// For each register bit: the ids of all sites defining it (the kill
    /// set of a definition).
    sites_of_reg: &'a [Vec<usize>; NUM_REGS],
    insts_len: usize,
}

impl Analysis for ReachingDefs<'_> {
    type Fact = SiteSet;

    fn top(&self) -> SiteSet {
        SiteSet::empty(self.num_sites)
    }

    fn boundary(&self) -> SiteSet {
        SiteSet::empty(self.num_sites)
    }

    fn join(&self, into: &mut SiteSet, other: &SiteSet) {
        into.union(other);
    }

    fn transfer(&self, pc: usize, inst: &Inst, fact: &mut SiteSet) {
        debug_assert!(pc < self.insts_len);
        for (_, d) in inst.defs() {
            fact.remove_all(&self.sites_of_reg[reg_bit(d)]);
        }
        for &id in &self.sites_at[pc] {
            fact.insert(id);
        }
    }
}

/// Computes reaching definitions and derives static def-use chains over
/// the reachable part of the program.
pub fn def_use(cfg: &Cfg, insts: &[Inst]) -> DefUse {
    let mut sites: Vec<DefSite> = Vec::new();
    let mut sites_at: Vec<Vec<usize>> = vec![Vec::new(); insts.len()];
    let mut sites_of_reg: [Vec<usize>; NUM_REGS] = std::array::from_fn(|_| Vec::new());
    for (pc, inst) in insts.iter().enumerate() {
        for (slot, reg) in inst.defs() {
            let id = sites.len();
            sites.push(DefSite { pc, slot, reg });
            sites_at[pc].push(id);
            sites_of_reg[reg_bit(reg)].push(id);
        }
    }
    let analysis = ReachingDefs {
        num_sites: sites.len(),
        sites_at: &sites_at,
        sites_of_reg: &sites_of_reg,
        insts_len: insts.len(),
    };
    let facts = solve_forward(cfg, insts, &analysis);
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); sites.len()];
    let mut reaching: Vec<((usize, ArchReg), Vec<usize>)> = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let mut fact = facts.input[b].clone();
        for (off, inst) in insts[block.start..block.end].iter().enumerate() {
            let pc = block.start + off;
            for u in inst.uses() {
                let ids: Vec<usize> = fact.iter().filter(|&id| sites[id].reg == u).collect();
                for &id in &ids {
                    consumers[id].push(pc);
                }
                reaching.push(((pc, u), ids));
            }
            analysis.transfer(pc, inst, &mut fact);
        }
    }
    for c in &mut consumers {
        c.sort_unstable();
        c.dedup();
    }
    reaching.sort_unstable_by_key(|(k, _)| *k);
    DefUse {
        sites,
        consumers,
        reaching,
    }
}

// ------------------------------------------- consumer-count analysis

/// Minimum consumer count saturation: 2 proves "never exactly one".
pub const MIN_SAT: u8 = 2;
/// Maximum consumer count saturation, matching the paper's Fig. 2 "6+"
/// histogram bucket.
pub const MAX_SAT: u8 = 7;
/// Optimistic (`top`) value of the minimum component before any path
/// has been observed.
pub const MIN_UNKNOWN: u8 = u8::MAX;

/// Per-register consumer-count bounds at a program point: how many times
/// the register's *current value* will be read before being overwritten,
/// over all paths to program exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCount {
    /// Fewest future reads over any path (saturating at [`MIN_SAT`];
    /// [`MIN_UNKNOWN`] until a path is observed).
    pub min: u8,
    /// Most future reads over any path (saturating at [`MAX_SAT`]).
    pub max: u8,
    /// Every first future read of the value is by an instruction that
    /// also redefines the register (the guaranteed-safe reuse shape).
    pub redefining: bool,
}

/// The consumer-count fact: one [`RegCount`] per register bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountFact(pub [RegCount; NUM_REGS]);

/// Backward analysis computing [`CountFact`]s. Must/may components are
/// solved simultaneously: `min` descends from [`MIN_UNKNOWN`] (a must
/// analysis), `max` ascends from 0 (a may analysis), `redefining`
/// descends from `true`. Blocks that cannot reach the program exit are
/// treated as virtual exits so the must components stay sound (a value
/// consumed once before entering an endless loop must not be classified
/// as multi-consumer).
pub struct UseCounts;

impl Analysis for UseCounts {
    type Fact = CountFact;

    fn top(&self) -> CountFact {
        CountFact(
            [RegCount {
                min: MIN_UNKNOWN,
                max: 0,
                redefining: true,
            }; NUM_REGS],
        )
    }

    fn boundary(&self) -> CountFact {
        CountFact(
            [RegCount {
                min: 0,
                max: 0,
                redefining: true,
            }; NUM_REGS],
        )
    }

    fn join(&self, into: &mut CountFact, other: &CountFact) {
        for (a, b) in into.0.iter_mut().zip(&other.0) {
            a.min = a.min.min(b.min);
            a.max = a.max.max(b.max);
            a.redefining &= b.redefining;
        }
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut CountFact) {
        let mut defines = RegSet::EMPTY;
        for (_, d) in inst.defs() {
            defines.insert(d);
        }
        for u in inst.uses() {
            let c = &mut fact.0[reg_bit(u)];
            let redefined = defines.contains(u);
            // This instruction reads the current value; counts restart
            // behind a redefinition, otherwise accumulate saturating.
            if redefined {
                *c = RegCount {
                    min: 1,
                    max: 1,
                    redefining: true,
                };
            } else {
                c.min = if c.min == MIN_UNKNOWN {
                    MIN_UNKNOWN
                } else {
                    (c.min + 1).min(MIN_SAT)
                };
                c.max = (c.max + 1).min(MAX_SAT);
                c.redefining = false;
            }
        }
        for d in defines.iter() {
            if inst.uses().any(|u| u == d) {
                continue; // handled above: read then redefined
            }
            fact.0[reg_bit(d)] = RegCount {
                min: 0,
                max: 0,
                redefining: true,
            };
        }
    }
}

/// Solves the consumer-count analysis.
pub fn use_counts(cfg: &Cfg, insts: &[Inst]) -> BlockFacts<CountFact> {
    solve_backward(cfg, insts, &UseCounts)
}

impl Analysis for UseCountsWithPin<'_> {
    type Fact = CountFact;

    fn top(&self) -> CountFact {
        UseCounts.top()
    }

    fn boundary(&self) -> CountFact {
        UseCounts.boundary()
    }

    fn join(&self, into: &mut CountFact, other: &CountFact) {
        UseCounts.join(into, other)
    }

    fn transfer(&self, pc: usize, inst: &Inst, fact: &mut CountFact) {
        UseCounts.transfer(pc, inst, fact)
    }

    fn is_virtual_exit(&self, cfg: &Cfg, b: usize) -> bool {
        let block = &cfg.blocks()[b];
        block.halts || block.falls_off || !cfg.can_reach_exit(b)
    }
}

/// [`UseCounts`] with the no-exit pinning described on the type; used by
/// the classifier.
pub struct UseCountsWithPin<'a> {
    /// The CFG the pinning consults (kept for clarity; the solver passes
    /// the same one).
    pub cfg: &'a Cfg,
}

/// Solves the pinned consumer-count analysis the classifier uses.
pub fn use_counts_pinned(cfg: &Cfg, insts: &[Inst]) -> BlockFacts<CountFact> {
    solve_backward(cfg, insts, &UseCountsWithPin { cfg })
}

// ------------------------------------ loop-split consumer counts

/// The `top` (vacuous, join-identity) per-register count.
pub const TOP_COUNT: RegCount = RegCount {
    min: MIN_UNKNOWN,
    max: 0,
    redefining: true,
};

/// [`CountFact`] split by loop context. `exit` bounds the consumer
/// count over futures in which the value dies (is redefined, or the
/// program exits) without ever crossing a loop back edge — the
/// final-iteration context. `carried` bounds futures whose value stays
/// live across at least one back edge — the loop-carried context. The
/// two components partition every real future exactly, which is what
/// lets the classifier prove facts like "never exactly one consumer"
/// (`exit` shows zero, `carried` shows at least two) that the joined
/// [`UseCounts`] analysis saturates to `Unknown`. This is the backward
/// mirror of first-iteration peeling: instead of peeling the entry into
/// the loop, it peels the exit out of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitFact {
    /// Bounds over futures that never cross a back edge.
    pub exit: CountFact,
    /// Bounds over futures that cross at least one back edge while the
    /// value is live.
    pub carried: CountFact,
}

impl SplitFact {
    fn top() -> SplitFact {
        SplitFact {
            exit: UseCounts.top(),
            carried: UseCounts.top(),
        }
    }
}

/// Transfers one instruction backward across a [`SplitFact`]. Reads
/// accumulate into both components (the instruction crosses no edge, so
/// a future's class is unchanged); a redefinition ends the value's
/// lifetime on the spot, so the whole count lands in the no-back-edge
/// `exit` component and `carried` resets to vacuous.
pub fn split_transfer(inst: &Inst, fact: &mut SplitFact) {
    fn bump(c: &mut RegCount) {
        c.min = if c.min == MIN_UNKNOWN {
            MIN_UNKNOWN
        } else {
            (c.min + 1).min(MIN_SAT)
        };
        c.max = (c.max + 1).min(MAX_SAT);
        c.redefining = false;
    }
    let mut defines = RegSet::EMPTY;
    for (_, d) in inst.defs() {
        defines.insert(d);
    }
    for u in inst.uses() {
        let bit = reg_bit(u);
        if defines.contains(u) {
            fact.exit.0[bit] = RegCount {
                min: 1,
                max: 1,
                redefining: true,
            };
            fact.carried.0[bit] = TOP_COUNT;
        } else {
            bump(&mut fact.exit.0[bit]);
            bump(&mut fact.carried.0[bit]);
        }
    }
    for d in defines.iter() {
        if inst.uses().any(|u| u == d) {
            continue; // read-then-redefine, handled above
        }
        fact.exit.0[reg_bit(d)] = RegCount {
            min: 0,
            max: 0,
            redefining: true,
        };
        fact.carried.0[reg_bit(d)] = TOP_COUNT;
    }
}

/// Solves the loop-split consumer-count analysis. The solver is the
/// standard backward worklist with one edge-aware twist: a fact flowing
/// backward over a detected back edge moves wholesale into the
/// `carried` component (whatever happens beyond that edge, the value
/// was live across it), while normal edges join componentwise. Exit
/// boundaries — real and the same no-exit pinning as
/// [`UseCountsWithPin`] — feed only the `exit` component: a dead value
/// crossed no further edges. Vacuous components are the join identity
/// (`min` stays [`MIN_UNKNOWN`], `max` stays 0), so an undetected back
/// edge or an unreachable context can only blur bounds toward
/// `Unknown`, never sharpen them.
pub fn use_counts_split(cfg: &Cfg, insts: &[Inst]) -> BlockFacts<SplitFact> {
    let n = cfg.blocks().len();
    let mut input = vec![SplitFact::top(); n];
    let mut output = vec![SplitFact::top(); n];
    let pin = UseCountsWithPin { cfg };
    let mut work: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(b) = work.pop() {
        queued[b] = false;
        let mut fact = SplitFact::top();
        if pin.is_virtual_exit(cfg, b) {
            UseCounts.join(&mut fact.exit, &UseCounts.boundary());
        }
        for &s in &cfg.blocks()[b].succs {
            if cfg.is_back_edge(b, s) {
                let mut over = output[s].exit.clone();
                UseCounts.join(&mut over, &output[s].carried);
                UseCounts.join(&mut fact.carried, &over);
            } else {
                UseCounts.join(&mut fact.exit, &output[s].exit);
                UseCounts.join(&mut fact.carried, &output[s].carried);
            }
        }
        input[b] = fact.clone();
        for pc in (cfg.blocks()[b].start..cfg.blocks()[b].end).rev() {
            split_transfer(&insts[pc], &mut fact);
        }
        if fact != output[b] {
            output[b] = fact;
            for &p in &cfg.blocks()[b].preds {
                if !queued[p] {
                    queued[p] = true;
                    work.push(p);
                }
            }
        }
    }
    BlockFacts { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::{reg, Inst, Opcode};

    fn cfg_of(insts: &[Inst]) -> Cfg {
        Cfg::build(insts, 0)
    }

    #[test]
    fn liveness_across_a_branch() {
        // 0: li x1, 1
        // 1: beq x2, xzr, @3   (x2 live-in of the program)
        // 2: add x3, x1, x1
        // 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::branch(Opcode::Beq, reg::x(2), reg::zero(), 3),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::x(1)),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let live = liveness(&cfg, &insts);
        let entry = cfg.block_of(0);
        // x2 is read before any write: live into the entry block. x1 is
        // defined first, so not live-in.
        assert!(live.output[entry].contains(reg::x(2)));
        assert!(!live.output[entry].contains(reg::x(1)));
    }

    #[test]
    fn uninit_reads_found_and_ordered() {
        let insts = vec![
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::x(3)),
            Inst::rri(Opcode::Addi, reg::x(4), reg::x(1), 1),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let hits = uninit_reads(&cfg, &insts);
        assert_eq!(hits, vec![(0, reg::x(2)), (0, reg::x(3))]);
    }

    #[test]
    fn uninit_read_on_one_path_only_is_still_flagged() {
        // 0: beq xzr, xzr, @2 ; 1: li x1, 5 ; 2: add x2, x1, xzr ; 3: halt
        // On the branch-taken path x1 is never written.
        let insts = vec![
            Inst::branch(Opcode::Beq, reg::zero(), reg::zero(), 2),
            Inst::ri(Opcode::Li, reg::x(1), 5),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let hits = uninit_reads(&cfg, &insts);
        assert_eq!(hits, vec![(2, reg::x(1))]);
    }

    #[test]
    fn def_use_chains_straight_line() {
        // 0: li x1, 1 ; 1: add x2, x1, x1 ; 2: add x3, x1, x2 ; 3: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::x(1)),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::x(2)),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let du = def_use(&cfg, &insts);
        assert_eq!(du.sites.len(), 3);
        let li = du.sites.iter().position(|s| s.pc == 0).unwrap();
        // x1's value is consumed by instructions 1 and 2 (once each,
        // duplicates deduplicated).
        assert_eq!(du.consumers[li], vec![1, 2]);
        let add2 = du.sites.iter().position(|s| s.pc == 1).unwrap();
        assert_eq!(du.consumers[add2], vec![2]);
    }

    #[test]
    fn reaching_defs_merge_at_join_points() {
        // 0: beq xzr, xzr, @2 ; 1: li x1, 1 ; 2: li x1, 2 — wait, make
        // two defs on distinct paths converging on one use.
        // 0: li x1, 1
        // 1: beq xzr, xzr, @3
        // 2: li x1, 2
        // 3: add x2, x1, xzr
        // 4: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::branch(Opcode::Beq, reg::zero(), reg::zero(), 3),
            Inst::ri(Opcode::Li, reg::x(1), 2),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let du = def_use(&cfg, &insts);
        let use_entry = du
            .reaching
            .iter()
            .find(|((pc, r), _)| *pc == 3 && *r == reg::x(1))
            .expect("use recorded");
        assert_eq!(use_entry.1.len(), 2, "both definitions reach the join");
    }

    #[test]
    fn use_counts_classify_straight_line() {
        // 0: li x1 ; 1: add x2, x1, xzr ; 2: add x3, x1, xzr ; 3: halt
        // After inst 0, x1 has exactly two future consumers.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::rrr(Opcode::Add, reg::x(3), reg::x(1), reg::zero()),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let facts = use_counts_pinned(&cfg, &insts);
        // Single block: output = fact before inst 0; recompute the state
        // after inst 0 by transferring inst 1..end backward from the
        // block input.
        let b = cfg.block_of(0);
        let mut after0 = facts.input[b].clone();
        for pc in (1..insts.len()).rev() {
            UseCounts.transfer(pc, &insts[pc], &mut after0);
        }
        let c = after0.0[reg_bit(reg::x(1))];
        assert_eq!(c.min, 2);
        assert_eq!(c.max, 2);
        assert!(!c.redefining);
    }

    #[test]
    fn use_counts_pin_no_exit_loops() {
        // 0: li x1 ; 1: add x2, x1, xzr ; 2: jal @2  (endless loop)
        // x1 is consumed exactly once before the loop; without pinning
        // the must-min would stay unknown and claim multi-consumer.
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 1),
            Inst::rrr(Opcode::Add, reg::x(2), reg::x(1), reg::zero()),
            Inst::jal(None, 2),
        ];
        let cfg = cfg_of(&insts);
        let facts = use_counts_pinned(&cfg, &insts);
        let b = cfg.block_of(0);
        let c = facts.input[b].0[reg_bit(reg::x(1))];
        // Before the loop is entered the value has 1 known consumer and
        // the pinned exit keeps min at a sound value.
        let mut after0 = facts.input[b].clone();
        let _ = c;
        for pc in (1..2).rev() {
            UseCounts.transfer(pc, &insts[pc], &mut after0);
        }
        let c0 = after0.0[reg_bit(reg::x(1))];
        assert!(
            c0.min <= 1,
            "min must not claim multi-consumer, got {}",
            c0.min
        );
        assert_eq!(c0.max, 1);
    }

    #[test]
    fn split_counts_separate_exit_from_carried_context() {
        // Pointer-bump shape: x1 is bumped each iteration, read only by
        // the *next* iteration's load, never on the exit path.
        // 0: li x1, 0
        // 1: li x2, 4
        // 2: ld x3, [x1]        <- loop top
        // 3: addi x1, x1, 8     <- the bump: def under test
        // 4: subi x2, x2, 1
        // 5: bne x2, xzr, @2
        // 6: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0),
            Inst::ri(Opcode::Li, reg::x(2), 4),
            Inst::load(Opcode::Ld, reg::x(3), reg::x(1), 0),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 8),
            Inst::rri(Opcode::Addi, reg::x(2), reg::x(2), -1),
            Inst::branch(Opcode::Bne, reg::x(2), reg::zero(), 2),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let facts = use_counts_split(&cfg, &insts);
        // Replay the loop block backward to the point just after pc 3.
        let body = cfg.block_of(3);
        let mut f = facts.input[body].clone();
        for pc in (4..6).rev() {
            split_transfer(&insts[pc], &mut f);
        }
        let a = f.exit.0[reg_bit(reg::x(1))];
        let b = f.carried.0[reg_bit(reg::x(1))];
        // Exit context: the bumped pointer is never read again.
        assert_eq!((a.min, a.max), (0, 0));
        // Carried context: read by the next iteration's load, then by
        // the redefining bump — at least two consumers.
        assert!(b.min >= 2, "carried min {} should prove >=2", b.min);
    }

    #[test]
    fn split_counts_bound_post_increment_writeback() {
        // FldPost-style writeback consumed zero times on exit, once per
        // carried iteration (by the redefining next post-increment).
        // 0: li x1, 0 ; 1: li x2, 4
        // 2: ld.post x3, [x1], 8   <- writeback def under test
        // 3: subi x2, x2, 1
        // 4: bne x2, xzr, @2
        // 5: halt
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 0),
            Inst::ri(Opcode::Li, reg::x(2), 4),
            Inst::load_post(Opcode::LdPost, reg::x(3), reg::x(1), 8),
            Inst::rri(Opcode::Addi, reg::x(2), reg::x(2), -1),
            Inst::branch(Opcode::Bne, reg::x(2), reg::zero(), 2),
            Inst::bare(Opcode::Halt),
        ];
        let cfg = cfg_of(&insts);
        let facts = use_counts_split(&cfg, &insts);
        let body = cfg.block_of(2);
        let mut f = facts.input[body].clone();
        for pc in (3..5).rev() {
            split_transfer(&insts[pc], &mut f);
        }
        let a = f.exit.0[reg_bit(reg::x(1))];
        let b = f.carried.0[reg_bit(reg::x(1))];
        assert_eq!((a.min, a.max), (0, 0), "never read on the exit path");
        // Carried: exactly one read, and the reader (the next ld.post)
        // redefines the base — the overall bound is 0 or 1, never more.
        assert_eq!((b.min, b.max), (1, 1));
        assert!(b.redefining);
    }
}
