//! Static program linter with machine-readable diagnostics.
//!
//! The linter accepts *raw* instruction slices (not just validated
//! [`regshare_isa::Program`]s) so it can vet exactly the malformed inputs
//! [`regshare_isa::Program::new`] would reject by panicking — plus the
//! semantic problems it would happily accept.
//!
//! TRISC branch targets are instruction indices, so the byte-misalignment
//! lint of byte-addressed ISAs is unrepresentable here by construction;
//! [`DiagCode::BranchTargetOutOfRange`] subsumes it (`byte_pc = index*4`
//! is always aligned).

use crate::cfg::Cfg;
use crate::dataflow::uninit_reads;
use regshare_isa::{Inst, Opcode, Program};
use serde::Serialize;

/// Machine-readable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum DiagCode {
    /// The program contains no instructions.
    EmptyProgram,
    /// The entry point is not a valid instruction index.
    BadEntry,
    /// A conditional branch or `jal` targets an instruction index outside
    /// the program.
    BranchTargetOutOfRange,
    /// A post-increment load names the same register as destination and
    /// base; the two writes of the micro-op would collide.
    PostIncBaseConflict,
    /// A register is read before any instruction could have written it on
    /// some path from the entry.
    UninitRead,
    /// A basic block is unreachable from the entry point.
    UnreachableCode,
    /// A reachable path runs past the last instruction of the program.
    FallsOffEnd,
    /// No path from the entry reaches a `halt`: the program cannot
    /// terminate normally.
    NoHaltPath,
    /// A store whose every byte is overwritten by a later store in the
    /// same block before any load could observe it.
    DeadStore,
    /// An instruction that provably copies a register onto itself
    /// (`addi xN, xN, 0`, `add xN, xN, xzr`, `or xN, xN, xN`, ...).
    RedundantSelfMove,
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Severity {
    /// The program is malformed; the machine would reject or wedge on it.
    Error,
    /// Suspicious but executable.
    Warning,
}

/// One linter finding.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// What was found.
    pub code: DiagCode,
    /// How bad it is.
    pub severity: Severity,
    /// Instruction index the finding anchors to (0 when the program has
    /// no meaningful location, e.g. [`DiagCode::EmptyProgram`]).
    pub pc: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// True when `inst` provably writes its destination with the
/// destination's own current value — a no-op the compiler (or kernel
/// author) should have deleted.
fn is_redundant_self_move(inst: &Inst) -> bool {
    let Some(d) = inst.raw_dst() else {
        return false;
    };
    let s0 = inst.raw_sources()[0];
    let s1 = inst.raw_sources()[1];
    let zero = |s: Option<regshare_isa::ArchReg>| s.is_some_and(|r| r.is_zero());
    match inst.opcode {
        // d = d op identity-immediate.
        Opcode::Addi | Opcode::Ori | Opcode::Xori | Opcode::Slli | Opcode::Srli | Opcode::Srai => {
            s0 == Some(d) && inst.imm == 0
        }
        // d = d op zero-register (and the commutative flip for add/or).
        Opcode::Add | Opcode::Or => {
            (s0 == Some(d) && (zero(s1) || s1 == Some(d) && inst.opcode == Opcode::Or))
                || (zero(s0) && s1 == Some(d))
        }
        Opcode::Sub | Opcode::Xor => s0 == Some(d) && zero(s1),
        // d = d & d.
        Opcode::And => s0 == Some(d) && s1 == Some(d),
        _ => false,
    }
}

fn diag(code: DiagCode, severity: Severity, pc: usize, message: String) -> Diagnostic {
    Diagnostic {
        code,
        severity,
        pc: pc as u32,
        message,
    }
}

/// Lints a raw instruction sequence with the given entry index.
///
/// Diagnostics come back sorted by `(pc, code)`. An empty result means
/// the program is well-formed by every check the linter knows.
pub fn lint(insts: &[Inst], entry: u32) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if insts.is_empty() {
        out.push(diag(
            DiagCode::EmptyProgram,
            Severity::Error,
            0,
            "program contains no instructions".to_string(),
        ));
        return out;
    }
    if entry as usize >= insts.len() {
        out.push(diag(
            DiagCode::BadEntry,
            Severity::Error,
            entry as usize,
            format!(
                "entry point {entry} is outside the program (len {})",
                insts.len()
            ),
        ));
        return out;
    }

    let n = insts.len();
    for (pc, inst) in insts.iter().enumerate() {
        if (inst.opcode.is_cond_branch() || inst.opcode == Opcode::Jal) && inst.target as usize >= n
        {
            out.push(diag(
                DiagCode::BranchTargetOutOfRange,
                Severity::Error,
                pc,
                format!(
                    "branch target @{} is outside the program (len {n})",
                    inst.target
                ),
            ));
        }
        if is_redundant_self_move(inst) {
            out.push(diag(
                DiagCode::RedundantSelfMove,
                Severity::Warning,
                pc,
                format!(
                    "{} copies {} onto itself",
                    inst.opcode,
                    inst.raw_dst().expect("self-move has a destination")
                ),
            ));
        }
        if inst.opcode.is_post_increment() && inst.opcode.is_load() {
            if let (Some(d), Some(b)) = (inst.raw_dst(), inst.raw_sources()[0]) {
                if d == b {
                    out.push(diag(
                        DiagCode::PostIncBaseConflict,
                        Severity::Error,
                        pc,
                        format!("post-increment load destination {d} is also its base register"),
                    ));
                }
            }
        }
    }

    let cfg = Cfg::build(insts, entry);
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(b) {
            out.push(diag(
                DiagCode::UnreachableCode,
                Severity::Warning,
                block.start,
                format!(
                    "instructions {}..{} are unreachable from the entry point",
                    block.start, block.end
                ),
            ));
            continue;
        }
        if block.falls_off {
            // Out-of-range direct targets already got their own error;
            // only report genuine fall-past-the-end here.
            let last = block.last();
            let past_end = match insts[last].opcode {
                Opcode::Halt | Opcode::Jalr => false,
                Opcode::Jal => false,
                op if op.is_cond_branch() => last + 1 >= n,
                _ => last + 1 >= n,
            };
            if past_end {
                out.push(diag(
                    DiagCode::FallsOffEnd,
                    Severity::Error,
                    last,
                    "execution can run past the last instruction".to_string(),
                ));
            }
        }
    }
    if !cfg.can_reach_halt(cfg.entry_block()) {
        out.push(diag(
            DiagCode::NoHaltPath,
            Severity::Warning,
            entry as usize,
            "no path from the entry reaches a halt".to_string(),
        ));
    }
    for pc in crate::memdis::dead_stores(&cfg, insts) {
        out.push(diag(
            DiagCode::DeadStore,
            Severity::Warning,
            pc,
            "store is fully overwritten before any load could observe it".to_string(),
        ));
    }
    for (pc, r) in uninit_reads(&cfg, insts) {
        out.push(diag(
            DiagCode::UninitRead,
            Severity::Warning,
            pc,
            format!("{r} may be read here before any instruction writes it"),
        ));
    }

    out.sort_by_key(|d| (d.pc, d.code));
    out
}

/// Lints a validated [`Program`].
///
/// [`Program::new`] already rules out bad entries and dangling direct
/// targets, so only the semantic checks can fire here.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    lint(program.insts(), program.entry())
}

/// True when no diagnostic is [`Severity::Error`].
pub fn is_clean_of_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| d.severity != Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::reg;

    fn codes(diags: &[Diagnostic]) -> Vec<DiagCode> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_yields_nothing() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 3),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), -1),
            Inst::branch(Opcode::Bne, reg::x(1), reg::zero(), 1),
            Inst::bare(Opcode::Halt),
        ];
        assert!(lint(&insts, 0).is_empty());
    }

    #[test]
    fn empty_and_bad_entry() {
        assert_eq!(codes(&lint(&[], 0)), vec![DiagCode::EmptyProgram]);
        let insts = vec![Inst::bare(Opcode::Halt)];
        assert_eq!(codes(&lint(&insts, 5)), vec![DiagCode::BadEntry]);
    }

    #[test]
    fn out_of_range_target_is_an_error() {
        let insts = vec![
            Inst::branch(Opcode::Beq, reg::zero(), reg::zero(), 99),
            Inst::bare(Opcode::Halt),
        ];
        let diags = lint(&insts, 0);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::BranchTargetOutOfRange
                && d.severity == Severity::Error
                && d.pc == 0));
    }

    #[test]
    fn post_inc_base_conflict_detected_via_raw_parts() {
        // Constructors debug_assert on this shape, so build it the way a
        // fuzzer or broken generator would: from_parts + manual fields is
        // impossible (dst2 is private), but a *load* post-inc built via
        // from_parts with dst == src0 is exactly the hazard.
        let bad = Inst::from_parts(
            Opcode::LdPost,
            Some(reg::x(2)),
            [Some(reg::x(2)), None, None],
            8,
            0,
        );
        let insts = vec![bad, Inst::bare(Opcode::Halt)];
        let diags = lint(&insts, 0);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::PostIncBaseConflict && d.severity == Severity::Error));
    }

    #[test]
    fn unreachable_and_uninit_and_fall_off() {
        // 0: add x1, x2, xzr   (x2 uninit)
        // 1: jal @3
        // 2: nop               (unreachable)
        // 3: addi x1, x1, 1    (falls off the end)
        let insts = vec![
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(2), reg::zero()),
            Inst::jal(None, 3),
            Inst::bare(Opcode::Nop),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1),
        ];
        let diags = lint(&insts, 0);
        let c = codes(&diags);
        assert!(c.contains(&DiagCode::UninitRead));
        assert!(c.contains(&DiagCode::UnreachableCode));
        assert!(c.contains(&DiagCode::FallsOffEnd));
        assert!(c.contains(&DiagCode::NoHaltPath));
        assert!(!is_clean_of_errors(&diags));
    }

    #[test]
    fn no_halt_path_on_infinite_loop() {
        let insts = vec![Inst::jal(None, 0), Inst::bare(Opcode::Halt)];
        let diags = lint(&insts, 0);
        let c = codes(&diags);
        assert!(c.contains(&DiagCode::NoHaltPath));
        assert!(c.contains(&DiagCode::UnreachableCode));
    }

    #[test]
    fn lint_program_wrapper_runs_semantic_checks() {
        let insts = vec![Inst::ri(Opcode::Li, reg::x(1), 1), Inst::bare(Opcode::Halt)];
        let program = Program::new(insts, 0, regshare_isa::Memory::new());
        assert!(lint_program(&program).is_empty());
    }

    #[test]
    fn redundant_self_moves_are_warnings() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 3),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 0), // x1 += 0
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::zero()), // x1 += xzr
            Inst::rrr(Opcode::Or, reg::x(1), reg::x(1), reg::x(1)), // x1 |= x1
            Inst::bare(Opcode::Halt),
        ];
        let diags = lint(&insts, 0);
        let hits: Vec<u32> = diags
            .iter()
            .filter(|d| d.code == DiagCode::RedundantSelfMove)
            .map(|d| d.pc)
            .collect();
        assert_eq!(hits, vec![1, 2, 3]);
        assert!(is_clean_of_errors(&diags));
    }

    #[test]
    fn genuine_arithmetic_is_not_a_self_move() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 3),
            Inst::rri(Opcode::Addi, reg::x(1), reg::x(1), 1), // real increment
            Inst::rrr(Opcode::Add, reg::x(1), reg::x(1), reg::x(1)), // doubling
            Inst::rrr(Opcode::Xor, reg::x(1), reg::x(1), reg::x(1)), // zeroing idiom
            Inst::rrr(Opcode::And, reg::x(1), reg::x(1), reg::zero()), // clears x1
            Inst::bare(Opcode::Halt),
        ];
        assert!(lint(&insts, 0).is_empty());
    }

    #[test]
    fn dead_store_is_flagged_and_observed_store_is_not() {
        let insts = vec![
            Inst::ri(Opcode::Li, reg::x(1), 64),
            Inst::ri(Opcode::Li, reg::x(2), 7),
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 0), // dead
            Inst::store(Opcode::St, reg::x(2), reg::x(1), 8), // live (read below)
            Inst::load(Opcode::Ld, reg::x(3), reg::x(1), 8),
            Inst::store(Opcode::St, reg::x(3), reg::x(1), 0), // overwrites pc 2
            Inst::bare(Opcode::Halt),
        ];
        let diags = lint(&insts, 0);
        let hits: Vec<u32> = diags
            .iter()
            .filter(|d| d.code == DiagCode::DeadStore)
            .map(|d| d.pc)
            .collect();
        assert_eq!(hits, vec![2]);
        assert!(is_clean_of_errors(&diags));
    }

    #[test]
    fn diagnostics_serialize() {
        let insts: Vec<Inst> = Vec::new();
        let diags = lint(&insts, 0);
        let json = serde_json::to_string(&diags).expect("serializable");
        assert!(json.contains("EmptyProgram"));
    }
}
