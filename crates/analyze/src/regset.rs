//! Compact sets of architectural registers.

use regshare_isa::{ArchReg, RegClass};

/// Total number of trackable registers (32 int + 32 fp). The hard-wired
/// zero register occupies a bit that is simply never set, because
/// [`regshare_isa::Inst::defs`] and [`regshare_isa::Inst::uses`] already
/// filter it.
pub const NUM_REGS: usize = 64;

/// Maps a register to its dense bit index: int registers occupy bits
/// 0..32, fp registers bits 32..64.
pub fn reg_bit(r: ArchReg) -> usize {
    r.class().index() * 32 + r.index() as usize
}

/// Inverse of [`reg_bit`].
pub fn bit_reg(bit: usize) -> ArchReg {
    let class = if bit < 32 {
        RegClass::Int
    } else {
        RegClass::Fp
    };
    ArchReg::new(class, (bit % 32) as u8)
}

/// A set of architectural registers as a 64-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(pub u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Every register of both classes.
    pub const ALL: RegSet = RegSet(u64::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, r: ArchReg) {
        self.0 |= 1 << reg_bit(r);
    }

    /// Removes a register.
    pub fn remove(&mut self, r: ArchReg) {
        self.0 &= !(1 << reg_bit(r));
    }

    /// Membership test.
    pub fn contains(self, r: ArchReg) -> bool {
        self.0 & (1 << reg_bit(r)) != 0
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no register is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in bit order (int registers first).
    pub fn iter(self) -> impl Iterator<Item = ArchReg> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(bit_reg(b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regshare_isa::reg;

    #[test]
    fn bit_mapping_round_trips() {
        for r in [reg::x(0), reg::x(30), reg::f(0), reg::f(31)] {
            assert_eq!(bit_reg(reg_bit(r)), r);
        }
        assert_ne!(reg_bit(reg::x(5)), reg_bit(reg::f(5)));
    }

    #[test]
    fn set_operations() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert(reg::x(3));
        s.insert(reg::f(3));
        assert!(s.contains(reg::x(3)));
        assert!(!s.contains(reg::x(4)));
        assert_eq!(s.len(), 2);
        s.remove(reg::x(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![reg::f(3)]);
        let t = s.union(RegSet::ALL);
        assert_eq!(t.len(), NUM_REGS);
    }
}
