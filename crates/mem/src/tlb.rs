//! Fully-associative TLB with page-walk latency and page-fault injection.

use regshare_stats::{FastHashMap, FastHashSet, Ratio};
use serde::{Deserialize, Serialize};

/// TLB configuration.
///
/// Defaults model the paper's 48-entry fully-associative L1 TLB; the walk
/// penalty abstracts the hardware page-table walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (a power of two).
    pub page_bytes: u64,
    /// Extra latency of a TLB miss (page-table walk), in cycles.
    pub walk_latency: u32,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            entries: 48,
            page_bytes: 4096,
            walk_latency: 30,
        }
    }
}

/// Result of a TLB translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translation {
    /// Mapping present; no extra latency.
    Hit,
    /// Mapping filled by a page walk; pay the walk latency.
    Miss {
        /// Cycles spent walking the page table.
        walk_latency: u32,
    },
    /// The page is configured to fault; the access must raise a precise
    /// exception.
    Fault,
}

/// A fully-associative, LRU translation look-aside buffer.
///
/// Pages registered with [`Tlb::inject_fault`] report [`Translation::Fault`]
/// on their next access and are then automatically "repaired" (the fault
/// set is one-shot) — this is the hook the test suite uses to exercise
/// precise-exception recovery in the renaming schemes.
///
/// # Examples
///
/// ```
/// use regshare_mem::{Tlb, TlbConfig};
/// use regshare_mem::Translation;
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// assert!(matches!(tlb.translate(0x1000), Translation::Miss { .. }));
/// assert_eq!(tlb.translate(0x1008), Translation::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// `log2(page_bytes)`, precomputed so the hot page split avoids a
    /// runtime division by a dynamically-known divisor.
    page_shift: u32,
    /// (page number, lru stamp)
    entries: Vec<(u64, u64)>,
    /// page number → index in `entries`. A pure lookup accelerator for
    /// the associative search; kept exactly in sync across fills and
    /// `swap_remove` evictions.
    index: FastHashMap<u64, usize>,
    stamp: u64,
    /// Most-recently translated page. Consecutive accesses to the same
    /// page skip the associative search *and* the stamp bump: no other
    /// entry is touched between the repeats, so relative LRU order — and
    /// therefore every future eviction decision — is unchanged.
    last_page: Option<u64>,
    hits: Ratio,
    faulting_pages: FastHashSet<u64>,
    faults_taken: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is 0.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(config.entries > 0, "TLB must have at least one entry");
        Tlb {
            config,
            page_shift: config.page_bytes.trailing_zeros(),
            entries: Vec::with_capacity(config.entries),
            index: FastHashMap::default(),
            stamp: 0,
            last_page: None,
            hits: Ratio::new("tlb"),
            faulting_pages: FastHashSet::default(),
            faults_taken: 0,
        }
    }

    fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Marks the page containing `addr` to fault on its next access.
    pub fn inject_fault(&mut self, addr: u64) {
        let page = self.page_of(addr);
        self.faulting_pages.insert(page);
        // The fast path must not bypass the fault check for this page.
        if self.last_page == Some(page) {
            self.last_page = None;
        }
    }

    /// Checks whether the page containing `addr` would fault, without
    /// changing any state (used by speculative accesses that must defer
    /// the fault to commit).
    pub fn would_fault(&self, addr: u64) -> bool {
        self.faulting_pages.contains(&self.page_of(addr))
    }

    /// Consumes the pending fault for the page containing `addr` (called
    /// when the faulting instruction reaches commit and the handler runs).
    /// Returns whether a fault was pending.
    pub fn take_fault(&mut self, addr: u64) -> bool {
        let page = self.page_of(addr);
        let had = self.faulting_pages.remove(&page);
        if had {
            self.faults_taken += 1;
        }
        had
    }

    /// Translates `addr`, updating LRU state and filling on miss.
    pub fn translate(&mut self, addr: u64) -> Translation {
        let page = self.page_of(addr);
        if self.last_page == Some(page) {
            self.hits.record(true);
            return Translation::Hit;
        }
        // The emptiness check keeps the (rare) fault machinery off the
        // hot translate path: most runs never inject a fault.
        if !self.faulting_pages.is_empty() && self.faulting_pages.contains(&page) {
            return Translation::Fault;
        }
        self.last_page = Some(page);
        self.stamp += 1;
        if let Some(&i) = self.index.get(&page) {
            self.entries[i].1 = self.stamp;
            self.hits.record(true);
            return Translation::Hit;
        }
        self.hits.record(false);
        if self.entries.len() == self.config.entries {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, lru))| *lru)
                .map(|(i, _)| i)
                .expect("TLB non-empty when full");
            let (evicted, _) = self.entries.swap_remove(victim);
            self.index.remove(&evicted);
            // swap_remove moved the former last entry into `victim`.
            if victim < self.entries.len() {
                self.index.insert(self.entries[victim].0, victim);
            }
        }
        self.index.insert(page, self.entries.len());
        self.entries.push((page, self.stamp));
        Translation::Miss {
            walk_latency: self.config.walk_latency,
        }
    }

    /// Hit-rate statistics (faults are not counted as accesses).
    pub fn hit_ratio(&self) -> &Ratio {
        &self.hits
    }

    /// Clears access statistics, keeping the translation state. Used when
    /// a functionally-warmed TLB is handed to a measurement window.
    pub fn reset_stats(&mut self) {
        self.hits.reset();
        self.faults_taken = 0;
    }

    /// Number of faults taken at commit.
    pub fn faults_taken(&self) -> u64 {
        self.faults_taken
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            walk_latency: 30,
        })
    }

    #[test]
    fn miss_then_hit_within_page() {
        let mut t = small();
        assert_eq!(t.translate(0), Translation::Miss { walk_latency: 30 });
        assert_eq!(t.translate(4095), Translation::Hit);
        assert_eq!(t.translate(4096), Translation::Miss { walk_latency: 30 });
    }

    #[test]
    fn lru_eviction() {
        let mut t = small();
        t.translate(0); // page 0
        t.translate(4096); // page 1
        t.translate(0); // refresh page 0
        t.translate(8192); // page 2 evicts page 1
        assert_eq!(t.translate(0), Translation::Hit);
        assert!(matches!(t.translate(4096), Translation::Miss { .. }));
    }

    #[test]
    fn fault_injection_is_one_shot() {
        let mut t = small();
        t.inject_fault(0x5000);
        assert!(t.would_fault(0x5008));
        assert_eq!(t.translate(0x5000), Translation::Fault);
        assert!(t.take_fault(0x5000));
        assert!(!t.would_fault(0x5000));
        assert!(matches!(t.translate(0x5000), Translation::Miss { .. }));
        assert_eq!(t.faults_taken(), 1);
    }

    #[test]
    fn take_fault_without_pending_returns_false() {
        let mut t = small();
        assert!(!t.take_fault(0));
        assert_eq!(t.faults_taken(), 0);
    }

    #[test]
    fn hit_ratio_ignores_faults() {
        let mut t = small();
        t.inject_fault(0);
        t.translate(0);
        assert_eq!(t.hit_ratio().total(), 0);
    }

    #[test]
    fn fault_injected_on_most_recent_page_is_not_bypassed() {
        let mut t = small();
        t.translate(0); // page 0 is now the MRU fast-path page
        assert_eq!(t.translate(8), Translation::Hit);
        t.inject_fault(0);
        assert_eq!(t.translate(0), Translation::Fault);
    }

    #[test]
    fn consecutive_same_page_hits_preserve_lru_order() {
        let mut t = small();
        t.translate(0); // page 0
        t.translate(4096); // page 1
        for _ in 0..10 {
            assert_eq!(t.translate(4100), Translation::Hit); // fast path
        }
        // Refresh page 0 so page 1 becomes least-recent; the fast-path
        // repeats must not have disturbed that ordering.
        assert_eq!(t.translate(8), Translation::Hit);
        t.translate(8192); // fills page 2, evicting page 1
        assert_eq!(t.translate(0), Translation::Hit);
        assert!(matches!(t.translate(4096), Translation::Miss { .. }));
    }

    #[test]
    fn reset_stats_keeps_translations() {
        let mut t = small();
        t.translate(0);
        t.translate(8);
        t.reset_stats();
        assert_eq!(t.hit_ratio().total(), 0);
        assert_eq!(t.translate(16), Translation::Hit); // mapping survived
    }
}
