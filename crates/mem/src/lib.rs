#![warn(missing_docs)]

//! Timing models for the memory system of the `regshare` simulator.
//!
//! This crate provides the latency side of the memory system described in
//! Table I of the paper: split L1 instruction/data caches, a unified L2, a
//! stride prefetcher, a fully-associative TLB with page-walk latency and
//! fault injection, and a DDR3-like DRAM with open-row bank state.
//!
//! These are *timing* models: data values live in
//! [`regshare_isa::Memory`](../regshare_isa/struct.Memory.html); this crate
//! only answers "how many cycles does this access take?" and keeps hit/miss
//! statistics. Keeping timing and values separate lets the out-of-order core
//! speculate down wrong paths without corrupting timing state in
//! unrealistic ways.
//!
//! # Examples
//!
//! ```
//! use regshare_mem::{HierarchyConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
//! let cold = mem.access_data(0x40, 0x1000, false, 0);
//! let warm = mem.access_data(0x40, 0x1000, false, cold as u64);
//! assert!(cold > warm); // second access hits in L1
//! ```

mod cache;
mod dram;
mod hierarchy;
mod prefetch;
mod tlb;

pub use cache::{Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{DataAccess, HierarchyConfig, MemoryHierarchy};
pub use prefetch::{
    PrefetchTargets, StridePrefetcher, StridePrefetcherConfig, MAX_PREFETCH_DEGREE,
};
pub use tlb::{Tlb, TlbConfig, Translation};
