//! PC-indexed stride prefetcher (degree 1, as in Table I).

use serde::{Deserialize, Serialize};

/// Stride-prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridePrefetcherConfig {
    /// Number of PC-indexed tracking entries (a power of two).
    pub entries: usize,
    /// Prefetch degree: how many strides ahead to fetch.
    pub degree: u32,
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        StridePrefetcherConfig {
            entries: 64,
            degree: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confident: bool,
    valid: bool,
}

/// A classic per-PC stride prefetcher.
///
/// Each load PC gets a table entry recording its last address and stride.
/// Two consecutive accesses with the same stride make the entry confident;
/// confident entries emit prefetch addresses `degree` strides ahead.
///
/// # Examples
///
/// ```
/// use regshare_mem::{StridePrefetcher, StridePrefetcherConfig};
///
/// let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
/// assert!(p.observe(0x40, 0x1000).is_empty());
/// assert!(p.observe(0x40, 0x1008).is_empty());       // stride learned
/// assert_eq!(p.observe(0x40, 0x1010), vec![0x1018]); // now confident
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StridePrefetcherConfig,
    table: Vec<Entry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: StridePrefetcherConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "prefetcher entries must be a power of two"
        );
        StridePrefetcher {
            config,
            table: vec![Entry::default(); config.entries],
            issued: 0,
        }
    }

    /// Observes a demand access by the load at `pc` to `addr`; returns the
    /// prefetch addresses to issue (empty until a stable stride is seen).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        let idx = (pc as usize) & (self.table.len() - 1);
        let entry = &mut self.table[idx];
        let mut out = Vec::new();
        if entry.valid && entry.pc_tag == pc {
            let stride = addr.wrapping_sub(entry.last_addr) as i64;
            if stride == entry.stride && stride != 0 {
                entry.confident = true;
            } else {
                entry.confident = false;
                entry.stride = stride;
            }
            entry.last_addr = addr;
            if entry.confident {
                for d in 1..=self.config.degree as i64 {
                    let target = addr.wrapping_add((entry.stride * d) as u64);
                    out.push(target);
                }
                self.issued += out.len() as u64;
            }
        } else {
            *entry = Entry {
                pc_tag: pc,
                last_addr: addr,
                stride: 0,
                confident: false,
                valid: true,
            };
        }
        out
    }

    /// Number of prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StridePrefetcherConfig::default())
    }

    #[test]
    fn needs_two_identical_strides_before_prefetching() {
        let mut p = pf();
        assert!(p.observe(1, 100).is_empty());
        assert!(p.observe(1, 108).is_empty());
        assert_eq!(p.observe(1, 116), vec![124]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.observe(1, 100);
        p.observe(1, 108);
        p.observe(1, 116);
        assert!(p.observe(1, 200).is_empty()); // irregular jump
        assert!(p.observe(1, 208).is_empty()); // relearn
        assert_eq!(p.observe(1, 216), vec![224]);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = pf();
        p.observe(1, 1000);
        p.observe(1, 992);
        assert_eq!(p.observe(1, 984), vec![976]);
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf();
        for _ in 0..5 {
            assert!(p.observe(1, 64).is_empty());
        }
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut p = pf();
        p.observe(1, 0);
        p.observe(2, 1000);
        p.observe(1, 8);
        p.observe(2, 1004);
        assert_eq!(p.observe(1, 16), vec![24]);
        assert_eq!(p.observe(2, 1008), vec![1012]);
    }

    #[test]
    fn degree_two_issues_two_prefetches() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig {
            entries: 64,
            degree: 2,
        });
        p.observe(1, 0);
        p.observe(1, 8);
        assert_eq!(p.observe(1, 16), vec![24, 32]);
    }

    #[test]
    fn table_conflict_evicts_old_pc() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig {
            entries: 1,
            degree: 1,
        });
        p.observe(1, 0);
        p.observe(1, 8);
        p.observe(2, 50); // evicts pc=1
        p.observe(1, 16); // reallocates, no confidence
        assert!(p.observe(1, 24).is_empty());
    }
}
