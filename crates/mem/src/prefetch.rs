//! PC-indexed stride prefetcher (degree 1, as in Table I).

use serde::{Deserialize, Serialize};

/// Stride-prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StridePrefetcherConfig {
    /// Number of PC-indexed tracking entries (a power of two).
    pub entries: usize,
    /// Prefetch degree: how many strides ahead to fetch.
    pub degree: u32,
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        StridePrefetcherConfig {
            entries: 64,
            degree: 1,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc_tag: u64,
    last_addr: u64,
    stride: i64,
    confident: bool,
    valid: bool,
}

/// Maximum prefetch degree supported without heap allocation.
pub const MAX_PREFETCH_DEGREE: usize = 8;

/// Prefetch addresses produced by one [`StridePrefetcher::observe`] call.
///
/// An inline fixed-capacity buffer: `observe` sits on the data-access hot
/// path of both the detailed and the functional-warming engines, and a
/// `Vec` allocation per confident load dominated the warming profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchTargets {
    addrs: [u64; MAX_PREFETCH_DEGREE],
    len: u8,
}

impl PrefetchTargets {
    #[inline]
    fn push(&mut self, addr: u64) {
        self.addrs[self.len as usize] = addr;
        self.len += 1;
    }

    /// The prefetch addresses, oldest stride first.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.addrs[..self.len as usize]
    }

    /// Number of addresses.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no prefetch should be issued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<'a> IntoIterator for &'a PrefetchTargets {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A classic per-PC stride prefetcher.
///
/// Each load PC gets a table entry recording its last address and stride.
/// Two consecutive accesses with the same stride make the entry confident;
/// confident entries emit prefetch addresses `degree` strides ahead.
///
/// # Examples
///
/// ```
/// use regshare_mem::{StridePrefetcher, StridePrefetcherConfig};
///
/// let mut p = StridePrefetcher::new(StridePrefetcherConfig::default());
/// assert!(p.observe(0x40, 0x1000).is_empty());
/// assert!(p.observe(0x40, 0x1008).is_empty()); // stride learned
/// assert_eq!(p.observe(0x40, 0x1010).as_slice(), &[0x1018]); // confident
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StridePrefetcherConfig,
    table: Vec<Entry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(config: StridePrefetcherConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "prefetcher entries must be a power of two"
        );
        assert!(
            config.degree as usize <= MAX_PREFETCH_DEGREE,
            "prefetch degree above {MAX_PREFETCH_DEGREE} is unsupported"
        );
        StridePrefetcher {
            config,
            table: vec![Entry::default(); config.entries],
            issued: 0,
        }
    }

    /// Observes a demand access by the load at `pc` to `addr`; returns the
    /// prefetch addresses to issue (empty until a stable stride is seen).
    pub fn observe(&mut self, pc: u64, addr: u64) -> PrefetchTargets {
        let idx = (pc as usize) & (self.table.len() - 1);
        let entry = &mut self.table[idx];
        let mut out = PrefetchTargets::default();
        if entry.valid && entry.pc_tag == pc {
            let stride = addr.wrapping_sub(entry.last_addr) as i64;
            if stride == entry.stride && stride != 0 {
                entry.confident = true;
            } else {
                entry.confident = false;
                entry.stride = stride;
            }
            entry.last_addr = addr;
            if entry.confident {
                for d in 1..=self.config.degree as i64 {
                    let target = addr.wrapping_add((entry.stride * d) as u64);
                    out.push(target);
                }
                self.issued += out.len() as u64;
            }
        } else {
            *entry = Entry {
                pc_tag: pc,
                last_addr: addr,
                stride: 0,
                confident: false,
                valid: true,
            };
        }
        out
    }

    /// Number of prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StridePrefetcher {
        StridePrefetcher::new(StridePrefetcherConfig::default())
    }

    #[test]
    fn needs_two_identical_strides_before_prefetching() {
        let mut p = pf();
        assert!(p.observe(1, 100).is_empty());
        assert!(p.observe(1, 108).is_empty());
        assert_eq!(p.observe(1, 116).as_slice(), &[124]);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = pf();
        p.observe(1, 100);
        p.observe(1, 108);
        p.observe(1, 116);
        assert!(p.observe(1, 200).is_empty()); // irregular jump
        assert!(p.observe(1, 208).is_empty()); // relearn
        assert_eq!(p.observe(1, 216).as_slice(), &[224]);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = pf();
        p.observe(1, 1000);
        p.observe(1, 992);
        assert_eq!(p.observe(1, 984).as_slice(), &[976]);
    }

    #[test]
    fn zero_stride_never_prefetches() {
        let mut p = pf();
        for _ in 0..5 {
            assert!(p.observe(1, 64).is_empty());
        }
    }

    #[test]
    fn distinct_pcs_track_independently() {
        let mut p = pf();
        p.observe(1, 0);
        p.observe(2, 1000);
        p.observe(1, 8);
        p.observe(2, 1004);
        assert_eq!(p.observe(1, 16).as_slice(), &[24]);
        assert_eq!(p.observe(2, 1008).as_slice(), &[1012]);
    }

    #[test]
    fn degree_two_issues_two_prefetches() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig {
            entries: 64,
            degree: 2,
        });
        p.observe(1, 0);
        p.observe(1, 8);
        assert_eq!(p.observe(1, 16).as_slice(), &[24, 32]);
    }

    #[test]
    fn table_conflict_evicts_old_pc() {
        let mut p = StridePrefetcher::new(StridePrefetcherConfig {
            entries: 1,
            degree: 1,
        });
        p.observe(1, 0);
        p.observe(1, 8);
        p.observe(2, 50); // evicts pc=1
        p.observe(1, 16); // reallocates, no confidence
        assert!(p.observe(1, 24).is_empty());
    }
}
