//! The composed memory hierarchy: L1I + L1D + L2 + prefetcher + TLB + DRAM.

use crate::tlb::Translation;
use crate::{
    Cache, CacheConfig, Dram, DramConfig, StridePrefetcher, StridePrefetcherConfig, Tlb, TlbConfig,
};
use serde::{Deserialize, Serialize};

/// Configuration of the whole hierarchy; defaults follow Table I of the
/// paper (32 KB/2-way/1-cycle L1D, 48 KB/3-way/1-cycle L1I, 1 MB/16-way/
/// 12-cycle L2, stride prefetcher of degree 1, 48-entry TLB, DDR3-1600).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Data prefetcher.
    pub prefetcher: StridePrefetcherConfig,
    /// Data TLB.
    pub tlb: TlbConfig,
    /// Main memory.
    pub dram: DramConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
            l1i: CacheConfig {
                size_bytes: 48 * 1024,
                assoc: 3,
                line_bytes: 64,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 16,
                line_bytes: 64,
                latency: 12,
            },
            prefetcher: StridePrefetcherConfig::default(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
        }
    }
}

/// Outcome of a data access that may fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataAccess {
    /// Access completed with the given total latency in cycles.
    Done(u32),
    /// The page faults; the access must raise a precise exception.
    Fault,
}

/// The composed timing model for instruction and data accesses.
///
/// # Examples
///
/// ```
/// use regshare_mem::{HierarchyConfig, MemoryHierarchy};
///
/// let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
/// let lat = mem.access_inst(0, 0);
/// assert!(lat >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    prefetcher: StridePrefetcher,
    tlb: Tlb,
    dram: Dram,
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1d: Cache::new("l1d", config.l1d),
            l1i: Cache::new("l1i", config.l1i),
            l2: Cache::new("l2", config.l2),
            prefetcher: StridePrefetcher::new(config.prefetcher),
            tlb: Tlb::new(config.tlb),
            dram: Dram::new(config.dram),
        }
    }

    /// Instruction fetch at byte address `pc_addr`, at time `now`. Returns
    /// the fetch latency in cycles.
    pub fn access_inst(&mut self, pc_addr: u64, now: u64) -> u32 {
        let mut latency = self.l1i.latency();
        if !self.l1i.access(pc_addr, false) {
            latency += self.l2.latency();
            if !self.l2.access(pc_addr, false) {
                latency += self.dram.access(pc_addr, now + latency as u64);
            }
        }
        latency
    }

    /// Instruction-fetch access on the functional-warming path: updates
    /// line and row state, computes no latency.
    pub fn warm_inst(&mut self, pc_addr: u64) {
        if !self.l1i.access(pc_addr, false) && !self.l2.access(pc_addr, false) {
            self.dram.touch(pc_addr);
        }
    }

    /// Data access on the functional-warming path: trains the TLB, the
    /// caches and the prefetcher exactly like [`MemoryHierarchy::
    /// access_data`] — same lines resident, same rows open, same
    /// prefetches issued — but skips every latency computation and
    /// therefore needs no clock. Timing state (bank busy times) is
    /// window-local and reset at the warm/detailed handoff.
    pub fn warm_data(&mut self, pc_addr: u64, addr: u64, is_write: bool) {
        match self.tlb.translate(addr) {
            Translation::Hit | Translation::Miss { .. } => {}
            Translation::Fault => return,
        }
        if !self.l1d.access(addr, is_write) && !self.l2.access(addr, is_write) {
            self.dram.touch(addr);
        }
        if !is_write {
            for &target in self.prefetcher.observe(pc_addr, addr).as_slice() {
                if !self.l1d.probe(target) {
                    self.l2.fill(target);
                    self.l1d.fill(target);
                }
            }
        }
    }

    /// Data access by the memory instruction at byte PC `pc_addr` to
    /// address `addr` at time `now`. Returns the total latency in cycles.
    ///
    /// Faulting pages are *not* checked here — speculative execution uses
    /// [`MemoryHierarchy::access_data_checked`] so faults can be deferred.
    pub fn access_data(&mut self, pc_addr: u64, addr: u64, is_write: bool, now: u64) -> u32 {
        match self.access_data_checked(pc_addr, addr, is_write, now) {
            DataAccess::Done(lat) => lat,
            DataAccess::Fault => {
                // Fault pending: the access itself still takes the TLB-walk
                // time before the fault is detected.
                self.tlb.config().walk_latency
            }
        }
    }

    /// Like [`MemoryHierarchy::access_data`] but reports page faults
    /// instead of timing them.
    pub fn access_data_checked(
        &mut self,
        pc_addr: u64,
        addr: u64,
        is_write: bool,
        now: u64,
    ) -> DataAccess {
        let mut latency = 0u32;
        match self.tlb.translate(addr) {
            Translation::Hit => {}
            Translation::Miss { walk_latency } => latency += walk_latency,
            Translation::Fault => return DataAccess::Fault,
        }
        latency += self.l1d.latency();
        if !self.l1d.access(addr, is_write) {
            latency += self.l2.latency();
            if !self.l2.access(addr, is_write) {
                latency += self.dram.access(addr, now + latency as u64);
            }
        }
        // Train the prefetcher on demand loads and fill without charging
        // the demand access (prefetch proceeds in the background).
        if !is_write {
            for &target in self.prefetcher.observe(pc_addr, addr).as_slice() {
                if !self.l1d.probe(target) {
                    self.l2.fill(target);
                    self.l1d.fill(target);
                }
            }
        }
        DataAccess::Done(latency)
    }

    /// The data TLB (for fault injection and statistics).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// Mutable access to the data TLB (for fault injection).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// L1 data cache statistics.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// L1 instruction cache statistics.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// L2 statistics.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// DRAM statistics.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Prefetcher statistics.
    pub fn prefetcher(&self) -> &StridePrefetcher {
        &self.prefetcher
    }

    /// Clears hit/miss statistics on every level while keeping all resident
    /// lines, TLB mappings and predictor state. A measurement window seeded
    /// from a functionally-warmed hierarchy calls this so its report covers
    /// only the window's own traffic.
    pub fn reset_stats(&mut self) {
        self.l1d.reset_stats();
        self.l1i.reset_stats();
        self.l2.reset_stats();
        self.tlb.reset_stats();
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::default())
    }

    #[test]
    fn cold_access_reaches_dram_and_warms_caches() {
        let mut m = hier();
        let cold = m.access_data(0, 0x10000, false, 0);
        // cold: TLB walk + L1 + L2 + DRAM
        assert!(cold > 40);
        let warm = m.access_data(0, 0x10000, false, cold as u64);
        // warm: L1 hit, TLB hit
        assert_eq!(warm, 1);
    }

    #[test]
    fn l2_hit_is_between_l1_and_dram() {
        let mut m = hier();
        let a = 0x2000u64;
        m.access_data(0, a, false, 0); // warm L2+L1
                                       // Evict from L1 by filling its set: L1D is 2-way, sets = 256 lines.
        let l1_sets = 32 * 1024 / 64 / 2;
        m.access_data(0, a + (l1_sets * 64) as u64, false, 0);
        m.access_data(0, a + (2 * l1_sets * 64) as u64, false, 0);
        let lat = m.access_data(0, a, false, 0);
        assert_eq!(lat, 1 + 12); // L1 miss, L2 hit
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut m = hier();
        let cold = m.access_inst(0x40, 0);
        let warm = m.access_inst(0x44, cold as u64);
        assert!(cold > warm);
        assert_eq!(warm, 1);
        assert_eq!(m.l1i().hit_ratio().total(), 2);
        assert_eq!(m.l1d().hit_ratio().total(), 0);
    }

    #[test]
    fn prefetcher_hides_strided_misses() {
        let mut m = hier();
        let mut now = 0u64;
        let mut misses_late = 0;
        for i in 0..64u64 {
            let lat = m.access_data(0x100, 0x8000 + i * 64, false, now);
            now += lat as u64;
            if i >= 8 && lat > 1 + 30 {
                misses_late += 1;
            }
        }
        // After warmup, the stride prefetcher covers the stream.
        assert_eq!(misses_late, 0);
        assert!(m.prefetcher().issued() > 0);
    }

    #[test]
    fn faulting_page_reports_fault() {
        let mut m = hier();
        m.tlb_mut().inject_fault(0x7000);
        assert_eq!(
            m.access_data_checked(0, 0x7000, false, 0),
            DataAccess::Fault
        );
        // Non-checked variant degrades to a latency.
        let lat = m.access_data(0, 0x7008, false, 0);
        assert!(lat > 0);
    }

    #[test]
    fn writes_hit_and_mark_dirty() {
        let mut m = hier();
        m.access_data(0, 0x3000, true, 0);
        let lat = m.access_data(0, 0x3000, true, 100);
        assert_eq!(lat, 1);
    }
}
