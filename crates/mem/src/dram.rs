//! DDR3-like DRAM timing model with open-row bank state.

use serde::{Deserialize, Serialize};

/// DRAM organization and timing parameters, in core cycles.
///
/// Defaults model the paper's DDR3-1600 configuration seen from a 2 GHz
/// core: `tCAS = tRCD = tRP = 13.75 ns ≈ 28` core cycles, 2 ranks/channel,
/// 8 banks/rank, 8 KB rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Column access latency (row already open).
    pub t_cas: u32,
    /// Row activation latency.
    pub t_rcd: u32,
    /// Precharge latency (closing an open row).
    pub t_rp: u32,
    /// Number of independent banks (ranks × banks/rank).
    pub banks: usize,
    /// Row size in bytes.
    pub row_bytes: u64,
    /// Data-bus transfer time per access.
    pub burst: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            t_cas: 28,
            t_rcd: 28,
            t_rp: 28,
            banks: 16,
            row_bytes: 8 * 1024,
            burst: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// Open-row DRAM timing: per-bank open-row tracking plus bank busy time.
///
/// An access to the open row pays `tCAS`; a closed bank pays `tRCD + tCAS`;
/// a conflicting open row pays `tRP + tRCD + tCAS`. Requests queue behind
/// the bank's previous request.
///
/// # Examples
///
/// ```
/// use regshare_mem::{Dram, DramConfig};
///
/// let mut d = Dram::new(DramConfig::default());
/// let first = d.access(0, 0);           // row activation + CAS
/// let second = d.access(64, first as u64); // same row: CAS only
/// assert!(second < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    accesses: u64,
    row_hits: u64,
}

impl Dram {
    /// Creates a DRAM model with all banks precharged.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![
            Bank {
                open_row: None,
                busy_until: 0
            };
            config.banks
        ];
        Dram {
            config,
            banks,
            accesses: 0,
            row_hits: 0,
        }
    }

    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        let row = addr / self.config.row_bytes;
        let bank = (row as usize) % self.banks.len();
        (bank, row)
    }

    /// Clears access statistics and bank busy times, keeping each bank's
    /// open row. Used when a functionally-warmed DRAM — whose clock was an
    /// instruction-count pseudo-time — is handed to a measurement window
    /// that counts cycles from zero: stale `busy_until` values from the
    /// old clock domain would otherwise queue the window's first accesses
    /// behind fictitious billion-cycle reservations.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.row_hits = 0;
        for b in &mut self.banks {
            b.busy_until = 0;
        }
    }

    /// Records an access without timing: updates the bank's open row and
    /// the hit statistics but not its busy time. This is the functional-
    /// warming path — row *contents* persist across the warm/detailed
    /// handoff while busy times are window-local (see
    /// [`Dram::reset_stats`]), so warming never needs a clock.
    pub fn touch(&mut self, addr: u64) {
        self.accesses += 1;
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        if bank.open_row == Some(row) {
            self.row_hits += 1;
        }
        bank.open_row = Some(row);
    }

    /// Performs an access at time `now`; returns its total latency in
    /// cycles (including any queueing behind the bank's previous request).
    pub fn access(&mut self, addr: u64, now: u64) -> u32 {
        self.accesses += 1;
        let (bank_idx, row) = self.bank_and_row(addr);
        let cfg = self.config;
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.busy_until);
        let service = match bank.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                cfg.t_cas
            }
            Some(_) => cfg.t_rp + cfg.t_rcd + cfg.t_cas,
            None => cfg.t_rcd + cfg.t_cas,
        } + cfg.burst;
        bank.open_row = Some(row);
        bank.busy_until = start + service as u64;
        (bank.busy_until - now) as u32
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Total number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The configured timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_row_hits_are_faster() {
        let mut d = Dram::new(DramConfig::default());
        let cfg = *d.config();
        let miss = d.access(0, 0);
        assert_eq!(miss, cfg.t_rcd + cfg.t_cas + cfg.burst);
        let t = miss as u64;
        let hit = d.access(128, t);
        assert_eq!(hit, cfg.t_cas + cfg.burst);
    }

    #[test]
    fn reset_stats_clears_busy_times_but_keeps_open_rows() {
        let mut d = Dram::new(DramConfig::default());
        let cfg = *d.config();
        d.access(0, 1_000_000_000); // bank reserved far into pseudo-time
        d.reset_stats();
        assert_eq!(d.accesses(), 0);
        // Same row at time 0: open-row hit, no queueing behind the stale
        // billion-cycle reservation.
        assert_eq!(d.access(128, 0), cfg.t_cas + cfg.burst);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DramConfig {
            banks: 1,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        let t = d.access(0, 0) as u64;
        // Different row, same (only) bank.
        let conflict = d.access(cfg.row_bytes, t);
        assert_eq!(conflict, cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.burst);
    }

    #[test]
    fn queueing_behind_busy_bank() {
        let cfg = DramConfig {
            banks: 1,
            ..DramConfig::default()
        };
        let mut d = Dram::new(cfg);
        let first = d.access(0, 0);
        // Second request issued at time 0 must wait for the first.
        let second = d.access(64, 0);
        assert_eq!(second, first + cfg.t_cas + cfg.burst);
    }

    #[test]
    fn different_banks_do_not_queue() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        let a = d.access(0, 0);
        // Next row maps to the next bank.
        let b = d.access(cfg.row_bytes, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn row_hit_rate_reflects_locality() {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0u64;
        for i in 0..10 {
            now += d.access(i * 64, now) as u64;
        }
        assert!(d.row_hit_rate() > 0.8);
        assert_eq!(d.accesses(), 10);
    }
}
