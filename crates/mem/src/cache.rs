//! Set-associative write-back cache timing model.

use regshare_stats::Ratio;
use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `assoc × line` frames, or non-power-of-two sets/line).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let frames = self.size_bytes / self.line_bytes;
        assert!(
            frames > 0 && frames.is_multiple_of(self.assoc),
            "cache geometry inconsistent: {} bytes / {}B lines / {} ways",
            self.size_bytes,
            self.line_bytes,
            self.assoc
        );
        let sets = frames / self.assoc;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two"
        );
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// A set-associative, write-allocate, write-back cache with true LRU.
///
/// This is a timing/occupancy model: it tracks which line addresses are
/// resident, not their contents.
///
/// # Examples
///
/// ```
/// use regshare_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new("l1d", CacheConfig {
///     size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1,
/// });
/// assert!(!c.access(0x40, false)); // cold miss
/// assert!(c.access(0x40, false));  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `log2(line_bytes)`, precomputed so the hot address-split avoids a
    /// runtime division (the divisor is only known to be a power of two
    /// dynamically, so the compiler cannot strength-reduce it).
    line_shift: u32,
    /// `num_sets − 1` (sets are a power of two).
    set_mask: usize,
    /// All lines, flattened set-major (`set × assoc + way`): one
    /// contiguous allocation instead of a pointer chase per set.
    lines: Vec<Line>,
    stamp: u64,
    hits: Ratio,
    writebacks: u64,
    /// Per-set most-recently-touched way, a fast path for repeated
    /// accesses to a set's hot line. Every site that touches a line
    /// (slow-path hit, demand fill, prefetch fill) stamps it most-recent
    /// *and* records its way here, so a hinted tag match needs neither
    /// the way scan nor an LRU stamp bump: the line is already the
    /// newest in its set, and LRU ordering is per-set, so skipping the
    /// bump changes no relative order and no future eviction.
    mru: Vec<u16>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::num_sets`]).
    pub fn new(name: impl Into<String>, config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        let lines = vec![Line::default(); config.assoc * num_sets];
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            lines,
            stamp: 0,
            hits: Ratio::new(name),
            writebacks: 0,
            mru: vec![0; num_sets],
        }
    }

    #[inline]
    fn index_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line as usize) & self.set_mask;
        (set, line)
    }

    /// Looks up `addr`; on a miss the line is filled (allocated). Returns
    /// whether the access hit.
    ///
    /// `is_write` marks the line dirty; evicting a dirty line counts a
    /// writeback.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        let base = set_idx * self.config.assoc;
        let hinted = &mut self.lines[base + self.mru[set_idx] as usize];
        if hinted.valid && hinted.tag == tag {
            hinted.dirty |= is_write;
            self.hits.record(true);
            return true;
        }
        self.stamp += 1;
        let set = &mut self.lines[base..base + self.config.assoc];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[way].lru = self.stamp;
            set[way].dirty |= is_write;
            self.hits.record(true);
            self.mru[set_idx] = way as u16;
            return true;
        }
        self.hits.record(false);
        self.fill_line(set_idx, tag, is_write);
        false
    }

    /// Checks residency without updating any state (probe).
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index_tag(addr);
        let base = set_idx * self.config.assoc;
        let hinted = &self.lines[base + self.mru[set_idx] as usize];
        if hinted.valid && hinted.tag == tag {
            return true;
        }
        self.lines[base..base + self.config.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Inserts the line containing `addr` without counting a demand access
    /// (used for prefetch fills). Returns `true` if the line was newly
    /// installed.
    pub fn fill(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let (set_idx, tag) = self.index_tag(addr);
        let base = set_idx * self.config.assoc;
        if self.lines[base..base + self.config.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
        {
            return false;
        }
        self.fill_line(set_idx, tag, false);
        true
    }

    fn fill_line(&mut self, set_idx: usize, tag: u64, dirty: bool) {
        let stamp = self.stamp;
        let base = set_idx * self.config.assoc;
        let set = &mut self.lines[base..base + self.config.assoc];
        let way = (0..set.len())
            .min_by_key(|&w| if set[w].valid { set[w].lru } else { 0 })
            .expect("cache sets are never empty");
        let victim = &mut set[way];
        if victim.valid && victim.dirty {
            self.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            lru: stamp,
        };
        self.mru[set_idx] = way as u16;
    }

    /// Hit latency in cycles.
    pub fn latency(&self) -> u32 {
        self.config.latency
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit-rate statistics.
    pub fn hit_ratio(&self) -> &Ratio {
        &self.hits
    }

    /// Number of dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Clears access statistics, keeping the resident lines. Used when a
    /// functionally-warmed cache is handed to a measurement window.
    pub fn reset_stats(&mut self) {
        self.hits.reset();
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64B lines.
        Cache::new(
            "t",
            CacheConfig {
                size_bytes: 256,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
        )
    }

    #[test]
    fn geometry_computation() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        assert_eq!(c.num_sets(), 256);
    }

    #[test]
    #[should_panic(expected = "geometry inconsistent")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 100,
            assoc: 3,
            line_bytes: 64,
            latency: 1,
        }
        .num_sets();
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line, different set
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line index % 2 == 0): addresses 0, 128, 256...
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // touch 0 again; 128 is now LRU
        c.access(256, false); // evicts 128
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(128, false);
        c.access(256, false); // evicts 0 (dirty)
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn prefetch_fill_does_not_count_as_demand_access() {
        let mut c = tiny();
        assert!(c.fill(0));
        assert!(!c.fill(0)); // already resident
        assert_eq!(c.hit_ratio().total(), 0);
        assert!(c.access(0, false)); // demand access now hits
    }

    #[test]
    fn consecutive_same_line_hits_preserve_lru_order() {
        let mut c = tiny();
        c.access(0, false);
        c.access(128, false);
        // Many fast-path hits on 128 must leave it most-recent...
        for _ in 0..10 {
            c.access(128, false);
        }
        c.access(0, false); // ...and 0 refreshed after them.
        c.access(256, false); // evicts 128 (least recent), not 0
        assert!(c.probe(0));
        assert!(!c.probe(128));
    }

    #[test]
    fn fast_path_write_marks_dirty() {
        let mut c = tiny();
        c.access(0, false); // clean, becomes the fast-path line
        c.access(0, true); // fast-path write must still dirty it
        c.access(128, false);
        c.access(256, false); // evicts 0
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn fill_clobbering_the_hinted_line_is_detected_by_tag() {
        // Direct-mapped: the just-accessed line is also the only victim.
        let mut c = Cache::new(
            "dm",
            CacheConfig {
                size_bytes: 128,
                assoc: 1,
                line_bytes: 64,
                latency: 1,
            },
        );
        c.access(0, false); // line 0 resident, fast path armed
        c.fill(128); // prefetch fill evicts line 0 in-place
        assert!(!c.access(0, false), "line 0 is gone; must miss");
    }

    #[test]
    fn hit_ratio_tracks_accesses() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert_eq!(c.hit_ratio().hits(), 1);
        assert_eq!(c.hit_ratio().total(), 2);
    }
}
